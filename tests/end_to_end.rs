//! End-to-end transactions against simulated devices: the full
//! client → inputQ → controller → phyQ → worker → devices pipeline,
//! verifying that committed transactions leave the logical and physical
//! layers in agreement.

use std::time::Duration;

use tropic::core::{ExecMode, PlatformConfig, Tropic, TxnState};
use tropic::devices::LatencyModel;
use tropic::model::{Path, Value};
use tropic::tcloud::{TCloudDevices, TopologySpec};

const WAIT: Duration = Duration::from_secs(60);

fn start(spec: &TopologySpec) -> (Tropic, TCloudDevices) {
    let devices = spec.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 2,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    (platform, devices)
}

fn small_spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 1,
        ..Default::default()
    }
}

#[test]
fn spawn_commits_on_devices() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    let outcome = client
        .submit_and_wait("spawnVM", spec.spawn_args("web1", 0, 2048), WAIT)
        .unwrap();
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);

    // The device really runs the VM.
    assert_eq!(
        devices.computes[0].vm_power("web1"),
        Some(tropic::devices::VmPower::Running)
    );
    assert!(devices.storages[0].has_image("web1-img"));
    assert!(devices.storages[0].is_exported("web1-img"));
    platform.shutdown();
}

#[test]
fn spawn_then_destroy_restores_original_state() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let before = devices.registry.physical_tree();
    let client = platform.client();
    let spawn = client
        .submit_and_wait("spawnVM", spec.spawn_args("tmp", 1, 4096), WAIT)
        .unwrap();
    assert_eq!(spawn.state, TxnState::Committed);
    let destroy = client
        .submit_and_wait(
            "destroyVM",
            vec![
                Value::from("/vmRoot/host1"),
                Value::from("tmp"),
                Value::from("/storageRoot/storage0"),
            ],
            WAIT,
        )
        .unwrap();
    assert_eq!(destroy.state, TxnState::Committed, "{:?}", destroy.error);
    let after = devices.registry.physical_tree();
    assert!(
        before.diff(&after, &Path::root()).is_empty(),
        "destroy must return the cloud to its pre-spawn state"
    );
    platform.shutdown();
}

#[test]
fn migrate_moves_vm_across_hosts() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    client
        .submit_and_wait("spawnVM", spec.spawn_args("mv1", 0, 2048), WAIT)
        .unwrap();
    let outcome = client
        .submit_and_wait(
            "migrateVM",
            vec![
                Value::from("/vmRoot/host0"),
                Value::from("/vmRoot/host1"),
                Value::from("mv1"),
            ],
            WAIT,
        )
        .unwrap();
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
    assert_eq!(devices.computes[0].vm_power("mv1"), None);
    assert_eq!(
        devices.computes[1].vm_power("mv1"),
        Some(tropic::devices::VmPower::Running)
    );
    platform.shutdown();
}

#[test]
fn stop_start_cycle() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    client
        .submit_and_wait("spawnVM", spec.spawn_args("cyc", 0, 2048), WAIT)
        .unwrap();
    let host = Value::from("/vmRoot/host0");
    let stop = client
        .submit_and_wait("stopVM", vec![host.clone(), Value::from("cyc")], WAIT)
        .unwrap();
    assert_eq!(stop.state, TxnState::Committed);
    assert_eq!(
        devices.computes[0].vm_power("cyc"),
        Some(tropic::devices::VmPower::Stopped)
    );
    let start = client
        .submit_and_wait("startVM", vec![host, Value::from("cyc")], WAIT)
        .unwrap();
    assert_eq!(start.state, TxnState::Committed);
    // Stopping an already-stopped VM aborts cleanly (logical guard).
    client
        .submit_and_wait(
            "stopVM",
            vec![Value::from("/vmRoot/host0"), Value::from("cyc")],
            WAIT,
        )
        .unwrap();
    let again = client
        .submit_and_wait(
            "startVM",
            vec![Value::from("/vmRoot/host0"), Value::from("cyc")],
            WAIT,
        )
        .unwrap();
    assert_eq!(again.state, TxnState::Committed);
    platform.shutdown();
}

#[test]
fn spawn_with_network_plumbs_vlan() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    let outcome = client
        .submit_and_wait(
            "spawnVMNet",
            vec![
                Value::from("net1"),
                Value::from("template-linux"),
                Value::Int(2048),
                Value::from("/storageRoot/storage0"),
                Value::from("/vmRoot/host0"),
                Value::from("/netRoot/router0"),
                Value::Int(42),
            ],
            WAIT,
        )
        .unwrap();
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
    assert!(devices.routers[0].has_vlan(42));
    assert_eq!(
        devices.routers[0].ports_of(42),
        vec!["net1-eth0".to_string()]
    );
    platform.shutdown();
}

#[test]
fn unknown_procedure_aborts() {
    let spec = small_spec();
    let (platform, _devices) = start(&spec);
    let client = platform.client();
    let outcome = client.submit_and_wait("noSuchProc", vec![], WAIT).unwrap();
    assert_eq!(outcome.state, TxnState::Aborted);
    assert!(outcome.error.unwrap().contains("unknown procedure"));
    platform.shutdown();
}

#[test]
fn committed_layers_agree_after_mixed_workload() {
    let spec = TopologySpec {
        compute_hosts: 3,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let (platform, devices) = start(&spec);
    let client = platform.client();
    for i in 0..6 {
        client
            .submit_and_wait(
                "spawnVM",
                spec.spawn_args(&format!("m{i}"), i % 3, 2048),
                WAIT,
            )
            .unwrap();
    }
    client
        .submit_and_wait(
            "migrateVM",
            vec![
                Value::from("/vmRoot/host0"),
                Value::from("/vmRoot/host2"),
                Value::from("m0"),
            ],
            WAIT,
        )
        .unwrap();
    client
        .submit_and_wait(
            "stopVM",
            vec![Value::from("/vmRoot/host1"), Value::from("m1")],
            WAIT,
        )
        .unwrap();

    // Verify the physical layer matches what the logical layer believes by
    // reloading nothing and diffing through an admin repair no-op: a repair
    // over the whole tree reports the layers already consistent.
    let result = platform.repair(&Path::root(), WAIT).unwrap();
    assert!(result.ok, "{}", result.message);
    assert_eq!(result.actions, 0, "no corrective actions were needed");
    let _ = devices;
    platform.shutdown();
}

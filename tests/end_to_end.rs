//! End-to-end transactions against simulated devices: the full
//! client → inputQ → controller → phyQ → worker → devices pipeline,
//! verifying that committed transactions leave the logical and physical
//! layers in agreement — plus the typed-API admission features: priority
//! lanes, admission deadlines, idempotency keys, and event subscriptions.

use std::time::Duration;

use tropic::core::{
    AbortCode, ApiError, ExecMode, PlatformConfig, Priority, Tropic, TropicClient, TxnOutcome,
    TxnRequest, TxnState,
};
use tropic::devices::LatencyModel;
use tropic::model::{Path, Value};
use tropic::tcloud::{TCloudDevices, TopologySpec};

const WAIT: Duration = Duration::from_secs(60);

/// Submit a typed request and wait on its handle.
fn run(client: &TropicClient, request: TxnRequest) -> TxnOutcome {
    client
        .submit_request(request)
        .expect("submit")
        .wait_timeout(WAIT)
        .expect("outcome")
}

fn spawn_req(spec: &TopologySpec, vm: &str, host: usize, mem: i64) -> TxnRequest {
    TxnRequest::new("spawnVM").args(spec.spawn_args(vm, host, mem))
}

fn start(spec: &TopologySpec) -> (Tropic, TCloudDevices) {
    let devices = spec.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 2,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    (platform, devices)
}

fn small_spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 1,
        ..Default::default()
    }
}

#[test]
fn spawn_commits_on_devices() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    let outcome = run(&client, spawn_req(&spec, "web1", 0, 2048));
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);

    // The device really runs the VM.
    assert_eq!(
        devices.computes[0].vm_power("web1"),
        Some(tropic::devices::VmPower::Running)
    );
    assert!(devices.storages[0].has_image("web1-img"));
    assert!(devices.storages[0].is_exported("web1-img"));
    platform.shutdown();
}

#[test]
fn spawn_then_destroy_restores_original_state() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let before = devices.registry.physical_tree();
    let client = platform.client();
    let spawn = run(&client, spawn_req(&spec, "tmp", 1, 4096));
    assert_eq!(spawn.state, TxnState::Committed);
    let destroy = run(
        &client,
        TxnRequest::new("destroyVM")
            .arg("/vmRoot/host1")
            .arg("tmp")
            .arg("/storageRoot/storage0"),
    );
    assert_eq!(destroy.state, TxnState::Committed, "{:?}", destroy.error);
    let after = devices.registry.physical_tree();
    assert!(
        before.diff(&after, &Path::root()).is_empty(),
        "destroy must return the cloud to its pre-spawn state"
    );
    platform.shutdown();
}

#[test]
fn migrate_moves_vm_across_hosts() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    run(&client, spawn_req(&spec, "mv1", 0, 2048));
    let outcome = run(
        &client,
        TxnRequest::new("migrateVM")
            .arg("/vmRoot/host0")
            .arg("/vmRoot/host1")
            .arg("mv1"),
    );
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
    assert_eq!(devices.computes[0].vm_power("mv1"), None);
    assert_eq!(
        devices.computes[1].vm_power("mv1"),
        Some(tropic::devices::VmPower::Running)
    );
    platform.shutdown();
}

#[test]
fn stop_start_cycle() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    run(&client, spawn_req(&spec, "cyc", 0, 2048));
    let host = Value::from("/vmRoot/host0");
    let stop = run(
        &client,
        TxnRequest::new("stopVM").arg(host.clone()).arg("cyc"),
    );
    assert_eq!(stop.state, TxnState::Committed);
    assert_eq!(
        devices.computes[0].vm_power("cyc"),
        Some(tropic::devices::VmPower::Stopped)
    );
    let start = run(&client, TxnRequest::new("startVM").arg(host).arg("cyc"));
    assert_eq!(start.state, TxnState::Committed);
    // Stopping an already-stopped VM aborts cleanly (logical guard).
    run(
        &client,
        TxnRequest::new("stopVM").arg("/vmRoot/host0").arg("cyc"),
    );
    let again = run(
        &client,
        TxnRequest::new("startVM").arg("/vmRoot/host0").arg("cyc"),
    );
    assert_eq!(again.state, TxnState::Committed);
    platform.shutdown();
}

#[test]
fn spawn_with_network_plumbs_vlan() {
    let spec = small_spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    let outcome = run(
        &client,
        TxnRequest::new("spawnVMNet")
            .arg("net1")
            .arg("template-linux")
            .arg(Value::Int(2048))
            .arg("/storageRoot/storage0")
            .arg("/vmRoot/host0")
            .arg("/netRoot/router0")
            .arg(Value::Int(42)),
    );
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
    assert!(devices.routers[0].has_vlan(42));
    assert_eq!(
        devices.routers[0].ports_of(42),
        vec!["net1-eth0".to_string()]
    );
    platform.shutdown();
}

#[test]
fn unknown_procedure_aborts() {
    let spec = small_spec();
    let (platform, _devices) = start(&spec);
    let client = platform.client();
    let outcome = run(&client, TxnRequest::new("noSuchProc"));
    assert_eq!(outcome.state, TxnState::Aborted);
    assert_eq!(outcome.abort_code, Some(AbortCode::UnknownProcedure));
    let err = outcome.api_error().expect("typed error");
    assert!(matches!(err, ApiError::UnknownProcedure(_)));
    assert!(!err.retryable());
    assert!(outcome.error.unwrap().contains("unknown procedure"));
    platform.shutdown();
}

#[test]
fn committed_layers_agree_after_mixed_workload() {
    let spec = TopologySpec {
        compute_hosts: 3,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let (platform, devices) = start(&spec);
    let client = platform.client();
    for i in 0..6 {
        run(&client, spawn_req(&spec, &format!("m{i}"), i % 3, 2048));
    }
    run(
        &client,
        TxnRequest::new("migrateVM")
            .arg("/vmRoot/host0")
            .arg("/vmRoot/host2")
            .arg("m0"),
    );
    run(
        &client,
        TxnRequest::new("stopVM").arg("/vmRoot/host1").arg("m1"),
    );

    // Verify the physical layer matches what the logical layer believes by
    // reloading nothing and diffing through an admin repair no-op: a repair
    // over the whole tree reports the layers already consistent.
    let result = platform.admin().repair(&Path::root(), WAIT).unwrap();
    assert!(result.ok, "{}", result.message);
    assert_eq!(result.actions, 0, "no corrective actions were needed");
    let _ = devices;
    platform.shutdown();
}

// ---------------------------------------------------------------------
// Typed-API admission features.
// ---------------------------------------------------------------------

/// A high-priority submission enqueued *behind* a full batch lane must be
/// scheduled first: the controller drains `inputQ/hi` before `inputQ/batch`,
/// so the late high submission gets the lowest logical sequence number.
#[test]
fn high_priority_overtakes_full_batch_lane() {
    let spec = TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    );
    let client = platform.client();

    // Warm up: make sure a leader is elected and draining.
    let warm = run(&client, spawn_req(&spec, "warm", 0, 2048));
    assert_eq!(warm.state, TxnState::Committed);

    // Freeze the (only) controller so everything below queues up durably
    // without being drained.
    platform.crash_controller(0);
    std::thread::sleep(Duration::from_millis(100));

    let batch_handles: Vec<_> = (0..12)
        .map(|i| {
            client
                .submit_request(
                    spawn_req(&spec, &format!("bulk{i}"), i % 4, 2048).priority(Priority::Batch),
                )
                .expect("submit batch txn")
        })
        .collect();
    // The latecomer, behind 12 queued batch submissions.
    let hi = client
        .submit_request(spawn_req(&spec, "urgent", 0, 2048).priority(Priority::High))
        .expect("submit high txn");

    platform.restart_controller(0);

    let hi_outcome = hi.wait_timeout(WAIT).expect("high outcome");
    assert_eq!(
        hi_outcome.state,
        TxnState::Committed,
        "{:?}",
        hi_outcome.error
    );
    let hi_lsn = client
        .txn_record(hi.id())
        .unwrap()
        .expect("record retained")
        .lsn
        .expect("scheduled");
    for handle in &batch_handles {
        let o = handle.wait_timeout(WAIT).expect("batch outcome");
        assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
        let lsn = client
            .txn_record(handle.id())
            .unwrap()
            .expect("record retained")
            .lsn
            .expect("scheduled");
        assert!(
            hi_lsn < lsn,
            "high-priority txn (lsn {hi_lsn}) must schedule before batch txn (lsn {lsn})"
        );
    }
    let counters = platform.metrics().counters();
    assert_eq!(counters.admitted_high, 1);
    assert!(counters.admitted_batch >= 12);
    platform.shutdown();
}

/// A submission whose deadline expired before admission is aborted with a
/// typed, permanent (`retryable() == false`) `ApiError`.
#[test]
fn expired_deadline_rejected_at_admission() {
    let spec = TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    );
    let client = platform.client();
    // Warm up so admission time is unambiguously later than the deadline.
    run(&client, spawn_req(&spec, "warm", 0, 2048));

    // The platform clock's epoch is boot time, and on a fast machine the
    // warm-up can finish inside millisecond zero — where `now - 1`
    // saturates to `now` itself and the "past" deadline isn't in the past.
    // Step off the epoch first so the subtraction is real.
    while client.clock().now_ms() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let past = client.clock().now_ms().saturating_sub(1);
    let handle = client
        .submit_request(spawn_req(&spec, "late", 0, 2048).deadline_at(past))
        .expect("submit");
    let outcome = handle.wait_timeout(WAIT).expect("admission outcome");
    assert_eq!(outcome.state, TxnState::Aborted);
    assert_eq!(outcome.abort_code, Some(AbortCode::DeadlineExpired));
    let err = outcome.api_error().expect("typed ApiError");
    assert_eq!(err, ApiError::DeadlineExceeded { id: handle.id() });
    assert!(!err.retryable(), "deadline rejection is permanent");
    // The transaction never reached the scheduler.
    let rec = client.txn_record(handle.id()).unwrap().expect("record");
    assert_eq!(rec.lsn, None, "rejected before logical execution");
    assert_eq!(platform.metrics().counters().deadline_rejects, 1);
    platform.shutdown();
}

/// Resubmitting with the same idempotency key returns the original
/// transaction's id and outcome, and executes nothing twice — even under a
/// concurrent load of other transactions.
#[test]
fn idempotent_resubmit_returns_original_txn() {
    let spec = TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let (platform, devices) = {
        let devices = spec.build_devices(&LatencyModel::zero());
        let platform = Tropic::start(
            PlatformConfig {
                controllers: 1,
                workers: 2,
                ..Default::default()
            },
            spec.service(),
            ExecMode::Physical(devices.registry.clone()),
        );
        (platform, devices)
    };
    let client = platform.client();

    let first = run(
        &client,
        spawn_req(&spec, "idem", 0, 2048).idempotency_key("spawn-idem"),
    );
    assert_eq!(first.state, TxnState::Committed, "{:?}", first.error);

    // Concurrent background load between the original and the resubmit.
    for i in 0..4 {
        run(&client, spawn_req(&spec, &format!("noise{i}"), i % 4, 2048));
    }

    let resubmit = client
        .submit_request(spawn_req(&spec, "idem", 0, 2048).idempotency_key("spawn-idem"))
        .expect("resubmit");
    let outcome = resubmit.wait_timeout(WAIT).expect("dedup outcome");
    assert_eq!(
        outcome.id, first.id,
        "idempotent resubmit must resolve to the original TxnId"
    );
    assert_eq!(outcome.state, TxnState::Committed);
    assert_eq!(resubmit.resolved_id(), first.id);
    assert_eq!(
        devices.computes[0].vm_count(),
        {
            // idem + noise0 on host0 (noise spawns round-robin 0..4).
            2
        },
        "the deduped spawn must not run twice"
    );
    assert_eq!(platform.metrics().counters().idempotent_hits, 1);
    platform.shutdown();
}

/// A batch submitted atomically lands every request; the event subscription
/// streams each transaction's terminal transition.
#[test]
fn subscription_streams_lifecycle_events() {
    let spec = TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let (platform, _devices) = start(&spec);
    let client = platform.client();
    let events = client.subscribe();

    let handles = client
        .submit_batch(vec![
            spawn_req(&spec, "sub0", 0, 2048).priority(Priority::High),
            spawn_req(&spec, "sub1", 1, 2048),
        ])
        .expect("atomic batch enqueue");
    assert_eq!(handles.len(), 2);
    let mut want: Vec<_> = handles.iter().map(|h| h.id()).collect();
    for handle in &handles {
        let o = handle.wait_timeout(WAIT).expect("outcome");
        assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
    }

    // Every transaction's terminal transition must be observed.
    let deadline = std::time::Instant::now() + WAIT;
    while !want.is_empty() && std::time::Instant::now() < deadline {
        if let Some(ev) = events.recv_timeout(Duration::from_millis(500)) {
            if ev.state == TxnState::Committed {
                want.retain(|id| *id != ev.id);
                assert!(!ev.proc_name.is_empty());
            }
        }
    }
    assert!(want.is_empty(), "missing terminal events for {want:?}");
    platform.shutdown();
}

/// Rolling upgrade: bytes enqueued by a pre-versioning client — bare
/// `InputMsg`, no envelope, on the legacy `inputQ` root — are decoded,
/// admitted into the normal lane, and run to completion by the upgraded
/// controller.
#[test]
fn legacy_queued_submission_survives_rolling_upgrade() {
    use tropic::coord::DistributedQueue;
    use tropic::core::layout;

    let spec = TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    );
    let client = platform.client();
    run(&client, spawn_req(&spec, "warm", 0, 2048));

    // Handcraft the exact bytes an old client wrote: externally-tagged
    // InputMsg, no envelope, none of the v1 fields. Id far above anything
    // the running clients will assign.
    let args = serde_json::to_string(&spec.spawn_args("legacy-vm", 1, 2048)).unwrap();
    let legacy = format!(
        r#"{{"Submit":{{"id":900000,"proc_name":"spawnVM","args":{args},"submitted_ms":1}}}}"#
    );
    let raw = platform.coord().connect("legacy-client");
    let q = DistributedQueue::new(&raw, layout::input_q()).unwrap();
    q.enqueue(legacy.into_bytes()).unwrap();

    // The upgraded stack picks it up and commits it.
    let outcome = client
        .handle(900000)
        .wait_timeout(WAIT)
        .expect("legacy submission admitted");
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
    let rec = client.txn_record(900000).unwrap().expect("record");
    assert_eq!(
        rec.priority,
        Priority::Normal,
        "legacy defaults to the normal lane"
    );
    platform.shutdown();
}

/// A keyed submission whose deadline expires while *deferred in todoQ*
/// (behind a lock conflict) must release its idempotency key: a retry with
/// a fresh deadline runs for real instead of deduping onto the rejection.
#[test]
fn todo_q_deadline_expiry_releases_idempotency_key() {
    let spec = TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    // createVM takes ~1 s, so the blocker holds the host lock long enough
    // for the keyed submission's deadline to expire while deferred.
    let latency = LatencyModel::zero().with_action("createVM", Duration::from_secs(1));
    let devices = spec.build_devices(&latency);
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    let client = platform.client();

    let blocker = client
        .submit_request(spawn_req(&spec, "blocker", 0, 2048))
        .expect("submit blocker");
    // Wait until the blocker holds its locks (Started) before queuing the
    // conflicting keyed submission.
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let started = client
            .txn_record(blocker.id())
            .unwrap()
            .map(|r| r.state == TxnState::Started)
            .unwrap_or(false);
        if started {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "blocker never started"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let late = client
        .submit_request(
            spawn_req(&spec, "late", 0, 2048)
                .idempotency_key("todoq-key")
                .deadline(Duration::from_millis(250)),
        )
        .expect("submit keyed txn");
    let outcome = late.wait_timeout(WAIT).expect("expiry outcome");
    assert_eq!(outcome.state, TxnState::Aborted);
    assert_eq!(outcome.abort_code, Some(AbortCode::DeadlineExpired));
    assert!(
        outcome.error.as_deref().unwrap_or("").contains("todoQ"),
        "expired in todoQ, not at admission: {:?}",
        outcome.error
    );

    // The retry with the same key and a fresh (absent) deadline must run.
    let retry = client
        .submit_request(spawn_req(&spec, "late", 0, 2048).idempotency_key("todoq-key"))
        .expect("resubmit");
    let outcome = retry.wait_timeout(WAIT).expect("retry outcome");
    assert_eq!(
        outcome.state,
        TxnState::Committed,
        "retry must execute, not dedup onto the rejection: {:?}",
        outcome.error
    );
    assert_ne!(outcome.id, late.id(), "a fresh transaction ran");
    platform.shutdown();
}

//! High availability (paper §2.3, §6.4): leader crashes are survived by
//! follower takeover with idempotent recovery; no submitted transaction is
//! lost.
//!
//! This suite deliberately drives the *deprecated* stringly-typed client
//! shims (`submit`/`wait`/`submit_and_wait`, `Tropic::repair`/`reload`/
//! `signal`): they must stay green until the shims are removed. New tests
//! should use the typed API (`TxnRequest`/`TxnHandle`/`AdminClient`).
#![allow(deprecated)]

use std::time::Duration;

use tropic::coord::CoordConfig;
use tropic::core::{ExecMode, PlatformConfig, Tropic, TxnState};
use tropic::tcloud::TopologySpec;

const WAIT: Duration = Duration::from_secs(120);

fn ha_platform(spec: &TopologySpec) -> Tropic {
    Tropic::start(
        PlatformConfig {
            controllers: 3,
            workers: 1,
            coord: CoordConfig {
                // Aggressive failure detection so the test runs fast; the
                // recovery-time experiment sweeps this knob.
                session_timeout_ms: 400,
                tick_ms: 20,
                ..CoordConfig::default()
            },
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    )
}

fn wait_for_leader(platform: &Tropic, timeout: Duration) -> Option<usize> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if let Some(idx) = platform.leader_index() {
            return Some(idx);
        }
        if std::time::Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn follower_takes_over_after_leader_crash() {
    let spec = TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let platform = ha_platform(&spec);
    let client = platform.client();

    // Warm up under the first leader.
    let o = client
        .submit_and_wait("spawnVM", spec.spawn_args("pre", 0, 2_048), WAIT)
        .unwrap();
    assert_eq!(o.state, TxnState::Committed);
    let first = wait_for_leader(&platform, WAIT).expect("initial leader");

    // Crash the leader, then submit MORE work while leaderless.
    platform.crash_leader().expect("crash");
    let ids: Vec<_> = (0..4)
        .map(|i| {
            client
                .submit("spawnVM", spec.spawn_args(&format!("post{i}"), i, 2_048))
                .unwrap()
        })
        .collect();

    // Every transaction submitted during the outage completes.
    for id in ids {
        let o = client.wait(id, WAIT).unwrap();
        assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
    }
    let second = wait_for_leader(&platform, WAIT).expect("new leader");
    assert_ne!(first, second, "a follower must have taken over");
    platform.shutdown();
}

#[test]
fn state_survives_failover_memory_accounting_intact() {
    // After failover the new leader's recovered logical tree must still
    // enforce constraints against the pre-crash state: a host filled before
    // the crash rejects overcommit after it.
    let spec = TopologySpec {
        compute_hosts: 1,
        storage_hosts: 1,
        routers: 0,
        host_mem_mb: 4_096,
        ..Default::default()
    };
    let platform = ha_platform(&spec);
    let client = platform.client();
    let o = client
        .submit_and_wait("spawnVM", spec.spawn_args("big", 0, 3_072), WAIT)
        .unwrap();
    assert_eq!(o.state, TxnState::Committed);

    platform.crash_leader().expect("crash");
    let o = client
        .submit_and_wait("spawnVM", spec.spawn_args("big2", 0, 3_072), WAIT)
        .unwrap();
    assert_eq!(
        o.state,
        TxnState::Aborted,
        "recovered state must reject overcommit"
    );
    assert!(o.error.unwrap().contains("vm-memory"));
    platform.shutdown();
}

#[test]
fn repeated_failovers_and_restart() {
    let spec = TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let platform = ha_platform(&spec);
    let client = platform.client();
    let mut crashed = Vec::new();
    for round in 0..2 {
        let o = client
            .submit_and_wait(
                "spawnVM",
                spec.spawn_args(&format!("r{round}"), round, 2_048),
                WAIT,
            )
            .unwrap();
        assert_eq!(o.state, TxnState::Committed, "round {round}: {:?}", o.error);
        let idx = platform.crash_leader().expect("leader to crash");
        crashed.push(idx);
    }
    // Restart one crashed controller; it rejoins as a follower.
    platform.restart_controller(crashed[0]);
    let o = client
        .submit_and_wait("spawnVM", spec.spawn_args("final", 3, 2_048), WAIT)
        .unwrap();
    assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
    // Leadership events were recorded for the experiment harness.
    let elections = platform
        .metrics()
        .events()
        .iter()
        .filter(|e| e.kind == "leader-elected")
        .count();
    assert!(elections >= 3, "got {elections} elections");
    platform.shutdown();
}

#[test]
fn crash_between_group_commit_batches_loses_no_round() {
    // Group commit persists each scheduling round as one atomic multi, so a
    // crash exposes either the whole round or none of it. Crash the leader
    // repeatedly in the middle of a burst; every transaction must still
    // commit exactly once, and the recovered memory accounting must stay
    // exact: four 2048 MB VMs fill the 8192 MB host, a fifth is rejected.
    // A torn round (e.g. a Started record without its phyQ task, or a
    // dropped inputQ submit) would either stall a transaction or break the
    // accounting.
    let spec = TopologySpec {
        compute_hosts: 1,
        storage_hosts: 1,
        routers: 0,
        host_mem_mb: 8_192,
        ..Default::default()
    };
    let platform = ha_platform(&spec);
    let client = platform.client();

    // Make sure a leader exists, then submit the burst and crash leaders
    // while it is in flight.
    let o = client
        .submit_and_wait("spawnVM", spec.spawn_args("warm", 0, 2_048), WAIT)
        .unwrap();
    assert_eq!(o.state, TxnState::Committed);

    let ids: Vec<_> = (0..3)
        .map(|i| {
            client
                .submit("spawnVM", spec.spawn_args(&format!("burst{i}"), 0, 2_048))
                .unwrap()
        })
        .collect();
    platform.crash_leader().expect("first crash");
    // A second crash once the next leader has taken over, so recovery from
    // mid-burst persistent state is itself crash-tested.
    let deadline = std::time::Instant::now() + WAIT;
    while platform.leader_index().is_none() {
        assert!(std::time::Instant::now() < deadline, "no second leader");
        client.ping().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    platform.crash_leader().expect("second crash");

    for id in &ids {
        let o = client.wait(*id, WAIT).unwrap();
        assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
    }
    // Exactly-once: the host now holds 4 × 2048 MB; one more must abort on
    // the memory constraint, proving no burst transaction was lost or
    // double-applied across the crashes.
    let o = client
        .submit_and_wait("spawnVM", spec.spawn_args("overflow", 0, 2_048), WAIT)
        .unwrap();
    assert_eq!(
        o.state,
        TxnState::Aborted,
        "recovered accounting must reject overcommit: {:?}",
        o.error
    );
    assert!(o.error.unwrap().contains("vm-memory"));
    platform.shutdown();
}

#[test]
fn recovery_time_dominated_by_failure_detection() {
    // The §6.4 observation: recovery time ≈ session timeout (failure
    // detection) + small election/recovery cost. With a 400 ms timeout the
    // gap between crash and the next leader-elected event stays well under
    // 3 s and above the timeout itself.
    let spec = TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let platform = ha_platform(&spec);
    let client = platform.client();
    client
        .submit_and_wait("spawnVM", spec.spawn_args("a", 0, 2_048), WAIT)
        .unwrap();
    wait_for_leader(&platform, WAIT).unwrap();

    let crash_at = {
        platform.crash_leader().unwrap();
        platform.clock().now_ms()
    };
    // Drive work so the takeover is observable.
    let o = client
        .submit_and_wait("spawnVM", spec.spawn_args("b", 1, 2_048), WAIT)
        .unwrap();
    assert_eq!(o.state, TxnState::Committed);

    let events = platform.metrics().events();
    let takeover = events
        .iter()
        .filter(|e| e.kind == "recovery-complete" && e.at_ms >= crash_at)
        .map(|e| e.at_ms)
        .min()
        .expect("a recovery after the crash");
    let recovery_ms = takeover - crash_at;
    assert!(
        recovery_ms >= 300,
        "recovery {recovery_ms} ms cannot beat failure detection (400 ms timeout)"
    );
    assert!(
        recovery_ms < 5_000,
        "recovery {recovery_ms} ms should be dominated by the 400 ms timeout"
    );
    platform.shutdown();
}

//! End-to-end drills for the digital-twin subsystem: devices report state
//! asynchronously, the reconciler detects drift by diffing desired
//! (logical) against reported state, corrective transactions ride the
//! normal priority lanes, and the backoff waker escalates to `Degraded`
//! when repairs keep failing — all without operator action, which is the
//! point of the subsystem (the operator `repair`/`reload` path of paper §4
//! made continuous).

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use tropic::core::{
    ExecMode, PlatformConfig, RemoteClient, Tropic, TwinConfig, TwinEvent, TwinPhase, TxnState,
};
use tropic::devices::{Device, LatencyModel, VmPower};
use tropic::model::Path;
use tropic::tcloud::{TCloudDevices, TopologySpec};
use tropic::workload::chaos::{run_drift_storm, ChaosSpec, DriftStormSpec};

const WAIT: Duration = Duration::from_secs(60);

/// Fast twin knobs so the drills finish quickly: tight report/reconcile
/// cadence, short backoff.
fn fast_twin() -> TwinConfig {
    TwinConfig {
        interval_ms: 20,
        report_interval_ms: 10,
        backoff_base_ms: 40,
        backoff_cap_ms: 400,
        ..TwinConfig::enabled()
    }
}

fn start_twin(spec: &TopologySpec, twin: TwinConfig) -> (Tropic, TCloudDevices) {
    let devices = spec.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            twin,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(Arc::clone(&devices.registry)),
    );
    (platform, devices)
}

fn small_topo() -> TopologySpec {
    TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    }
}

fn spawn_vms(platform: &Tropic, spec: &TopologySpec, host: usize, names: &[&str]) {
    let client = platform.client();
    for name in names {
        let outcome = client
            .submit_request(
                tropic::core::TxnRequest::new("spawnVM").args(spec.spawn_args(name, host, 2_048)),
            )
            .unwrap()
            .wait_timeout(WAIT)
            .unwrap();
        assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
    }
}

/// Polls until `cond` holds or the timeout expires; returns whether it held.
fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// `true` when `events` contains `phases` as an in-order subsequence for
/// `path`.
fn has_phase_subsequence(events: &[TwinEvent], path: &str, phases: &[TwinPhase]) -> bool {
    let mut want = phases.iter();
    let mut next = want.next();
    for event in events.iter().filter(|e| e.path.to_string() == path) {
        if Some(&event.phase) == next {
            next = want.next();
            if next.is_none() {
                return true;
            }
        }
    }
    next.is_none()
}

/// The acceptance drill: a scripted host reboot drifts the physical layer,
/// the reconciler detects it without operator action, pushes a corrective
/// transaction through the normal lanes, and a `RemoteSubscription` client
/// on the RPC socket observes the full `Drifted → Reconciling → Converged`
/// sequence.
#[test]
fn reconciler_heals_host_reboot_and_streams_the_episode_over_rpc() {
    let spec = small_topo();
    let (platform, devices) = start_twin(&spec, fast_twin());
    let rpc = platform.serve_rpc().expect("rpc frontend");
    let remote = RemoteClient::connect(rpc.addr()).expect("connect");
    let twin_sub = remote.subscribe_twin().expect("twin subscription");

    spawn_vms(&platform, &spec, 0, &["t0", "t1", "t2"]);
    // Let the twin baseline the post-spawn state (reported catches up to
    // desired) so the reboot below opens a clean drift episode.
    std::thread::sleep(Duration::from_millis(300));

    // The §4 scenario, now handled autonomously: the host reboots and its
    // VMs power off behind TROPIC's back.
    let affected = devices.computes[0].oob_power_cycle();
    assert_eq!(affected.len(), 3);

    // The reconciler must restart every VM with no operator involvement.
    assert!(
        eventually(WAIT, || {
            (0..3).all(|i| devices.computes[0].vm_power(&format!("t{i}")) == Some(VmPower::Running))
        }),
        "reconciler never restarted the powered-off VMs"
    );

    // Drift accounting: at least one episode detected and repaired, with a
    // convergence-time sample recorded for the MTTR histogram.
    assert!(eventually(WAIT, || {
        let c = platform.counters();
        c.drift_detected >= 1 && c.drift_repaired >= 1
    }));
    assert!(
        !platform.metrics().convergence_samples().is_empty(),
        "convergence must leave an MTTR sample"
    );

    // The remote subscriber saw the whole episode over the socket.
    let mut events = Vec::new();
    assert!(
        eventually(WAIT, || {
            events.extend(twin_sub.drain_twin());
            has_phase_subsequence(
                &events,
                "/vmRoot/host0",
                &[
                    TwinPhase::Drifted,
                    TwinPhase::Reconciling,
                    TwinPhase::Converged,
                ],
            )
        }),
        "remote subscriber never observed Drifted → Reconciling → Converged for host0; saw: {:?}",
        events
            .iter()
            .map(|e| (e.path.to_string(), e.phase))
            .collect::<Vec<_>>()
    );

    rpc.stop();
    platform.shutdown();
}

/// Corrective transactions are idempotent: a drift episode fires exactly
/// one corrective transaction per (fingerprint, attempt), so sustained
/// re-detection of the same drift never double-fires. With the device held
/// down (unrepairable), the episode stays open and no attempts burn.
#[test]
fn waker_escalates_to_degraded_then_converges_after_faults_clear() {
    let spec = small_topo();
    let twin = TwinConfig {
        max_attempts: 2,
        backoff_base_ms: 30,
        backoff_cap_ms: 150,
        ..fast_twin()
    };
    let (platform, devices) = start_twin(&spec, twin);
    let feed = platform.subscribe_twin();
    spawn_vms(&platform, &spec, 0, &["w0"]);
    std::thread::sleep(Duration::from_millis(300));

    // Every repair attempt (startVM) fails: the waker must burn through
    // its attempts and escalate to Degraded.
    devices.computes[0]
        .fault_plan()
        .fail_every_nth("startVM", 1);
    devices.computes[0].oob_power_cycle();

    let mut events: Vec<TwinEvent> = Vec::new();
    assert!(
        eventually(WAIT, || {
            events.extend(feed.drain());
            events
                .iter()
                .any(|e| e.path.to_string() == "/vmRoot/host0" && e.phase == TwinPhase::Degraded)
        }),
        "repair attempts exhausted but no Degraded escalation; saw {:?}",
        events
            .iter()
            .map(|e| (e.path.to_string(), e.phase))
            .collect::<Vec<_>>()
    );
    assert!(eventually(WAIT, || platform.counters().drift_escalated >= 1));

    // Degraded resources trickle-retry at the backoff cap: once the fault
    // script clears, the next attempt converges without operator action.
    devices.computes[0].fault_plan().clear();
    assert!(
        eventually(WAIT, || devices.computes[0].vm_power("w0")
            == Some(VmPower::Running)),
        "degraded resource never converged after faults cleared"
    );
    assert!(eventually(WAIT, || {
        events.extend(feed.drain());
        has_phase_subsequence(
            &events,
            "/vmRoot/host0",
            &[TwinPhase::Degraded, TwinPhase::Converged],
        )
    }));
    platform.shutdown();
}

/// `AdminClient::reload` reports how many paths had drifted before it
/// absorbed the physical state into the logical layer.
#[test]
fn reload_reports_drifted_path_count() {
    let spec = small_topo();
    // Twin disabled: this drill checks the synchronous operator path.
    let devices = spec.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(Arc::clone(&devices.registry)),
    );
    let admin = platform.admin();

    // No drift: reload reports zero drifted paths.
    let clean = admin.reload(&Path::root(), WAIT).unwrap();
    assert!(clean.ok, "{}", clean.message);
    assert_eq!(clean.drifted, 0);

    // Out-of-band VM (with its backing import so the layers can converge):
    // reload must adopt it and report the drift it absorbed.
    devices.computes[1].oob_create_vm("adopted", "external-img", 1_024, true);
    let result = admin.reload(&Path::root(), WAIT).unwrap();
    assert!(result.ok, "{}", result.message);
    assert!(
        result.drifted > 0,
        "reload absorbed out-of-band state but reported zero drifted paths"
    );
    platform.shutdown();
}

/// The drift-storm scenario: open-loop load while compute hosts flap
/// Down/Up (mid-flight transactions strand partial physical state), with
/// the reconciler enabled. After the storm every drifted resource must
/// converge and no acknowledged transaction may be lost.
#[test]
fn drift_storm_converges_with_zero_acked_loss() {
    let topo = TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 0,
        storage_capacity_mb: 100_000_000,
        ..Default::default()
    };
    let (platform, devices) = start_twin(&topo, fast_twin());
    let spec = ChaosSpec {
        seed: 17,
        duration_ms: 2_000,
        arrival_per_sec: 25.0,
        clients: 2,
        pool_vms: 4,
        faults: DriftStormSpec {
            seed: 17,
            duration_ms: 2_000,
            compute_hosts: topo.compute_hosts,
            flaps: 3,
            flap_down_ms: 250,
            every_nth: vec![("startVM".into(), 6)],
        }
        .generate(),
        drain_timeout: Duration::from_secs(120),
        ..Default::default()
    };

    // Guaranteed drift on top of whatever the flaps strand: mid-storm, a
    // host reboots out of band.
    let reboot_host = Arc::clone(&devices.computes[0]);
    let injector = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(1_000));
        reboot_host.oob_power_cycle()
    });

    let report = run_drift_storm(
        &platform,
        &topo,
        Some(&devices),
        &spec,
        Duration::from_secs(60),
    );
    let rebooted = injector.join().unwrap();

    assert!(report.chaos.submitted > 0, "no load was submitted");
    assert!(report.chaos.committed > 0, "nothing committed in the storm");
    assert_eq!(
        report.chaos.acked_lost, 0,
        "acknowledged transactions lost in the drift storm"
    );
    // The storm must actually have produced drift for the assertion to
    // mean anything — the scripted reboot guarantees it when pool VMs
    // landed on host0.
    if !rebooted.is_empty() {
        assert!(
            !report.drifted.is_empty(),
            "a mid-storm host reboot produced no drift episode"
        );
    }
    assert!(
        report.unconverged.is_empty(),
        "twin left resources unconverged after the storm: {:?}",
        report.unconverged
    );
    platform.shutdown();
}

// ---------------------------------------------------------------------
// Property: any sequence of injected drifts on a quiescent platform
// converges back to zero cross-layer diffs, autonomously.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum DriftOp {
    /// Host reboot: its VMs power off out of band.
    PowerCycle(u8),
    /// A rogue VM appears on a host.
    RogueVm(u8),
    /// The template image disappears from the storage server.
    LoseImage,
}

fn drift_op() -> impl Strategy<Value = DriftOp> {
    prop_oneof![
        (0u8..2).prop_map(DriftOp::PowerCycle),
        (0u8..2).prop_map(DriftOp::RogueVm),
        Just(DriftOp::LoseImage),
    ]
}

proptest! {
    // Each case boots a full platform; keep the count small.
    #![proptest_config(ProptestConfig { cases: 6 })]

    #[test]
    fn any_drift_sequence_converges_to_zero_diffs(
        ops in prop::collection::vec(drift_op(), 1..5)
    ) {
        let spec = small_topo();
        let (platform, devices) = start_twin(&spec, fast_twin());
        // One VM per host so power cycles always produce drift.
        spawn_vms(&platform, &spec, 0, &["p0"]);
        spawn_vms(&platform, &spec, 1, &["p1"]);
        std::thread::sleep(Duration::from_millis(300));

        for (i, op) in ops.iter().enumerate() {
            match op {
                DriftOp::PowerCycle(h) => {
                    devices.computes[*h as usize].oob_power_cycle();
                }
                DriftOp::RogueVm(h) => {
                    devices.computes[*h as usize].oob_create_vm(
                        &format!("rogue{i}"),
                        "rogue-img",
                        128,
                        false,
                    );
                }
                DriftOp::LoseImage => {
                    devices.storages[0].oob_lose_image(&spec.template_name);
                }
            }
            std::thread::sleep(Duration::from_millis(40));
        }

        // The reconciler must undo every injected drift on its own.
        let healed = eventually(WAIT, || {
            let vms_running = (0..2).all(|h| {
                devices.computes[h].vm_power(&format!("p{h}")) == Some(VmPower::Running)
            });
            let no_rogues = (0..2).all(|h| devices.computes[h].vm_count() == 1);
            let image_back = devices.storages[0].has_image(&spec.template_name);
            vms_running && no_rogues && image_back
        });
        prop_assert!(healed, "drift not healed: ops {:?}", ops);

        // Oracle: a full-scope operator repair finds nothing left to do.
        let settled = eventually(Duration::from_secs(10), || {
            let c = platform.counters();
            c.drift_detected == c.drift_repaired
        });
        prop_assert!(settled, "drift episodes left open");
        let admin = platform.admin();
        let result = admin.repair(&Path::root(), WAIT).unwrap();
        prop_assert!(result.ok, "{}", result.message);
        prop_assert_eq!(result.actions, 0, "twin left residual diffs for repair");
        prop_assert_eq!(result.drifted, 0);
        let c = platform.counters();
        prop_assert!(c.drift_detected >= 1, "no drift episode was ever detected");
        platform.shutdown();
    }
}

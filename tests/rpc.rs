//! End-to-end tests of the network RPC frontend: the frame layer's
//! integrity properties, version rejection over a live socket, and remote
//! clients driving real transactions through a served platform.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use tropic::coord::{write_frame, FrameError, FrameReader};
use tropic::core::rpc::{decode_response, encode_request, RpcRequest, RpcResponse};
use tropic::core::{
    ApiError, ExecMode, PlatformConfig, Priority, RemoteClient, RpcServer, Tropic, TxnRequest,
    TxnState,
};
use tropic::tcloud::TopologySpec;

fn spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    }
}

fn start() -> (Tropic, RpcServer) {
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            checkpoint_every: 0,
            ..Default::default()
        },
        spec().service(),
        ExecMode::LogicalOnly,
    );
    let server = platform.serve_rpc().expect("bind loopback");
    (platform, server)
}

// ---------------------------------------------------------------------
// Frame-layer properties.
// ---------------------------------------------------------------------

/// Serves at most `chunk` bytes per read — a socket delivering arbitrarily
/// fragmented TCP segments.
struct Trickle {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for Trickle {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = (self.data.len() - self.pos).min(self.chunk).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    /// However a frame sequence is split across reads, the reassembled
    /// payloads are byte-identical and in order.
    #[test]
    fn frames_reassemble_from_arbitrary_chunking(
        payloads in prop::collection::vec(prop::collection::vec(0u8..=255u8, 0..200), 1..6),
        chunk in 1usize..17,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut r = Trickle { data: wire, pos: 0, chunk };
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match reader.read_from(&mut r, 1 << 20) {
                Ok(Some(p)) => got.push(p),
                Ok(None) => prop_assert!(false, "Trickle never times out"),
                Err(FrameError::Closed) => break,
                Err(e) => prop_assert!(false, "unexpected {e}"),
            }
        }
        prop_assert_eq!(got, payloads);
    }

    /// Any single corrupted payload byte is caught by the CRC — typed,
    /// never a silent misparse (CRC-32 detects all single-byte errors).
    #[test]
    fn corrupt_payload_byte_rejected_typed(
        payload in prop::collection::vec(0u8..=255u8, 1..200),
        victim in 0usize..200,
        flip in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let idx = 8 + (victim % payload.len());
        wire[idx] ^= flip;
        let mut cursor = &wire[..];
        let mut reader = FrameReader::new();
        prop_assert!(matches!(
            reader.read_from(&mut cursor, 1 << 20),
            Err(FrameError::Crc { .. })
        ));
    }

    /// A length prefix past the cap is rejected before any payload is
    /// buffered, whatever the claimed size.
    #[test]
    fn oversized_length_prefix_rejected_typed(excess in 1u32..1_000_000) {
        let max = 4096u32;
        let mut wire = Vec::new();
        wire.extend_from_slice(&(max + excess).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = &wire[..];
        let mut reader = FrameReader::new();
        match reader.read_from(&mut cursor, max) {
            Err(FrameError::Oversized { len, max: m }) => {
                prop_assert_eq!(len, max + excess);
                prop_assert_eq!(m, max);
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Live-socket protocol boundary.
// ---------------------------------------------------------------------

/// Reads one response frame from a raw socket within 10 s.
fn read_response(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
) -> Result<RpcResponse, FrameError> {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match reader.read_from(stream, 4 << 20) {
            Ok(Some(payload)) => return Ok(decode_response(&payload).expect("v1 response")),
            Ok(None) => assert!(Instant::now() < deadline, "no response within 10s"),
            Err(e) => return Err(e),
        }
    }
}

#[test]
fn future_version_envelope_rejected_over_live_socket() {
    let (platform, server) = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = FrameReader::new();

    // A handcrafted v99 envelope whose payload this build cannot even
    // represent: the version probe must reject it at the boundary.
    write_frame(&mut stream, br#"{"v":99,"msg":{"HoloSubmit":{"x":1}}}"#).unwrap();
    match read_response(&mut stream, &mut reader).unwrap() {
        RpcResponse::Error(e) => {
            assert_eq!(e, ApiError::UnsupportedWireVersion { version: 99 });
            assert!(
                !e.retryable(),
                "a version mismatch needs an upgrade, not a retry"
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    // The reject is per-frame: the same connection still serves v1.
    write_frame(&mut stream, &encode_request(RpcRequest::Ping).unwrap()).unwrap();
    match read_response(&mut stream, &mut reader).unwrap() {
        RpcResponse::Pong { .. } => {}
        other => panic!("unexpected {other:?}"),
    }

    server.stop();
    platform.shutdown();
}

#[test]
fn malformed_payload_rejected_connection_survives() {
    let (platform, server) = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = FrameReader::new();

    write_frame(&mut stream, b"not json at all").unwrap();
    match read_response(&mut stream, &mut reader).unwrap() {
        RpcResponse::Error(e) => assert!(matches!(e, ApiError::InvalidRequest(_)), "{e}"),
        other => panic!("unexpected {other:?}"),
    }

    write_frame(&mut stream, &encode_request(RpcRequest::Ping).unwrap()).unwrap();
    assert!(matches!(
        read_response(&mut stream, &mut reader).unwrap(),
        RpcResponse::Pong { .. }
    ));

    server.stop();
    platform.shutdown();
}

#[test]
fn oversized_frame_rejected_typed_then_closed() {
    let (platform, server) = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = FrameReader::new();

    // Header only: a declared length past the server's cap must be
    // rejected without the server ever buffering a payload.
    let huge = (64u32 << 20).to_le_bytes();
    stream.write_all(&huge).unwrap();
    stream.write_all(&0u32.to_le_bytes()).unwrap();
    stream.flush().unwrap();
    match read_response(&mut stream, &mut reader).unwrap() {
        RpcResponse::Error(e) => {
            assert!(matches!(e, ApiError::InvalidRequest(_)), "{e}");
            assert!(!e.retryable());
        }
        other => panic!("unexpected {other:?}"),
    }
    // Past an oversized frame the stream is unsynchronized: closed.
    match read_response(&mut stream, &mut reader) {
        Err(FrameError::Closed) => {}
        other => panic!("expected close, got {other:?}"),
    }

    server.stop();
    platform.shutdown();
}

#[test]
fn corrupt_crc_rejected_typed_then_closed() {
    let (platform, server) = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = FrameReader::new();

    let payload = encode_request(RpcRequest::Ping).unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    let last = wire.len() - 1;
    wire[last] ^= 0xFF;
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();
    match read_response(&mut stream, &mut reader).unwrap() {
        RpcResponse::Error(e) => {
            assert!(matches!(e, ApiError::Transport(_)), "{e}");
            assert!(
                e.retryable(),
                "a damaged transport is retryable over a fresh connection"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    match read_response(&mut stream, &mut reader) {
        Err(FrameError::Closed) => {}
        other => panic!("expected close, got {other:?}"),
    }

    server.stop();
    platform.shutdown();
}

// ---------------------------------------------------------------------
// Remote client end-to-end.
// ---------------------------------------------------------------------

#[test]
fn remote_submit_wait_commits_and_records() {
    let (platform, server) = start();
    let spec = spec();
    let remote = RemoteClient::connect(server.addr()).unwrap();

    // The platform clock is wall time since start; give it a tick so the
    // probe can't legitimately answer 0 on a fast startup.
    std::thread::sleep(Duration::from_millis(2));
    assert!(remote.ping().unwrap() > 0, "platform clock over the wire");

    let handle = remote
        .submit_request(
            TxnRequest::new("spawnVM")
                .args(spec.spawn_args("rpc-vm", 0, 2_048))
                .priority(Priority::High)
                .deadline(Duration::from_secs(30))
                .label("origin", "remote"),
        )
        .unwrap();
    assert!(handle.deadline_ms().is_some());
    let outcome = handle.wait().unwrap();
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
    assert_eq!(outcome.id, handle.id());

    // Terminal outcomes also answer the non-blocking poll.
    assert_eq!(
        handle.try_outcome().unwrap().map(|o| o.state),
        Some(TxnState::Committed)
    );
    // ...and a zero-bound wait used as a poll, mirroring the in-process
    // handle: the server checks the outcome before the elapsed deadline.
    assert_eq!(
        handle.wait_timeout(Duration::ZERO).unwrap().state,
        TxnState::Committed
    );

    // The durable record crosses the wire whole.
    let record = remote.txn_record(handle.id()).unwrap().expect("retained");
    assert_eq!(record.proc_name, "spawnVM");
    assert!(
        !record.log.is_empty(),
        "execution log travels with the record"
    );

    let counters = platform.metrics().counters();
    assert!(counters.rpc_connections >= 1);
    assert!(counters.rpc_requests >= 4);

    server.stop();
    platform.shutdown();
}

#[test]
fn remote_batch_submit_lands_atomically() {
    let (platform, server) = start();
    let spec = spec();
    let remote = RemoteClient::connect(server.addr()).unwrap();

    let handles = remote
        .submit_batch(vec![
            TxnRequest::new("spawnVM").args(spec.spawn_args("batch-a", 1, 1_024)),
            TxnRequest::new("spawnVM")
                .args(spec.spawn_args("batch-b", 2, 1_024))
                .priority(Priority::Batch),
        ])
        .unwrap();
    assert_eq!(handles.len(), 2);
    for h in &handles {
        let o = h.wait_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
    }

    server.stop();
    platform.shutdown();
}

#[test]
fn remote_subscription_delivers_terminal_event() {
    let (platform, server) = start();
    let spec = spec();
    let remote = RemoteClient::connect(server.addr()).unwrap();
    let events = remote.subscribe().unwrap();

    let handle = remote
        .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args("sub-vm", 3, 512)))
        .unwrap();
    let outcome = handle.wait_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);

    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_terminal = false;
    while Instant::now() < deadline && !saw_terminal {
        if let Some(ev) = events.recv_timeout(Duration::from_millis(250)) {
            if ev.id == outcome.id && ev.state.is_final() {
                assert_eq!(ev.state, TxnState::Committed);
                assert_eq!(ev.proc_name, "spawnVM");
                saw_terminal = true;
            }
        }
    }
    assert!(
        saw_terminal,
        "terminal event must reach the remote subscriber"
    );
    assert!(platform.metrics().counters().rpc_events_streamed >= 1);
    assert!(events.is_live(), "feed alive while the server serves");

    server.stop();
    // The server closed the stream: the feed reports dead so a consumer
    // can tell a finished feed from a quiet one and resubscribe.
    let dead_by = Instant::now() + Duration::from_secs(10);
    while events.is_live() && Instant::now() < dead_by {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(!events.is_live(), "feed reports dead after server stop");

    drop(events);
    platform.shutdown();
}

#[test]
fn remote_error_taxonomy_preserves_retryable_partition() {
    let (platform, server) = start();
    let remote = RemoteClient::connect(server.addr()).unwrap();

    // A wait on a transaction that never existed times out server-side;
    // the typed error crosses the wire still marked retryable.
    let err = remote
        .handle(999_999_999)
        .wait_timeout(Duration::from_millis(400))
        .unwrap_err();
    assert!(matches!(err, ApiError::WaitTimeout { .. }), "{err}");
    assert!(err.retryable());

    // An unknown procedure aborts at admission; the outcome lifts into the
    // permanent partition — an application outcome, not a transport fault.
    let outcome = remote
        .submit_request(TxnRequest::new("noSuchProcedure"))
        .unwrap()
        .wait_timeout(Duration::from_secs(30))
        .unwrap();
    assert_eq!(outcome.state, TxnState::Aborted);
    let err = outcome.api_error().expect("typed abort");
    assert!(matches!(err, ApiError::UnknownProcedure(_)), "{err}");
    assert!(!err.retryable());

    server.stop();
    platform.shutdown();
}

#[test]
fn remote_signal_rides_the_admin_plane() {
    let (platform, server) = start();
    let spec = spec();
    let remote = RemoteClient::connect(server.addr()).unwrap();

    let handle = remote
        .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args("sig-vm", 0, 512)))
        .unwrap();
    // The transaction may already be done; the signal enqueue must still
    // succeed — delivery is the controller's concern.
    remote
        .admin()
        .signal(handle.id(), tropic::core::Signal::Term)
        .unwrap();
    let _ = handle.wait_timeout(Duration::from_secs(30));

    server.stop();
    platform.shutdown();
}

#[test]
fn eight_concurrent_remote_clients_idempotent_resubmits_converge() {
    let (platform, server) = start();
    let spec = spec();
    let addr = server.addr();

    let mut threads = Vec::new();
    for t in 0..8 {
        let args = spec.spawn_args("contended-vm", 1, 2_048);
        threads.push(std::thread::spawn(move || {
            let remote = RemoteClient::connect(addr).expect("connect");
            let mut ids = Vec::new();
            for round in 0..3 {
                let handle = remote
                    .submit_request(
                        TxnRequest::new("spawnVM")
                            .args(args.clone())
                            .idempotency_key("contended-spawn")
                            .label("thread", format!("{t}-{round}")),
                    )
                    .expect("submit");
                let outcome = handle
                    .wait_timeout(Duration::from_secs(60))
                    .expect("outcome");
                assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
                ids.push(outcome.id);
            }
            ids
        }));
    }

    let mut all_ids = Vec::new();
    for th in threads {
        all_ids.extend(th.join().expect("thread"));
    }
    assert_eq!(all_ids.len(), 24);
    all_ids.dedup();
    all_ids.sort_unstable();
    all_ids.dedup();
    assert_eq!(
        all_ids.len(),
        1,
        "every resubmission must dedup onto the one transaction that ran: {all_ids:?}"
    );

    server.stop();
    platform.shutdown();
}

#[test]
fn shutdown_request_sets_the_flag_but_keeps_serving() {
    let (platform, server) = start();
    let remote = RemoteClient::connect(server.addr()).unwrap();

    assert!(!server.shutdown_requested());
    remote.shutdown_server().unwrap();
    assert!(server.shutdown_requested());
    // The hosting process decides when to act; the server still answers.
    assert!(remote.ping().is_ok());

    server.stop();
    platform.shutdown();
}

// ---------------------------------------------------------------------
// Reactor scale-out and typed close reasons.
// ---------------------------------------------------------------------

/// Opens a raw streaming subscription: one socket, the `Subscribe`
/// handshake, no client-side thread — so a thousand of them cost the
/// test (and the server) file descriptors only.
fn raw_subscribe(addr: std::net::SocketAddr) -> (TcpStream, FrameReader) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let _ = stream.set_nodelay(true);
    write_frame(&mut stream, &encode_request(RpcRequest::Subscribe).unwrap()).unwrap();
    let mut reader = FrameReader::new();
    match read_response(&mut stream, &mut reader).unwrap() {
        RpcResponse::Subscribed => {}
        other => panic!("unexpected {other:?}"),
    }
    (stream, reader)
}

#[test]
fn thousand_idle_subscriptions_served_by_one_reactor() {
    let (platform, server) = start();
    let mut subs: Vec<(TcpStream, FrameReader)> =
        (0..1_000).map(|_| raw_subscribe(server.addr())).collect();

    // The request path stays interactive with 1 000 streams attached to
    // the same event loop.
    let remote = RemoteClient::connect(server.addr()).unwrap();
    remote.ping().unwrap();

    let spec = spec();
    let handle = remote
        .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args("fan-vm", 3, 512)))
        .unwrap();
    let outcome = handle.wait_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);

    // Fan-out reached the edges of the connection set: the terminal event
    // arrives on the first, middle, and last subscription.
    for idx in [0usize, 499, 999] {
        let (stream, reader) = &mut subs[idx];
        loop {
            match read_response(stream, reader).unwrap() {
                RpcResponse::Event(ev) if ev.id == outcome.id && ev.state.is_final() => break,
                RpcResponse::Event(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }
    // Every broadcast frame was counted per delivery.
    assert!(platform.metrics().counters().rpc_events_streamed >= 1_000);

    server.stop();
    platform.shutdown();
}

#[test]
fn corrupt_frame_closes_only_its_own_connection() {
    let (platform, server) = start();
    let mut a = TcpStream::connect(server.addr()).unwrap();
    let mut ra = FrameReader::new();
    let mut b = TcpStream::connect(server.addr()).unwrap();
    let mut rb = FrameReader::new();

    for (s, r) in [(&mut a, &mut ra), (&mut b, &mut rb)] {
        write_frame(s, &encode_request(RpcRequest::Ping).unwrap()).unwrap();
        assert!(matches!(
            read_response(s, r).unwrap(),
            RpcResponse::Pong { .. }
        ));
    }

    // A single flipped payload byte mid-stream on A: typed reject, close.
    let payload = encode_request(RpcRequest::Ping).unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    let last = wire.len() - 1;
    wire[last] ^= 0x01;
    a.write_all(&wire).unwrap();
    a.flush().unwrap();
    assert!(matches!(
        read_response(&mut a, &mut ra).unwrap(),
        RpcResponse::Error(ApiError::Transport(_))
    ));
    assert!(matches!(
        read_response(&mut a, &mut ra),
        Err(FrameError::Closed)
    ));

    // B shares the reactor but not the damage: it keeps being served.
    write_frame(&mut b, &encode_request(RpcRequest::Ping).unwrap()).unwrap();
    assert!(matches!(
        read_response(&mut b, &mut rb).unwrap(),
        RpcResponse::Pong { .. }
    ));

    server.stop();
    platform.shutdown();
}

#[test]
fn subscription_close_reason_distinguishes_shutdown() {
    let (platform, server) = start();
    let remote = RemoteClient::connect(server.addr()).unwrap();
    let events = remote.subscribe().unwrap();
    assert!(events.close_reason().is_none(), "no reason while live");

    server.stop();
    let deadline = Instant::now() + Duration::from_secs(10);
    while events.is_live() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(!events.is_live());
    // A planned stop says so: the typed goodbye frame, not silence.
    assert_eq!(events.close_reason(), Some(ApiError::ShuttingDown));

    platform.shutdown();
}

#[test]
fn observer_lease_expiry_closes_streams_typed_and_heals() {
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            checkpoint_every: 0,
            coord: tropic::coord::CoordConfig {
                observers: 1,
                ..Default::default()
            },
            ..Default::default()
        },
        spec().service(),
        ExecMode::LogicalOnly,
    );
    let server = platform.serve_rpc().expect("bind loopback");
    let observer = platform.coord().observer_ids()[0];
    assert!(platform.coord().observer_lease_valid(observer));

    let remote = RemoteClient::connect(server.addr()).unwrap();
    let events = remote.subscribe().unwrap();
    assert!(events.close_reason().is_none());

    // Kill the observer replica: its staleness lease can no longer be
    // renewed, so fan-out must stop rather than serve unbounded
    // staleness. The voters (and the whole request path) are untouched.
    platform.coord().crash_replica(observer);
    let deadline = Instant::now() + Duration::from_secs(10);
    while events.is_live() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(!events.is_live(), "stream must close on lease expiry");
    match events.close_reason() {
        Some(ApiError::LeaseExpired { observer: o }) => assert_eq!(o, observer as u64),
        other => panic!("expected LeaseExpired, got {other:?}"),
    }
    remote
        .ping()
        .expect("request path unaffected by observer loss");

    // New subscriptions are refused with the same typed (and retryable)
    // error while the lease is down.
    match remote.subscribe() {
        Err(e @ ApiError::LeaseExpired { .. }) => assert!(e.retryable()),
        Err(other) => panic!("expected LeaseExpired refusal, got {other}"),
        Ok(_) => panic!("subscription must be refused while the lease is down"),
    }

    // Heal: the restarted observer re-syncs from the leader, the lease
    // renews on the next tick, and subscriptions are accepted again.
    platform.coord().restart_replica(observer);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match remote.subscribe() {
            Ok(_healed) => break,
            Err(ApiError::LeaseExpired { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    server.stop();
    platform.shutdown();
}

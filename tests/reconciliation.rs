//! Resource volatility and reconciliation (paper §4): out-of-band device
//! drift is detected and healed by `repair` (logical → physical) or
//! absorbed by `reload` (physical → logical); stalled transactions respond
//! to TERM and KILL signals.
//!
//! This suite deliberately drives the *deprecated* stringly-typed client
//! shims (`submit`/`wait`/`submit_and_wait`, `Tropic::repair`/`reload`/
//! `signal`): they must stay green until the shims are removed. New tests
//! should use the typed API (`TxnRequest`/`TxnHandle`/`AdminClient`).
#![allow(deprecated)]

use std::time::Duration;

use tropic::core::{ExecMode, PlatformConfig, Signal, Tropic, TxnState};
use tropic::devices::LatencyModel;
use tropic::model::{Path, Value};
use tropic::tcloud::{TCloudDevices, TopologySpec};

const WAIT: Duration = Duration::from_secs(60);

fn start_with_latency(spec: &TopologySpec, latency: LatencyModel) -> (Tropic, TCloudDevices) {
    let devices = spec.build_devices(&latency);
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    (platform, devices)
}

fn start(spec: &TopologySpec) -> (Tropic, TCloudDevices) {
    start_with_latency(spec, LatencyModel::zero())
}

fn spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    }
}

/// The paper's flagship §4 scenario: a compute server reboots and its VMs
/// power off behind TROPIC's back; `repair` compares the layers and issues
/// `startVM` for each affected VM.
#[test]
fn repair_restarts_vms_after_host_reboot() {
    let spec = spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    for i in 0..3 {
        let o = client
            .submit_and_wait("spawnVM", spec.spawn_args(&format!("r{i}"), 0, 2_048), WAIT)
            .unwrap();
        assert_eq!(o.state, TxnState::Committed);
    }

    // Unexpected reboot.
    let affected = devices.computes[0].oob_power_cycle();
    assert_eq!(affected.len(), 3);

    let host0 = Path::parse("/vmRoot/host0").unwrap();
    let result = platform.repair(&host0, WAIT).unwrap();
    assert!(result.ok, "{}", result.message);
    assert_eq!(result.actions, 3, "one startVM per powered-off VM");
    for i in 0..3 {
        assert_eq!(
            devices.computes[0].vm_power(&format!("r{i}")),
            Some(tropic::devices::VmPower::Running)
        );
    }
    platform.shutdown();
}

#[test]
fn repair_removes_rogue_vm_and_restores_lost_image() {
    let spec = spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    client
        .submit_and_wait("spawnVM", spec.spawn_args("legit", 0, 2_048), WAIT)
        .unwrap();

    // Operator mischief: a rogue VM appears, a legit image disappears.
    devices.computes[1].oob_create_vm("rogue", "whatever", 256, false);
    devices.storages[0].oob_lose_image("legit-img");

    let result = platform.repair(&Path::root(), WAIT).unwrap();
    assert!(result.ok, "{}", result.message);
    assert_eq!(devices.computes[1].vm_count(), 0, "rogue VM removed");
    assert!(devices.storages[0].has_image("legit-img"), "image restored");
    assert!(
        devices.storages[0].is_exported("legit-img"),
        "export restored"
    );
    platform.shutdown();
}

/// `reload` pulls unexpected physical state into the logical layer: after
/// an operator provisions a VM via the device CLI, reload makes TROPIC
/// manage it.
#[test]
fn reload_adopts_out_of_band_state() {
    let spec = spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    client
        .submit_and_wait("spawnVM", spec.spawn_args("ours", 0, 2_048), WAIT)
        .unwrap();

    // Out-of-band VM on host1 (with its backing import so layers converge).
    devices.computes[1].oob_create_vm("adopted", "external-img", 1_024, true);

    let host1 = Path::parse("/vmRoot/host1").unwrap();
    let result = platform.reload(&host1, WAIT).unwrap();
    assert!(result.ok, "{}", result.message);

    // The logical layer now knows the VM: stopping it through TROPIC works.
    let o = client
        .submit_and_wait(
            "stopVM",
            vec![Value::from("/vmRoot/host1"), Value::from("adopted")],
            WAIT,
        )
        .unwrap();
    assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
    assert_eq!(
        devices.computes[1].vm_power("adopted"),
        Some(tropic::devices::VmPower::Stopped)
    );
    platform.shutdown();
}

#[test]
fn reload_rejected_when_it_would_violate_constraints() {
    let spec = TopologySpec {
        compute_hosts: 1,
        storage_hosts: 1,
        routers: 0,
        host_mem_mb: 2_048,
        ..Default::default()
    };
    let (platform, devices) = start(&spec);
    // Physical state that exceeds the host's memory capacity.
    devices.computes[0].oob_create_vm("huge-a", "img", 1_536, false);
    devices.computes[0].oob_create_vm("huge-b", "img", 1_536, false);
    let host0 = Path::parse("/vmRoot/host0").unwrap();
    let result = platform.reload(&host0, WAIT).unwrap();
    assert!(!result.ok);
    assert!(result.message.contains("vm-memory"), "{}", result.message);
    platform.shutdown();
}

/// TERM aborts a stalled transaction gracefully: the executed prefix is
/// undone on the devices and both layers stay consistent (paper §4).
#[test]
fn term_signal_aborts_stalled_transaction_cleanly() {
    let spec = spec();
    // createVM (the fourth of five actions) takes 3 s, so the TERM signal
    // sent mid-flight is observed at the poll before the fifth action.
    let latency = LatencyModel::zero().with_action("createVM", Duration::from_secs(3));
    let (platform, devices) = start_with_latency(&spec, latency);
    let before = devices.registry.physical_tree();
    let client = platform.client();
    let id = client
        .submit("spawnVM", spec.spawn_args("slow", 0, 2_048))
        .unwrap();
    // Give the worker time to reach the slow action, then TERM.
    std::thread::sleep(Duration::from_millis(500));
    platform.signal(id, Signal::Term).unwrap();
    let o = client.wait(id, WAIT).unwrap();
    assert_eq!(o.state, TxnState::Aborted);
    assert!(o.error.unwrap().contains("TERM"));
    // Devices rolled back.
    let after = devices.registry.physical_tree();
    assert!(before.diff(&after, &Path::root()).is_empty());
    // Layers consistent: a repair over the root is a no-op.
    let result = platform.repair(&Path::root(), WAIT).unwrap();
    assert!(result.ok && result.actions == 0, "{}", result.message);
    platform.shutdown();
}

/// KILL aborts immediately in the logical layer only; the leftover physical
/// prefix is reconciled by repair (paper §4).
#[test]
fn kill_signal_leaves_drift_that_repair_heals() {
    let spec = spec();
    let latency = LatencyModel::zero().with_action("createVM", Duration::from_secs(3));
    let (platform, devices) = start_with_latency(&spec, latency);
    let client = platform.client();
    let id = client
        .submit("spawnVM", spec.spawn_args("kild", 0, 2_048))
        .unwrap();
    std::thread::sleep(Duration::from_millis(500));
    platform.signal(id, Signal::Kill).unwrap();
    let o = client.wait(id, WAIT).unwrap();
    assert_eq!(o.state, TxnState::Aborted);

    // The cloned image (and possibly more) remains on the devices: drift.
    // Eventually the worker abandons; repair converges the layers.
    std::thread::sleep(Duration::from_secs(4));
    let result = platform.repair(&Path::root(), WAIT).unwrap();
    assert!(result.ok, "{}", result.message);
    assert!(
        !devices.storages[0].has_image("kild-img"),
        "repair must remove the orphaned image"
    );
    // The host accepts new work after reconciliation.
    let o = client
        .submit_and_wait("spawnVM", spec.spawn_args("fresh", 0, 2_048), WAIT)
        .unwrap();
    assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
    platform.shutdown();
}

/// Automatic stall handling: the controller's timeouts TERM, then KILL,
/// a transaction that never finishes (paper §4's bounded-time guarantee).
#[test]
fn stall_timeouts_fire_automatically() {
    let spec = spec();
    let latency = LatencyModel::zero().with_action("startVM", Duration::from_secs(30));
    let devices = spec.build_devices(&latency);
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            term_timeout_ms: Some(700),
            kill_timeout_ms: Some(2_500),
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    let client = platform.client();
    let id = client
        .submit("spawnVM", spec.spawn_args("stuck", 0, 2_048))
        .unwrap();
    let o = client.wait(id, WAIT).unwrap();
    // TERM cannot interrupt the 30 s device call in progress (signals are
    // polled between actions), so the KILL path finalizes the transaction.
    assert_eq!(o.state, TxnState::Aborted);
    platform.shutdown();
}

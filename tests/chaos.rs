//! Integration tests for the chaos harness: schedule determinism, end-to-end
//! injected-fault-count determinism under serialized submission, and the
//! zero-acknowledged-loss invariant across a leader kill.

use std::sync::Arc;
use std::time::Duration;

use tropic::coord::CoordConfig;
use tropic::core::{ExecMode, PlatformConfig, Tropic};
use tropic::devices::LatencyModel;
use tropic::tcloud::TopologySpec;
use tropic::workload::chaos::{
    run_chaos, ChaosSpec, FaultKind, FaultScope, LaneWeights, OpWeights, ScheduledFault, StormSpec,
};

fn small_topo() -> TopologySpec {
    TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 0,
        storage_capacity_mb: 100_000_000,
        ..Default::default()
    }
}

/// Same seed ⇒ byte-identical arrival schedule and fault storm; different
/// seed ⇒ different. This is what makes a chaos failure reproducible from
/// the two integers in its report.
#[test]
fn schedules_are_deterministic_per_seed() {
    let topo = small_topo();
    let spec = ChaosSpec {
        seed: 11,
        duration_ms: 8_000,
        arrival_per_sec: 25.0,
        ..Default::default()
    };
    assert_eq!(spec.plan(&topo), spec.plan(&topo));
    let reseeded = ChaosSpec {
        seed: 12,
        ..spec.clone()
    };
    assert_ne!(spec.plan(&topo), reseeded.plan(&topo));

    let storm = StormSpec {
        seed: 11,
        duration_ms: 8_000,
        compute_hosts: topo.compute_hosts,
        ..Default::default()
    };
    assert_eq!(storm.generate(), storm.generate());
    let reseeded = StormSpec {
        seed: 12,
        ..storm.clone()
    };
    assert_ne!(storm.generate(), reseeded.generate());
}

fn serialized_run(topo: &TopologySpec, spec: &ChaosSpec) -> (u64, u64, u64) {
    let devices = topo.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            checkpoint_every: 0,
            ..Default::default()
        },
        topo.service(),
        ExecMode::Physical(Arc::clone(&devices.registry)),
    );
    let report = run_chaos(&platform, topo, Some(&devices), spec);
    let counters = platform.counters();
    platform.shutdown();
    assert_eq!(report.acked_lost, 0, "no loss expected in a healthy run");
    (counters.faults_injected, report.committed, report.aborted)
}

/// With submission serialized (one client, one lane, one worker, one
/// controller) the device-action order is deterministic, so two identical
/// runs must inject the identical number of faults and finish with the
/// identical commit/abort split.
#[test]
fn injected_fault_counts_are_deterministic_when_serialized() {
    let topo = small_topo();
    let spec = ChaosSpec {
        seed: 5,
        duration_ms: 1_200,
        arrival_per_sec: 25.0,
        clients: 1,
        pool_vms: 0,
        ops: OpWeights {
            spawn: 1,
            toggle: 0,
            migrate: 0,
        },
        lanes: LaneWeights {
            high: 0,
            normal: 1,
            batch: 0,
        },
        faults: vec![ScheduledFault {
            at_ms: 0,
            kind: FaultKind::EveryNth {
                scope: FaultScope::AllComputes,
                action: "createVM".into(),
                n: 3,
            },
        }],
        ..Default::default()
    };
    let (injected_a, committed_a, aborted_a) = serialized_run(&topo, &spec);
    let (injected_b, committed_b, aborted_b) = serialized_run(&topo, &spec);
    assert!(injected_a > 0, "the every-3rd storm never fired");
    assert!(aborted_a > 0, "injected faults must surface as aborts");
    assert_eq!(injected_a, injected_b);
    assert_eq!(committed_a, committed_b);
    assert_eq!(aborted_a, aborted_b);
}

/// A leader kill mid-load must lose nothing acknowledged: a follower takes
/// over and every accepted submission still reaches a terminal state.
#[test]
fn leader_kill_under_load_loses_nothing_acknowledged() {
    let topo = small_topo();
    let devices = topo.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 3,
            workers: 1,
            checkpoint_every: 0,
            coord: CoordConfig {
                session_timeout_ms: 400,
                tick_ms: 20,
                ..CoordConfig::default()
            },
            ..Default::default()
        },
        topo.service(),
        ExecMode::Physical(Arc::clone(&devices.registry)),
    );
    let spec = ChaosSpec {
        seed: 21,
        duration_ms: 1_500,
        arrival_per_sec: 30.0,
        clients: 3,
        pool_vms: 4,
        faults: vec![ScheduledFault {
            at_ms: 600,
            kind: FaultKind::KillLeader {
                restart_after_ms: Some(700),
            },
        }],
        drain_timeout: Duration::from_secs(120),
        ..Default::default()
    };
    let report = run_chaos(&platform, &topo, Some(&devices), &spec);
    platform.shutdown();
    assert!(report.submitted > 0);
    assert!(
        report.committed > 0,
        "nothing committed across the failover"
    );
    assert_eq!(report.faults.leader_kills, 1);
    assert_eq!(
        report.acked_lost, 0,
        "acknowledged transactions lost across a leader kill"
    );
    // Per-lane accounting must cover every acknowledged submission.
    let lane_total: u64 = report.lanes.iter().map(|l| l.submitted).sum();
    assert_eq!(lane_total, report.submitted);
}

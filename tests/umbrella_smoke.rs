//! Smoke test for the umbrella crate: the `tropic::{model, coord, devices,
//! core, tcloud, workload}` re-export surface must compile, a one-txn
//! typed-API round trip must commit, and the deprecated legacy shim must
//! still work.

use std::time::Duration;

use tropic::core::{ExecMode, PlatformConfig, Tropic, TxnRequest, TxnState};
use tropic::tcloud::TopologySpec;

/// Touch one load-bearing type from every re-exported crate so a drifted
/// umbrella re-export breaks this test at compile time.
#[test]
fn reexport_surface_compiles() {
    let _path: tropic::model::Path = tropic::model::Path::parse("/vmRoot").unwrap();
    let _node: tropic::model::Node = tropic::model::Node::new("vmRoot");
    let _tree: tropic::model::Tree = tropic::model::Tree::new();
    let _coord_cfg: tropic::coord::CoordConfig = tropic::coord::CoordConfig::default();
    let _latency: tropic::devices::LatencyModel = tropic::devices::LatencyModel::zero();
    let _platform_cfg: tropic::core::PlatformConfig = PlatformConfig::default();
    let _spec: tropic::tcloud::TopologySpec = TopologySpec::default();
    let _trace: tropic::workload::Ec2Trace = tropic::workload::Ec2TraceSpec::default().generate();
    let _req: tropic::core::TxnRequest = TxnRequest::new("spawnVM");
    let _prio: tropic::core::Priority = tropic::core::Priority::default();
    let _err: Option<tropic::core::ApiError> = None;
}

/// One spawnVM transaction through a real (simulated-device) platform,
/// via the typed request/handle API.
#[test]
fn one_txn_typed_round_trip() {
    let spec = TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let devices = spec.build_devices(&tropic::devices::LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    let client = platform.client();
    let outcome = client
        .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args("web1", 0, 2_048)))
        .expect("platform reachable")
        .wait_timeout(Duration::from_secs(30))
        .expect("outcome");
    assert_eq!(
        outcome.state,
        TxnState::Committed,
        "error: {:?}",
        outcome.error
    );
    platform.shutdown();
}

/// The deprecated stringly-typed shim still works end to end.
#[test]
#[allow(deprecated)]
fn legacy_submit_and_wait_shim_still_commits() {
    let spec = TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    );
    let client = platform.client();
    let outcome = client
        .submit_and_wait(
            "spawnVM",
            spec.spawn_args("web1", 0, 2_048),
            Duration::from_secs(30),
        )
        .expect("platform reachable");
    assert_eq!(outcome.state, TxnState::Committed);
    platform.shutdown();
}

//! Smoke test for the umbrella crate: the `tropic::{model, coord, devices,
//! core, tcloud, workload}` re-export surface must compile and a one-txn
//! `submit_and_wait` round trip must commit.

use std::time::Duration;

use tropic::core::{ExecMode, PlatformConfig, Tropic, TxnState};
use tropic::tcloud::TopologySpec;

/// Touch one load-bearing type from every re-exported crate so a drifted
/// umbrella re-export breaks this test at compile time.
#[test]
fn reexport_surface_compiles() {
    let _path: tropic::model::Path = tropic::model::Path::parse("/vmRoot").unwrap();
    let _node: tropic::model::Node = tropic::model::Node::new("vmRoot");
    let _tree: tropic::model::Tree = tropic::model::Tree::new();
    let _coord_cfg: tropic::coord::CoordConfig = tropic::coord::CoordConfig::default();
    let _latency: tropic::devices::LatencyModel = tropic::devices::LatencyModel::zero();
    let _platform_cfg: tropic::core::PlatformConfig = PlatformConfig::default();
    let _spec: tropic::tcloud::TopologySpec = TopologySpec::default();
    let _trace: tropic::workload::Ec2Trace = tropic::workload::Ec2TraceSpec::default().generate();
}

/// One spawnVM transaction through a real (simulated-device) platform.
#[test]
fn one_txn_submit_and_wait_round_trip() {
    let spec = TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let devices = spec.build_devices(&tropic::devices::LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    let client = platform.client();
    let outcome = client
        .submit_and_wait(
            "spawnVM",
            spec.spawn_args("web1", 0, 2_048),
            Duration::from_secs(30),
        )
        .expect("platform reachable");
    assert_eq!(
        outcome.state,
        TxnState::Committed,
        "error: {:?}",
        outcome.error
    );
    platform.shutdown();
}

//! Property-based tests (proptest) for the core invariants:
//! path algebra, tree/diff/snapshot laws, lock-compatibility laws, and the
//! atomicity identity — simulate followed by logical rollback leaves the
//! data model bit-for-bit unchanged.

use proptest::prelude::*;

use tropic::core::{
    rollback_logical, simulate, with_intentions, LockManager, LockMode, LogicalOutcome, TxnRecord,
};
use tropic::model::{Node, Path, Tree, Value};
use tropic::tcloud::{actions, constraints, procs, TopologySpec};

// ---------------------------------------------------------------------
// Path algebra.
// ---------------------------------------------------------------------

fn segment() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{1,12}"
}

fn path_strategy() -> impl Strategy<Value = Path> {
    prop::collection::vec(segment(), 0..6)
        .prop_map(|segs| Path::from_segments(segs).expect("valid segments"))
}

proptest! {
    #[test]
    fn path_parse_display_roundtrip(p in path_strategy()) {
        let text = p.to_string();
        let back = Path::parse(&text).unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn path_ancestors_are_strict_prefixes(p in path_strategy()) {
        let ancestors = p.ancestors();
        prop_assert_eq!(ancestors.len(), p.depth());
        for (i, a) in ancestors.iter().enumerate() {
            prop_assert_eq!(a.depth(), i);
            prop_assert!(a.is_ancestor_of(&p));
            prop_assert!(!p.is_ancestor_of(a));
            prop_assert!(a.contains(&p));
        }
    }

    #[test]
    fn path_child_parent_inverse(p in path_strategy(), name in segment()) {
        let child = p.child(&name).unwrap();
        prop_assert_eq!(child.parent().unwrap(), p.clone());
        prop_assert_eq!(child.leaf().unwrap(), name.as_str());
        prop_assert!(p.is_ancestor_of(&child));
    }

    #[test]
    fn path_related_is_symmetric(a in path_strategy(), b in path_strategy()) {
        prop_assert_eq!(a.related(&b), b.related(&a));
    }
}

// ---------------------------------------------------------------------
// Tree laws.
// ---------------------------------------------------------------------

/// A small random tree: hosts with random attribute values and VM children.
fn tree_strategy() -> impl Strategy<Value = Tree> {
    prop::collection::vec(
        (
            segment(),
            0i64..100_000,
            prop::collection::vec((segment(), 0i64..10_000), 0..4),
        ),
        0..6,
    )
    .prop_map(|hosts| {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        for (hname, cap, vms) in hosts {
            let hpath = Path::parse("/vmRoot").unwrap().join(&hname);
            if t.exists(&hpath) {
                continue;
            }
            t.insert(&hpath, Node::new("vmHost").with_attr("memCapacity", cap))
                .unwrap();
            for (vname, mem) in vms {
                let vpath = hpath.join(&vname);
                if !t.exists(&vpath) {
                    t.insert(&vpath, Node::new("vm").with_attr("mem", mem))
                        .unwrap();
                }
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_snapshot_roundtrip(t in tree_strategy()) {
        let snap = t.to_snapshot().unwrap();
        let back = Tree::from_snapshot(&snap).unwrap();
        prop_assert_eq!(&t, &back);
        prop_assert!(t.diff(&back, &Path::root()).is_empty());
    }

    #[test]
    fn tree_diff_self_is_empty(t in tree_strategy()) {
        prop_assert!(t.diff(&t.clone(), &Path::root()).is_empty());
    }

    #[test]
    fn tree_diff_detects_any_attr_change(t in tree_strategy(), x in 0i64..1_000_000) {
        // Pick the deepest node and change an attribute; the diff must
        // report exactly one entry at that path.
        let paths: Vec<Path> = t.walk().into_iter().map(|(p, _)| p).collect();
        let target = paths.last().unwrap().clone();
        let mut other = t.clone();
        other.set_attr(&target, "probe", x).unwrap();
        let diffs = t.diff(&other, &Path::root());
        prop_assert_eq!(diffs.len(), 1);
        prop_assert_eq!(diffs[0].path(), &target);
    }

    #[test]
    fn tree_insert_remove_identity(t in tree_strategy(), name in segment(), mem in 0i64..4_096) {
        let mut mutated = t.clone();
        let target = Path::parse("/vmRoot").unwrap().join(&name);
        prop_assume!(!mutated.exists(&target));
        mutated
            .insert(&target, Node::new("vmHost").with_attr("memCapacity", mem))
            .unwrap();
        prop_assert!(mutated.exists(&target));
        mutated.remove(&target).unwrap();
        prop_assert_eq!(mutated, t);
    }

    #[test]
    fn node_count_matches_walk(t in tree_strategy()) {
        prop_assert_eq!(t.node_count(), t.walk().len());
    }
}

// ---------------------------------------------------------------------
// Lock-manager laws.
// ---------------------------------------------------------------------

fn mode_strategy() -> impl Strategy<Value = LockMode> {
    prop_oneof![
        Just(LockMode::R),
        Just(LockMode::W),
        Just(LockMode::IR),
        Just(LockMode::IW),
    ]
}

proptest! {
    #[test]
    fn lock_compatibility_symmetric(a in mode_strategy(), b in mode_strategy()) {
        prop_assert_eq!(a.compatible(b), b.compatible(a));
    }

    #[test]
    fn writers_on_unrelated_paths_never_conflict(a in path_strategy(), b in path_strategy()) {
        prop_assume!(!a.related(&b));
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&a, LockMode::W)).unwrap();
        prop_assert!(lm.try_acquire(2, &with_intentions(&b, LockMode::W)).is_ok());
    }

    #[test]
    fn writers_on_related_paths_always_conflict(a in path_strategy(), rest in prop::collection::vec(segment(), 0..3)) {
        let mut b = a.clone();
        for seg in &rest {
            b = b.join(seg);
        }
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&a, LockMode::W)).unwrap();
        prop_assert!(lm.try_acquire(2, &with_intentions(&b, LockMode::W)).is_err());
    }

    #[test]
    fn release_restores_acquirability(p in path_strategy(), m in mode_strategy()) {
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&p, LockMode::W)).unwrap();
        lm.release_all(1);
        prop_assert!(lm.is_empty());
        prop_assert!(lm.try_acquire(2, &with_intentions(&p, m)).is_ok());
    }
}

// ---------------------------------------------------------------------
// Atomicity identity: simulate + rollback = identity on the data model.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Spawn(u8, u8),
    Stop(u8, u8),
    Start(u8, u8),
    Migrate(u8, u8, u8),
    Destroy(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u8..4).prop_map(|(h, v)| Op::Spawn(h, v)),
        (0u8..3, 0u8..4).prop_map(|(h, v)| Op::Stop(h, v)),
        (0u8..3, 0u8..4).prop_map(|(h, v)| Op::Start(h, v)),
        (0u8..3, 0u8..3, 0u8..4).prop_map(|(s, d, v)| Op::Migrate(s, d, v)),
        (0u8..3, 0u8..4).prop_map(|(h, v)| Op::Destroy(h, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Run a random operation sequence; for each operation, simulating and
    /// then logically rolling back must restore the exact pre-transaction
    /// tree, regardless of whether the simulation would have been runnable.
    #[test]
    fn simulate_then_rollback_is_identity(ops in prop::collection::vec(op_strategy(), 1..12)) {
        let spec = TopologySpec {
            compute_hosts: 3,
            storage_hosts: 1,
            routers: 0,
            ..Default::default()
        };
        let action_registry = actions::all();
        let constraint_set = constraints::all();
        let proc_registry = procs::all();
        let mut tree = spec.build_tree();
        let mut locks = LockManager::new();
        let mut txn_id = 0u64;

        for op in &ops {
            txn_id += 1;
            let (name, args) = match op {
                Op::Spawn(h, v) => (
                    "spawnVM",
                    spec.spawn_args(&format!("vm{v}"), *h as usize, 2_048),
                ),
                Op::Stop(h, v) => (
                    "stopVM",
                    vec![
                        Value::from(TopologySpec::host_path(*h as usize).to_string()),
                        Value::from(format!("vm{v}")),
                    ],
                ),
                Op::Start(h, v) => (
                    "startVM",
                    vec![
                        Value::from(TopologySpec::host_path(*h as usize).to_string()),
                        Value::from(format!("vm{v}")),
                    ],
                ),
                Op::Migrate(s, d, v) => (
                    "migrateVM",
                    vec![
                        Value::from(TopologySpec::host_path(*s as usize).to_string()),
                        Value::from(TopologySpec::host_path(*d as usize).to_string()),
                        Value::from(format!("vm{v}")),
                    ],
                ),
                Op::Destroy(h, v) => (
                    "destroyVM",
                    vec![
                        Value::from(TopologySpec::host_path(*h as usize).to_string()),
                        Value::from(format!("vm{v}")),
                        Value::from(TopologySpec::storage_path(0).to_string()),
                    ],
                ),
            };
            let proc_ = proc_registry.get(name).unwrap();
            let before = tree.clone();
            let mut rec = TxnRecord::new(txn_id, name, args, 0);
            let outcome = simulate(
                &mut rec,
                proc_.as_ref(),
                &mut tree,
                &action_registry,
                &constraint_set,
                &mut locks,
            );
            match outcome {
                LogicalOutcome::Runnable => {
                    // Roll the transaction back, as if physical execution
                    // failed; the tree must be exactly the pre-state.
                    rollback_logical(&rec.log, &mut tree, &action_registry).unwrap();
                    locks.release_all(txn_id);
                    prop_assert_eq!(&tree, &before, "op {:?} not perfectly undone", op);
                    // Then re-apply and keep it (let state evolve so later
                    // ops in the sequence see interesting trees).
                    for r in &rec.log {
                        action_registry
                            .get(&r.action)
                            .unwrap()
                            .apply_logical(&mut tree, &r.object, &r.args)
                            .unwrap();
                    }
                    locks.release_all(txn_id);
                }
                LogicalOutcome::Aborted { .. } | LogicalOutcome::Deferred { .. } => {
                    // Aborted/deferred transactions must have no effect.
                    prop_assert_eq!(&tree, &before, "aborted op {:?} left effects", op);
                    prop_assert!(locks.locks_of(txn_id).is_empty());
                }
            }
        }
    }

    /// The EC2 trace scaler multiplies every statistic consistently.
    #[test]
    fn ec2_scaling_is_linear(factor in 1u32..6) {
        let base = tropic::workload::Ec2TraceSpec::default().generate();
        let scaled = base.scaled(factor);
        prop_assert_eq!(scaled.total(), base.total() * u64::from(factor));
        prop_assert_eq!(scaled.peak().0, base.peak().0 * factor);
        prop_assert_eq!(scaled.duration_s(), base.duration_s());
    }
}

// ---------------------------------------------------------------------
// Coordination-store multi atomicity (group commit).
// ---------------------------------------------------------------------

use tropic::coord::{CoordError, Op as ZnodeOp, ZnodeStore};

fn znode_path() -> impl Strategy<Value = Path> {
    prop::collection::vec("[abc]", 1..3)
        .prop_map(|segs| Path::from_segments(segs).expect("valid segments"))
}

/// Random store writes over a tiny path alphabet, so collisions, missing
/// parents, ephemeral parents, CAS misses, and sequential counters all
/// occur with useful frequency.
fn znode_op() -> impl Strategy<Value = ZnodeOp> {
    prop_oneof![
        (znode_path(), 0u8..3, 0u8..2).prop_map(|(path, kind, seq)| ZnodeOp::Create {
            path,
            data: vec![b'd'].into(),
            ephemeral_owner: (kind == 1).then_some(7),
            sequential: seq == 1,
        }),
        (znode_path(), 0u8..2).prop_map(|(path, cas)| ZnodeOp::SetData {
            path,
            data: vec![b's'].into(),
            expected_version: (cas == 1).then_some(0),
        }),
        (znode_path(), 0u8..2).prop_map(|(path, cas)| ZnodeOp::Delete {
            path,
            expected_version: (cas == 1).then_some(0),
        }),
        Just(ZnodeOp::PurgeSession { session: 7 }),
    ]
}

fn seeded_store(seed: &[ZnodeOp]) -> ZnodeStore {
    let mut store = ZnodeStore::new();
    for (i, op) in seed.iter().enumerate() {
        let _ = store.apply(i as u64 + 1, op);
    }
    store
}

proptest! {
    /// A batch containing one certainly-failing op must leave the store
    /// byte-identical to its pre-batch state and emit no events, no matter
    /// what surrounds the failure.
    #[test]
    fn multi_with_failing_op_is_byte_identical_noop(
        seed in prop::collection::vec(znode_op(), 0..10),
        prefix in prop::collection::vec(znode_op(), 0..5),
        suffix in prop::collection::vec(znode_op(), 0..5),
    ) {
        let mut store = seeded_store(&seed);
        let before = store.clone();
        let mut ops = prefix;
        // The parent path never exists (outside the generation alphabet),
        // so this delete fails regardless of what the prefix created.
        ops.push(ZnodeOp::Delete {
            path: Path::parse("/never/x").unwrap(),
            expected_version: None,
        });
        ops.extend(suffix);
        let (res, events) = store.apply(1_000, &ZnodeOp::Multi { ops });
        prop_assert!(matches!(res, Err(CoordError::MultiFailed { .. })));
        prop_assert!(events.is_empty(), "failed batch fired events: {:?}", events);
        prop_assert_eq!(&store, &before);
        prop_assert_eq!(format!("{store:?}"), format!("{before:?}"));
    }

    /// A multi behaves exactly like its sub-ops applied in sequence when
    /// every sub-op succeeds, and exactly like nothing at all otherwise.
    #[test]
    fn multi_equals_sequential_or_nothing(
        seed in prop::collection::vec(znode_op(), 0..10),
        batch in prop::collection::vec(znode_op(), 0..8),
    ) {
        let mut store = seeded_store(&seed);
        let before = store.clone();
        let zxid = 1_000u64;
        let (res, _) = store.apply(zxid, &ZnodeOp::Multi { ops: batch.clone() });
        match res {
            Ok(_) => {
                let mut sequential = before;
                for op in &batch {
                    let (r, _) = sequential.apply(zxid, op);
                    prop_assert!(r.is_ok(), "multi committed but {:?} fails alone", op);
                }
                prop_assert_eq!(&store, &sequential);
            }
            Err(CoordError::MultiFailed { .. }) => {
                prop_assert_eq!(&store, &before);
                prop_assert_eq!(format!("{store:?}"), format!("{before:?}"));
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }
}

// ---------------------------------------------------------------------
// Durability: snapshot + WAL-suffix replay reconstructs the live store.
// ---------------------------------------------------------------------

use tropic::coord::{DurabilityOptions, Ensemble, SyncPolicy, TempDir};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any op sequence (including failing ops, sequential creates, and
    /// session purges) and any snapshot cadence, recovering from disk —
    /// latest fuzzy snapshot plus the WAL suffix after it — reconstructs a
    /// store byte-identical to the live one: same data, versions, zxids,
    /// ephemeral owners, and sequential counters. Replay is silent by
    /// construction: it runs below the service layer, so no watch can fire.
    #[test]
    fn snapshot_plus_wal_suffix_replay_is_byte_identical(
        ops in prop::collection::vec(znode_op(), 1..40),
        snapshot_every in 1u64..9,
    ) {
        let tmp = TempDir::new("tropic-prop-durable");
        let opts = DurabilityOptions {
            sync_policy: SyncPolicy::Periodic { every_ops: 8 },
            snapshot_every_ops: snapshot_every,
            snapshot_max_wal_bytes: 0,
            segment_max_bytes: 256, // tiny segments: rotation is exercised
            ..DurabilityOptions::default()
        };
        let mut live = Ensemble::with_durability(1, 1, tmp.path(), opts.clone()).unwrap();
        for op in &ops {
            let _ = live.submit(op.clone()); // failures are logged + replayed too
        }
        let live_store = live.read(|s| s.clone()).unwrap();
        let live_zxid = live.replica_last_zxid(0).unwrap();
        drop(live); // total power loss

        let mut recovered = Ensemble::recover(1, 1, tmp.path(), opts).unwrap();
        let recovered_store = recovered.read(|s| s.clone()).unwrap();
        prop_assert_eq!(&recovered_store, &live_store);
        prop_assert_eq!(
            format!("{recovered_store:?}"),
            format!("{live_store:?}"),
            "recovered store must be byte-identical (cseq, zxids, owners included)"
        );
        prop_assert_eq!(recovered.replica_last_zxid(0).unwrap(), live_zxid);
    }
}

use tropic::coord::{snapshot, Durability};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The byte-identical replay law holds for every delta-chain bound:
    /// `0` disables deltas outright, small bounds force frequent full
    /// compaction, larger bounds recover through `full + delta chain +
    /// WAL suffix`. The recovered bytes must not depend on the bound.
    #[test]
    fn delta_chain_replay_is_byte_identical_for_any_chain_bound(
        ops in prop::collection::vec(znode_op(), 1..40),
        snapshot_every in 1u64..6,
        chain_max in 0u64..4,
    ) {
        let tmp = TempDir::new("tropic-prop-delta-chain");
        let opts = DurabilityOptions {
            sync_policy: SyncPolicy::Periodic { every_ops: 8 },
            snapshot_every_ops: snapshot_every,
            snapshot_max_wal_bytes: 0,
            segment_max_bytes: 256,
            delta_chain_max: chain_max,
            ..DurabilityOptions::default()
        };
        let mut live = Ensemble::with_durability(1, 1, tmp.path(), opts.clone()).unwrap();
        for op in &ops {
            let _ = live.submit(op.clone());
        }
        let live_store = live.read(|s| s.clone()).unwrap();
        let live_zxid = live.replica_last_zxid(0).unwrap();
        drop(live);

        let mut recovered = Ensemble::recover(1, 1, tmp.path(), opts).unwrap();
        let recovered_store = recovered.read(|s| s.clone()).unwrap();
        prop_assert_eq!(&recovered_store, &live_store);
        prop_assert_eq!(format!("{recovered_store:?}"), format!("{live_store:?}"));
        prop_assert_eq!(recovered.replica_last_zxid(0).unwrap(), live_zxid);
    }

    /// A crash mid-delta-write leaves either a half-written `.tmp` next to
    /// a valid chain (the rename never happened) or a torn delta file (the
    /// rename happened over torn sectors). Recovery must sweep the former
    /// losing nothing, and fall back to the longest valid chain prefix —
    /// a consistent earlier state, never a panic — for the latter.
    #[test]
    fn torn_delta_write_recovers_longest_valid_chain_prefix(
        seed in prop::collection::vec(znode_op(), 1..15),
        chunks in prop::collection::vec(prop::collection::vec(znode_op(), 1..6), 1..4),
        torn_rename in 0u8..2,
    ) {
        let torn_rename = torn_rename == 1;
        let tmp = TempDir::new("tropic-prop-torn-delta");
        let mut store = ZnodeStore::new();
        let mut zxid = 0u64;
        for op in &seed {
            zxid += 1;
            let _ = store.apply(zxid, op);
        }
        snapshot::write(tmp.path(), zxid, &store).unwrap();
        store.clear_dirty();
        // Checkpoints: the consistent on-disk state after each chain link.
        let mut checkpoints = vec![(zxid, store.clone())];
        for chunk in &chunks {
            let base = zxid;
            for op in chunk {
                zxid += 1;
                let _ = store.apply(zxid, op);
            }
            snapshot::write_delta(tmp.path(), base, zxid, &store.delta_records()).unwrap();
            store.clear_dirty();
            checkpoints.push((zxid, store.clone()));
        }

        let debris = tmp.path().join(format!("{}.tmp", snapshot::delta_file_name(zxid + 1)));
        let expect = if torn_rename {
            // The newest delta itself is torn: recovery falls back one link.
            let victim = tmp.path().join(snapshot::delta_file_name(zxid));
            let mut bytes = std::fs::read(&victim).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&victim, &bytes).unwrap();
            &checkpoints[checkpoints.len() - 2]
        } else {
            // The next delta never finished renaming: only debris remains.
            std::fs::write(&debris, b"half-written").unwrap();
            checkpoints.last().unwrap()
        };

        let (_, snap, suffix) = Durability::open(tmp.path(), DurabilityOptions::default()).unwrap();
        prop_assert!(!debris.exists(), "tmp debris must be swept at open");
        prop_assert!(suffix.is_empty());
        let (snap_zxid, snap_store) = snap.expect("chain prefix recovers");
        prop_assert_eq!(snap_zxid, expect.0);
        prop_assert_eq!(&snap_store, &expect.1);
        prop_assert_eq!(format!("{snap_store:?}"), format!("{:?}", expect.1));
    }

    /// A crash *between* the snapshot rename and the WAL truncation leaves
    /// records at or below the chain tip in the live segments. Replay must
    /// skip them — applying them twice would corrupt versions and cseq —
    /// and still reconstruct the live bytes from chain + suffix.
    #[test]
    fn crash_between_snapshot_and_wal_truncation_is_idempotent(
        ops in prop::collection::vec(znode_op(), 2..30),
        a in 0u64..1_000,
        b in 0u64..1_000,
    ) {
        let tmp = TempDir::new("tropic-prop-crash-window");
        let opts = DurabilityOptions {
            sync_policy: SyncPolicy::Periodic { every_ops: 4 },
            snapshot_every_ops: 0, // never auto-snapshot: every record stays
            snapshot_max_wal_bytes: 0,
            ..DurabilityOptions::default()
        };
        let mut d = Durability::create(tmp.path(), opts.clone()).unwrap();
        let mut store = ZnodeStore::new();
        for (i, op) in ops.iter().enumerate() {
            let zxid = i as u64 + 1;
            d.append(zxid, op).unwrap();
            let _ = store.apply(zxid, op);
            d.commit_batch(zxid, &mut store).unwrap();
        }
        let live = store;
        drop(d);

        // Manufacture the crash window: a full snapshot at t1 and a delta
        // at t2 hit disk, but the WAL still holds records 1..=n.
        let n = ops.len() as u64;
        let t1 = a % n + 1;
        let t2 = (b % n + 1).max(t1);
        let mut replay = ZnodeStore::new();
        for (i, op) in ops.iter().enumerate() {
            let zxid = i as u64 + 1;
            if zxid > t1 {
                break;
            }
            let _ = replay.apply(zxid, op);
        }
        snapshot::write(tmp.path(), t1, &replay).unwrap();
        replay.clear_dirty();
        if t2 > t1 {
            for (i, op) in ops.iter().enumerate() {
                let zxid = i as u64 + 1;
                if zxid <= t1 || zxid > t2 {
                    continue;
                }
                let _ = replay.apply(zxid, op);
            }
            snapshot::write_delta(tmp.path(), t1, t2, &replay.delta_records()).unwrap();
        }

        let (_, snap, suffix) = Durability::open(tmp.path(), opts).unwrap();
        let (snap_zxid, mut recovered) = snap.expect("chain recovers");
        prop_assert_eq!(snap_zxid, t2);
        for (zxid, op) in &suffix {
            prop_assert!(*zxid > t2, "suffix must skip records at or below the tip");
            let _ = recovered.apply(*zxid, op);
        }
        prop_assert_eq!(&recovered, &live);
        prop_assert_eq!(format!("{recovered:?}"), format!("{live:?}"));
    }
}

/// A WAL whose tail was torn mid-write (or corrupted on disk) must recover
/// to the last valid record — never panic, never resurrect the tear.
#[test]
fn corrupted_wal_tail_recovers_to_last_valid_record() {
    let tmp = TempDir::new("tropic-prop-torn");
    let opts = DurabilityOptions {
        snapshot_every_ops: 0, // keep every record in the WAL
        snapshot_max_wal_bytes: 0,
        ..DurabilityOptions::default()
    };
    {
        let mut e = Ensemble::with_durability(1, 1, tmp.path(), opts.clone()).unwrap();
        for i in 0..7 {
            e.submit(ZnodeOp::Create {
                path: Path::parse(&format!("/t{i}")).unwrap(),
                data: vec![b'x'].into(),
                ephemeral_owner: None,
                sequential: false,
            })
            .0
            .unwrap();
        }
    }
    let replica_dir = tmp.path().join("replica-0");
    let (_, segment) = tropic::coord::wal::list_segments(&replica_dir)
        .unwrap()
        .pop()
        .unwrap();
    let mut bytes = std::fs::read(&segment).unwrap();
    // Corrupt the final record's payload: its checksum no longer matches,
    // exactly as a torn sector would look after power loss.
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&segment, &bytes).unwrap();

    let mut recovered = Ensemble::recover(1, 1, tmp.path(), opts).unwrap();
    let count = recovered.read(|s| s.node_count()).unwrap();
    assert_eq!(
        count, 7,
        "six creates survive, the corrupt seventh is dropped"
    );
    // The truncated log accepts new writes immediately.
    recovered
        .submit(ZnodeOp::Create {
            path: Path::parse("/fresh").unwrap(),
            data: vec![b'y'].into(),
            ephemeral_owner: None,
            sequential: false,
        })
        .0
        .unwrap();
}

// ---------------------------------------------------------------------
// Wire-format compatibility (the versioned client envelope).
// ---------------------------------------------------------------------

use tropic::core::{decode_input, encode_input, InputMsg, Priority};

fn priority_strategy() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::High),
        Just(Priority::Normal),
        Just(Priority::Batch),
    ]
}

fn label_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(("[a-z]{1,8}", "[a-z0-9]{0,8}"), 0..4)
}

/// A JSON string safe to splice into handcrafted legacy wire bytes.
fn wire_token() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,11}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Enveloped messages round-trip bit-exactly through encode/decode for
    /// every combination of the new submission fields.
    #[test]
    fn envelope_roundtrips_submissions(
        id in 1u64..1_000_000,
        proc_name in wire_token(),
        submitted_ms in 0u64..u64::MAX / 2,
        priority in priority_strategy(),
        deadline_ms in prop::option::of(0u64..u64::MAX / 2),
        idempotency_key in prop::option::of(wire_token()),
        labels in label_strategy(),
    ) {
        let bytes = encode_input(InputMsg::Submit {
            id,
            proc_name: proc_name.clone(),
            args: vec![Value::from("a"), Value::Int(7)],
            submitted_ms,
            priority,
            deadline_ms,
            idempotency_key: idempotency_key.clone(),
            labels: labels.clone(),
        });
        match decode_input(&bytes).expect("decodable") {
            InputMsg::Submit {
                id: id2,
                proc_name: p2,
                args: a2,
                submitted_ms: s2,
                priority: pr2,
                deadline_ms: d2,
                idempotency_key: k2,
                labels: l2,
            } => {
                prop_assert_eq!(id2, id);
                prop_assert_eq!(p2, proc_name);
                prop_assert_eq!(a2, vec![Value::from("a"), Value::Int(7)]);
                prop_assert_eq!(s2, submitted_ms);
                prop_assert_eq!(pr2, priority);
                prop_assert_eq!(d2, deadline_ms);
                prop_assert_eq!(k2, idempotency_key);
                prop_assert_eq!(l2, labels);
            }
            other => prop_assert!(false, "unexpected variant {:?}", other),
        }
    }

    /// Bytes exactly as pre-versioning builds wrote them — bare externally
    /// tagged `InputMsg`, no envelope, none of the new fields — must still
    /// decode into v1 requests with the documented defaults, so queued
    /// submissions survive a rolling upgrade.
    #[test]
    fn legacy_unversioned_bytes_decode_as_v1(
        id in 1u64..1_000_000,
        proc_name in wire_token(),
        submitted_ms in 0u64..u64::MAX / 2,
        arg in wire_token(),
    ) {
        let legacy = format!(
            r#"{{"Submit":{{"id":{id},"proc_name":"{proc_name}","args":[{{"Str":"{arg}"}}],"submitted_ms":{submitted_ms}}}}}"#
        );
        match decode_input(legacy.as_bytes()).expect("legacy decodable") {
            InputMsg::Submit {
                id: id2,
                proc_name: p2,
                args,
                submitted_ms: s2,
                priority,
                deadline_ms,
                idempotency_key,
                labels,
            } => {
                prop_assert_eq!(id2, id);
                prop_assert_eq!(p2, proc_name);
                prop_assert_eq!(args, vec![Value::from(arg)]);
                prop_assert_eq!(s2, submitted_ms);
                prop_assert_eq!(priority, Priority::Normal);
                prop_assert_eq!(deadline_ms, None);
                prop_assert_eq!(idempotency_key, None);
                prop_assert_eq!(labels, Vec::new());
            }
            other => prop_assert!(false, "unexpected variant {:?}", other),
        }

        // And the re-encoded (enveloped) form decodes identically: an
        // upgraded controller may re-queue what it read.
        let reencoded = encode_input(decode_input(legacy.as_bytes()).unwrap());
        match decode_input(&reencoded).expect("re-encodable") {
            InputMsg::Submit { id: id3, .. } => prop_assert_eq!(id3, id),
            other => prop_assert!(false, "unexpected variant {:?}", other),
        }
    }

    /// Signals and admin ops round-trip through the envelope too.
    #[test]
    fn envelope_roundtrips_control_messages(admin_id in 1u64..1_000) {
        use tropic::core::Signal;
        for msg in [
            InputMsg::Signal { id: admin_id, signal: Signal::Term },
            InputMsg::Repair { scope: Path::root(), admin_id },
            InputMsg::Reload { scope: Path::root(), admin_id },
        ] {
            let bytes = encode_input(msg.clone());
            let back = decode_input(&bytes).expect("decodable");
            prop_assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(&msg).unwrap()
            );
        }
    }
}

//! Atomicity under failure (paper §3.2, §6.3): injected device faults roll
//! transactions back completely; failed undos leave a flagged, repairable
//! inconsistency.
//!
//! This suite deliberately drives the *deprecated* stringly-typed client
//! shims (`submit`/`wait`/`submit_and_wait`, `Tropic::repair`/`reload`/
//! `signal`): they must stay green until the shims are removed. New tests
//! should use the typed API (`TxnRequest`/`TxnHandle`/`AdminClient`).
#![allow(deprecated)]

use std::time::Duration;

use tropic::core::{ExecMode, PlatformConfig, Tropic, TxnState};
use tropic::devices::{Device, LatencyModel};
use tropic::model::Path;
use tropic::tcloud::{TCloudDevices, TopologySpec};

const WAIT: Duration = Duration::from_secs(60);

fn start(spec: &TopologySpec) -> (Tropic, TCloudDevices) {
    let devices = spec.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    (platform, devices)
}

fn spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    }
}

/// The paper's §3.2 walk-through: four actions succeed, the fifth fails,
/// undo records #4–#1 execute in reverse, leaving no trace anywhere.
#[test]
fn spawn_error_in_last_step_rolls_back_both_layers() {
    let spec = spec();
    let (platform, devices) = start(&spec);
    let before_physical = devices.registry.physical_tree();
    devices.computes[0].fault_plan().fail_once("startVM");

    let client = platform.client();
    let outcome = client
        .submit_and_wait("spawnVM", spec.spawn_args("doomed", 0, 2048), WAIT)
        .unwrap();
    assert_eq!(outcome.state, TxnState::Aborted);
    let err = outcome.error.unwrap();
    assert!(err.contains("#5"), "failure was in the fifth action: {err}");

    // Physical layer: fully rolled back.
    let after = devices.registry.physical_tree();
    assert!(before_physical.diff(&after, &Path::root()).is_empty());
    assert!(!devices.storages[0].has_image("doomed-img"));

    // Logical layer: a retry of the same VM succeeds, proving no leftover
    // logical state (orphans would make cloneImage fail).
    let retry = client
        .submit_and_wait("spawnVM", spec.spawn_args("doomed", 0, 2048), WAIT)
        .unwrap();
    assert_eq!(retry.state, TxnState::Committed, "{:?}", retry.error);
    platform.shutdown();
}

#[test]
fn migrate_error_in_last_step_rolls_back() {
    let spec = spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();
    client
        .submit_and_wait("spawnVM", spec.spawn_args("mig", 0, 2048), WAIT)
        .unwrap();
    let stable = devices.registry.physical_tree();

    // Fail the last migrate step (startVM on the destination host).
    devices.computes[1].fault_plan().fail_once("startVM");
    let outcome = client
        .submit_and_wait(
            "migrateVM",
            vec!["/vmRoot/host0".into(), "/vmRoot/host1".into(), "mig".into()],
            WAIT,
        )
        .unwrap();
    assert_eq!(outcome.state, TxnState::Aborted);

    // The VM is back on host0, running, and host1 carries nothing.
    let after = devices.registry.physical_tree();
    assert!(
        stable.diff(&after, &Path::root()).is_empty(),
        "rollback must restore the pre-migration state exactly"
    );
    platform.shutdown();
}

#[test]
fn fault_in_first_action_has_no_effect_at_all() {
    let spec = spec();
    let (platform, devices) = start(&spec);
    devices.storages[0].fault_plan().fail_once("cloneImage");
    let before = devices.registry.physical_tree();
    let client = platform.client();
    let outcome = client
        .submit_and_wait("spawnVM", spec.spawn_args("x", 0, 2048), WAIT)
        .unwrap();
    assert_eq!(outcome.state, TxnState::Aborted);
    let err = outcome.error.unwrap();
    assert!(err.contains("#1"), "{err}");
    assert!(before
        .diff(&devices.registry.physical_tree(), &Path::root())
        .is_empty());
    platform.shutdown();
}

/// Undo failure → `Failed` state, partial physical rollback, inconsistency
/// marking, and denial of further transactions until repair (paper §4).
#[test]
fn undo_failure_marks_inconsistent_and_repair_recovers() {
    let spec = spec();
    let (platform, devices) = start(&spec);
    let client = platform.client();

    // startVM fails, then the undo of importImage (unimportImage) fails too.
    devices.computes[0].fault_plan().fail_once("startVM");
    devices.computes[0].fault_plan().fail_once("unimportImage");
    let outcome = client
        .submit_and_wait("spawnVM", spec.spawn_args("bad", 0, 2048), WAIT)
        .unwrap();
    assert_eq!(outcome.state, TxnState::Failed);
    let err = outcome.error.unwrap();
    assert!(err.contains("undo"), "{err}");

    // The host is quarantined: new transactions on it abort immediately.
    let denied = client
        .submit_and_wait("spawnVM", spec.spawn_args("next", 0, 2048), WAIT)
        .unwrap();
    assert_eq!(denied.state, TxnState::Aborted);
    assert!(denied.error.unwrap().contains("inconsistent"));

    // The other host still works — useful work continues on consistent
    // parts of the data model (paper §2.2).
    let other = client
        .submit_and_wait("spawnVM", spec.spawn_args("ok", 1, 2048), WAIT)
        .unwrap();
    assert_eq!(other.state, TxnState::Committed, "{:?}", other.error);

    // Repair reconciles the leftover physical state (the image import that
    // failed to undo) and clears the marker.
    let host0 = Path::parse("/vmRoot/host0").unwrap();
    let result = platform.repair(&host0, WAIT).unwrap();
    assert!(result.ok, "{}", result.message);

    // The host accepts transactions again.
    let healed = client
        .submit_and_wait("spawnVM", spec.spawn_args("next", 0, 2048), WAIT)
        .unwrap();
    assert_eq!(healed.state, TxnState::Committed, "{:?}", healed.error);
    platform.shutdown();
}

#[test]
fn random_fault_injection_never_leaks_partial_state() {
    // Sweep the fault over every step of spawnVM; after each aborted
    // attempt the physical layer must equal its pre-transaction state.
    let actions = [
        "cloneImage",
        "exportImage",
        "importImage",
        "createVM",
        "startVM",
    ];
    for (i, action) in actions.iter().enumerate() {
        let spec = spec();
        let (platform, devices) = start(&spec);
        let before = devices.registry.physical_tree();
        let device_holder: &dyn tropic::devices::Device = if i < 2 {
            &*devices.storages[0]
        } else {
            &*devices.computes[0]
        };
        device_holder.fault_plan().fail_once(action);
        let client = platform.client();
        let outcome = client
            .submit_and_wait("spawnVM", spec.spawn_args("v", 0, 2048), WAIT)
            .unwrap();
        assert_eq!(outcome.state, TxnState::Aborted, "fault in {action}");
        assert!(
            before
                .diff(&devices.registry.physical_tree(), &Path::root())
                .is_empty(),
            "leftover state after fault in {action}"
        );
        platform.shutdown();
    }
}

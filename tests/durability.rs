//! Durability-subsystem integration tests: full-datacenter power loss and
//! recovery from disk, bounded replica logs, torn-tail WAL handling, and
//! suffix-vs-snapshot follower resync.
//!
//! This suite deliberately drives the *deprecated* stringly-typed client
//! shims (`submit`/`wait`/`submit_and_wait`, `Tropic::repair`/`reload`/
//! `signal`): they must stay green until the shims are removed. New tests
//! should use the typed API (`TxnRequest`/`TxnHandle`/`AdminClient`).
#![allow(deprecated)]

use std::time::Duration;

use tropic::coord::{wal, CoordConfig, DurabilityOptions, Ensemble, Op, SyncPolicy, TempDir};
use tropic::core::{ExecMode, PlatformConfig, Tropic, TxnState};
use tropic::model::Path;
use tropic::tcloud::TopologySpec;

fn p(s: &str) -> Path {
    Path::parse(s).unwrap()
}

fn create_op(path: &str) -> Op {
    Op::Create {
        path: p(path),
        data: b"d"[..].into(),
        ephemeral_owner: None,
        sequential: false,
    }
}

fn quick_opts(snapshot_every_ops: u64) -> DurabilityOptions {
    DurabilityOptions {
        sync_policy: SyncPolicy::Periodic { every_ops: 16 },
        snapshot_every_ops,
        snapshot_max_wal_bytes: 0,
        segment_max_bytes: 1 << 16,
        ..DurabilityOptions::default()
    }
}

fn durable_platform_config(dir: &std::path::Path, sync_policy: SyncPolicy) -> PlatformConfig {
    PlatformConfig {
        controllers: 1,
        workers: 1,
        checkpoint_every: 0,
        coord: CoordConfig {
            durability: DurabilityOptions {
                snapshot_every_ops: 32,
                sync_policy,
                ..DurabilityOptions::default()
            },
            ..CoordConfig::default()
        },
        ..PlatformConfig::default()
    }
    .with_data_dir(dir)
}

/// The acceptance scenario: crash every replica, controller, and worker
/// mid-workload, restart from `data_dir`, and verify that (a) every
/// acknowledged transaction is still committed and (b) in-flight
/// transactions resume and finish.
#[test]
fn full_datacenter_power_loss_loses_no_acknowledged_txn() {
    power_loss_scenario("tropic-power-loss-test", SyncPolicy::EveryBatch);
}

/// The same acceptance scenario under the pipelined group-fsync policy:
/// overlapping fsyncs across batches and replicas must not weaken the
/// guarantee — a commit is still acknowledged only after its own records
/// are on disk on a quorum.
#[test]
fn full_datacenter_power_loss_with_pipelined_fsync_loses_no_acknowledged_txn() {
    power_loss_scenario(
        "tropic-power-loss-pipelined",
        SyncPolicy::Pipelined { depth: 4 },
    );
}

fn power_loss_scenario(tag: &str, sync_policy: SyncPolicy) {
    let tmp = TempDir::new(tag);
    let spec = TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let config = durable_platform_config(tmp.path(), sync_policy);

    let mut acked = Vec::new();
    let mut in_flight = Vec::new();
    {
        let platform = Tropic::start(config.clone(), spec.service(), ExecMode::LogicalOnly);
        let client = platform.client();
        for i in 0..8 {
            let id = client
                .submit("spawnVM", spec.spawn_args(&format!("vm{i}"), i % 4, 1_024))
                .unwrap();
            let outcome = client.wait(id, Duration::from_secs(30)).unwrap();
            assert_eq!(outcome.state, TxnState::Committed);
            acked.push(id);
        }
        // Freeze the pipeline (the controller dies first), THEN submit:
        // these deterministically sit unprocessed in the durable inputQ
        // when the power cut lands, so the post-recovery assertions prove
        // real resumption rather than racing a graceful drain.
        assert!(platform.crash_controller(0));
        for i in 8..12 {
            let id = client
                .submit("spawnVM", spec.spawn_args(&format!("vm{i}"), i % 4, 1_024))
                .unwrap();
            in_flight.push(id);
        }
        platform.shutdown(); // the whole datacenter goes dark
    }

    let platform = Tropic::recover(config, spec.service(), ExecMode::LogicalOnly);
    assert!(platform.coord().ensemble_stats().recoveries >= 3);
    let client = platform.client();
    // The crash landed before any controller saw the in-flight batch:
    // recovery starts them from the reconstructed queue, not from records.
    for id in &in_flight {
        let rec = client.txn_record(*id).unwrap();
        assert!(
            rec.is_none() || !rec.unwrap().state.is_final(),
            "txn {id} was finalized before the crash; the scenario is vacuous"
        );
    }
    for id in &acked {
        let rec = client
            .txn_record(*id)
            .unwrap()
            .expect("acknowledged transaction record survived the crash");
        assert_eq!(rec.state, TxnState::Committed, "txn {id} lost its commit");
    }
    for id in &in_flight {
        let outcome = client.wait(*id, Duration::from_secs(30)).unwrap();
        assert_eq!(
            outcome.state,
            TxnState::Committed,
            "in-flight txn {id} did not resume: {:?}",
            outcome.error
        );
    }
    // New work keeps flowing, with ids that cannot alias pre-crash records.
    let outcome = client
        .submit_and_wait(
            "spawnVM",
            spec.spawn_args("post", 0, 1_024),
            Duration::from_secs(30),
        )
        .unwrap();
    assert_eq!(outcome.state, TxnState::Committed);
    assert!(outcome.id > *in_flight.last().unwrap());
    platform.shutdown();
}

#[test]
fn replica_log_is_bounded_by_snapshot_truncation() {
    let tmp = TempDir::new("tropic-log-bound");
    let opts = DurabilityOptions {
        sync_policy: SyncPolicy::EveryBatch,
        ..quick_opts(8)
    };
    let mut e = Ensemble::with_durability(1, 1, tmp.path(), opts).unwrap();
    for i in 0..200 {
        e.submit(create_op(&format!("/n{i}"))).0.unwrap();
    }
    let len = e.replica_log_len(0).unwrap();
    assert!(len < 8, "in-memory log {len} not truncated at snapshots");
    let stats = e.stats();
    assert_eq!(stats.snapshots_written, 25, "one per 8 committed ops");
    assert!(stats.bytes_fsynced > 0);
    // On disk: only the post-snapshot suffix remains as WAL segments.
    let wal_ops = wal::recover_dir(&tmp.path().join("replica-0"))
        .unwrap()
        .ops
        .len();
    assert!(wal_ops < 8, "WAL holds {wal_ops} records past the snapshot");
}

#[test]
fn pipelined_ensemble_recovers_every_acknowledged_write() {
    let tmp = TempDir::new("tropic-pipelined-ensemble");
    let opts = DurabilityOptions {
        sync_policy: SyncPolicy::Pipelined { depth: 4 },
        ..quick_opts(16)
    };
    {
        let mut e = Ensemble::with_durability(3, 7, tmp.path(), opts.clone()).unwrap();
        for i in 0..60 {
            e.submit(create_op(&format!("/n{i}"))).0.unwrap();
        }
        let stats = e.stats();
        assert!(stats.bytes_fsynced > 0, "sync thread must account fsyncs");
        assert!(stats.dir_fsyncs > 0, "snapshot renames fsync the directory");
        assert!(
            stats.delta_snapshots_written > 0,
            "a 16-op dirty window over a 60-node store must go delta"
        );
    } // power loss: Drop drains each replica's pipeline
    let mut back = Ensemble::recover(3, 7, tmp.path(), opts).unwrap();
    assert_eq!(
        back.read(|s| s.node_count()).unwrap(),
        61,
        "all sixty acknowledged creates survive on all replicas"
    );
    assert!(back.replicas_consistent());
}

#[test]
fn recovery_replays_wal_records_that_failed_at_submit_time() {
    // Failed ops (e.g. NodeExists) are part of the replicated log; replay
    // must reproduce the same failures to stay deterministic.
    let tmp = TempDir::new("tropic-failed-ops");
    let mut e = Ensemble::with_durability(1, 1, tmp.path(), quick_opts(0)).unwrap();
    e.submit(create_op("/a")).0.unwrap();
    assert!(
        e.submit(create_op("/a")).0.is_err(),
        "duplicate create fails"
    );
    e.submit(create_op("/b")).0.unwrap();
    let live = e.read(|s| s.clone()).unwrap();
    drop(e);
    let mut back = Ensemble::recover(1, 1, tmp.path(), quick_opts(0)).unwrap();
    assert_eq!(back.read(|s| s.clone()).unwrap(), live);
}

#[test]
fn suffix_resync_and_snapshot_transfer_are_both_counted() {
    let mut e = Ensemble::new(3, 7);
    e.submit(create_op("/base")).0.unwrap();
    // Short outage: suffix resync.
    e.crash_replica(2);
    e.submit(create_op("/while-down")).0.unwrap();
    e.restart_replica(2);
    assert_eq!(e.stats().suffix_syncs, 1);
    assert_eq!(e.stats().snapshot_syncs, 0);
    // Long outage past the truncation horizon: snapshot transfer.
    e.set_memory_log_cap(2);
    e.crash_replica(2);
    for i in 0..12 {
        e.submit(create_op(&format!("/long{i}"))).0.unwrap();
    }
    e.restart_replica(2);
    assert_eq!(e.stats().snapshot_syncs, 1);
    assert!(e.replicas_consistent());
}

#[test]
fn torn_wal_tail_recovers_to_last_valid_record() {
    let tmp = TempDir::new("tropic-torn-tail");
    {
        let mut e = Ensemble::with_durability(1, 1, tmp.path(), quick_opts(0)).unwrap();
        for i in 0..10 {
            e.submit(create_op(&format!("/n{i}"))).0.unwrap();
        }
    }
    // Crash mid-write: a half-record of garbage lands at the segment tail.
    let replica_dir = tmp.path().join("replica-0");
    let (_, last_segment) = wal::list_segments(&replica_dir).unwrap().pop().unwrap();
    let mut bytes = std::fs::read(&last_segment).unwrap();
    bytes.extend_from_slice(&[0x5A; 21]);
    std::fs::write(&last_segment, &bytes).unwrap();

    let mut back = Ensemble::recover(1, 1, tmp.path(), quick_opts(0)).unwrap();
    assert_eq!(
        back.read(|s| s.node_count()).unwrap(),
        11,
        "all ten committed creates survive; the torn tail is dropped"
    );
    // The log stays writable after the truncation.
    back.submit(create_op("/after-tear")).0.unwrap();
    drop(back);
    let again = Ensemble::recover(1, 1, tmp.path(), quick_opts(0)).unwrap();
    assert_eq!(
        Ensemble::read(&mut { again }, |s| s.node_count()).unwrap(),
        12
    );
}

#[test]
fn durable_queues_survive_restart() {
    // The platform's inputQ/phyQ are plain znodes, so ensemble recovery
    // must preserve queue items and their FIFO (sequential-name) order.
    let tmp = TempDir::new("tropic-queue-survives");
    let config = CoordConfig {
        data_dir: Some(tmp.path().to_path_buf()),
        durability: DurabilityOptions {
            snapshot_every_ops: 4,
            sync_policy: SyncPolicy::EveryBatch,
            ..DurabilityOptions::default()
        },
        ..CoordConfig::default()
    };
    {
        let svc = tropic::coord::CoordService::start(config.clone());
        let c = svc.connect("producer");
        let q = tropic::coord::DistributedQueue::new(&c, p("/q")).unwrap();
        for i in 0..6 {
            q.enqueue(format!("item{i}").into_bytes()).unwrap();
        }
    }
    let svc = tropic::coord::CoordService::recover(config);
    let c = svc.connect("consumer");
    let q = tropic::coord::DistributedQueue::new(&c, p("/q")).unwrap();
    let items = q.try_dequeue_batch(10).unwrap();
    let payloads: Vec<String> = items
        .iter()
        .map(|(_, data)| String::from_utf8(data.to_vec()).unwrap())
        .collect();
    assert_eq!(
        payloads,
        (0..6).map(|i| format!("item{i}")).collect::<Vec<_>>()
    );
    // The sequential counter continues past pre-crash names.
    let path = q.enqueue(b"new"[..].to_vec()).unwrap();
    assert_eq!(path.leaf(), Some("item-0000000006"));
}

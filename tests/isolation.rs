//! Isolation and safety (paper §2.1, §3.1): constraints abort unsafe
//! transactions before devices are touched; concurrent transactions on
//! shared resources serialize without races.
//!
//! This suite deliberately drives the *deprecated* stringly-typed client
//! shims (`submit`/`wait`/`submit_and_wait`, `Tropic::repair`/`reload`/
//! `signal`): they must stay green until the shims are removed. New tests
//! should use the typed API (`TxnRequest`/`TxnHandle`/`AdminClient`).
#![allow(deprecated)]

use std::time::Duration;

use tropic::core::{ExecMode, PlatformConfig, Tropic, TxnState};
use tropic::devices::LatencyModel;
use tropic::model::Value;
use tropic::tcloud::{TCloudDevices, TopologySpec};

const WAIT: Duration = Duration::from_secs(120);

fn start(spec: &TopologySpec, workers: usize) -> (Tropic, TCloudDevices) {
    let devices = spec.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    (platform, devices)
}

/// Simultaneous spawns racing for the last memory slot: exactly the
/// race-condition scenario of §2.1. One commits, one aborts; the memory
/// constraint is never violated on the device.
#[test]
fn overcommit_race_resolved_by_constraint() {
    let spec = TopologySpec {
        compute_hosts: 1,
        storage_hosts: 1,
        routers: 0,
        host_mem_mb: 4_096,
        ..Default::default()
    };
    let (platform, devices) = start(&spec, 2);
    let client = platform.client();
    // Two 3 GB VMs race for a 4 GB host.
    let a = client
        .submit("spawnVM", spec.spawn_args("racer-a", 0, 3_072))
        .unwrap();
    let b = client
        .submit("spawnVM", spec.spawn_args("racer-b", 0, 3_072))
        .unwrap();
    let oa = client.wait(a, WAIT).unwrap();
    let ob = client.wait(b, WAIT).unwrap();
    let states = [oa.state, ob.state];
    assert!(states.contains(&TxnState::Committed), "{oa:?} {ob:?}");
    assert!(states.contains(&TxnState::Aborted), "{oa:?} {ob:?}");
    let aborted = if oa.state == TxnState::Aborted {
        &oa
    } else {
        &ob
    };
    assert!(aborted.error.as_ref().unwrap().contains("vm-memory"));
    // The device holds exactly one VM.
    assert_eq!(devices.computes[0].vm_count(), 1);
    platform.shutdown();
}

#[test]
fn spawns_on_disjoint_hosts_proceed_concurrently() {
    let spec = TopologySpec {
        compute_hosts: 8,
        storage_hosts: 2,
        routers: 0,
        ..Default::default()
    };
    let (platform, _devices) = start(&spec, 4);
    let client = platform.client();
    let ids: Vec<_> = (0..8)
        .map(|i| {
            client
                .submit("spawnVM", spec.spawn_args(&format!("c{i}"), i, 2_048))
                .unwrap()
        })
        .collect();
    for id in ids {
        let o = client.wait(id, WAIT).unwrap();
        assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
    }
    platform.shutdown();
}

/// Hypervisor-incompatibility (the paper's VM-type constraint, §6.2): a
/// migration to a host with a different hypervisor aborts in the logical
/// layer without any device call.
#[test]
fn cross_hypervisor_migration_rejected_before_devices() {
    let mut spec = TopologySpec {
        compute_hosts: 2,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    // Build a service whose host1 is KVM while the devices stay consistent.
    spec.hypervisor = "xen".into();
    let devices = spec.build_devices(&LatencyModel::zero());
    let mut service = spec.service();
    service
        .initial_tree
        .set_attr(
            &tropic::model::Path::parse("/vmRoot/host1").unwrap(),
            "hypervisor",
            "kvm",
        )
        .unwrap();
    // Note: the physical host1 still reports "xen"; for this test only the
    // logical attribute matters because the constraint checks logically.
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            ..Default::default()
        },
        service,
        ExecMode::Physical(devices.registry.clone()),
    );
    let client = platform.client();
    client
        .submit_and_wait("spawnVM", spec.spawn_args("vm", 0, 2_048), WAIT)
        .unwrap();
    let before_import = devices.computes[1].has_imported("vm-img");
    let outcome = client
        .submit_and_wait(
            "migrateVM",
            vec![
                Value::from("/vmRoot/host0"),
                Value::from("/vmRoot/host1"),
                Value::from("vm"),
            ],
            WAIT,
        )
        .unwrap();
    assert_eq!(outcome.state, TxnState::Aborted);
    assert!(outcome.error.unwrap().contains("vm-type"));
    // Early detection: the destination device was never touched.
    assert_eq!(devices.computes[1].has_imported("vm-img"), before_import);
    assert_eq!(
        devices.computes[0].vm_power("vm"),
        Some(tropic::devices::VmPower::Running)
    );
    platform.shutdown();
}

/// Serialized spawns on one host: deferred transactions retry and commit
/// in FIFO order once the blocking transaction completes.
#[test]
fn deferred_transactions_eventually_commit_in_order() {
    let spec = TopologySpec {
        compute_hosts: 1,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let (platform, _devices) = start(&spec, 2);
    let client = platform.client();
    let ids: Vec<_> = (0..5)
        .map(|i| {
            client
                .submit("spawnVM", spec.spawn_args(&format!("s{i}"), 0, 2_048))
                .unwrap()
        })
        .collect();
    let mut finish_order = Vec::new();
    for &id in &ids {
        let o = client.wait(id, WAIT).unwrap();
        assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
        finish_order.push(id);
    }
    // Lock conflicts were actually exercised.
    assert!(platform.metrics().counters().defers > 0);
    platform.shutdown();
}

#[test]
fn storage_capacity_constraint_guards_cloning() {
    let spec = TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 0,
        // Template (8 GB) + exactly two clones fit.
        storage_capacity_mb: 3 * 8_192,
        ..Default::default()
    };
    let (platform, _devices) = start(&spec, 1);
    let client = platform.client();
    for i in 0..2 {
        let o = client
            .submit_and_wait("spawnVM", spec.spawn_args(&format!("f{i}"), i, 2_048), WAIT)
            .unwrap();
        assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
    }
    let o = client
        .submit_and_wait("spawnVM", spec.spawn_args("f2", 2, 2_048), WAIT)
        .unwrap();
    assert_eq!(o.state, TxnState::Aborted);
    assert!(o.error.unwrap().contains("storage-capacity"));
    platform.shutdown();
}

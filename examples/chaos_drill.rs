//! Chaos drill: open-loop Poisson load across all three priority lanes
//! while a scripted fault storm runs underneath — a leader kill, a device
//! down-burst, and a standing every-nth `createVM` failure rule — then a
//! per-lane latency report with sparkline CDFs. The invariant on display
//! is the paper's: faults cause aborts and fatter tails, never the loss
//! of an acknowledged transaction.
//!
//! Run with: `cargo run --release --example chaos_drill`
//!
//! The full operator guide (every knob, fault scripting, the CI gates) is
//! docs/STRESS_TESTING.md.

use std::sync::Arc;
use std::time::Duration;

use tropic::coord::CoordConfig;
use tropic::core::{ExecMode, PlatformConfig, Tropic};
use tropic::devices::LatencyModel;
use tropic::tcloud::TopologySpec;
use tropic::workload::chaos::{run_chaos, ChaosSpec, LaneReport, StormSpec};
use tropic::workload::sparkline;

fn main() {
    let topo = TopologySpec {
        compute_hosts: 8,
        storage_hosts: 2,
        routers: 0,
        storage_capacity_mb: 100_000_000,
        ..Default::default()
    };
    let devices = topo.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 3,
            workers: 2,
            coord: CoordConfig {
                session_timeout_ms: 500,
                tick_ms: 25,
                ..CoordConfig::default()
            },
            ..Default::default()
        },
        topo.service(),
        ExecMode::Physical(Arc::clone(&devices.registry)),
    );

    // A seeded storm: one leader kill (restarted 800 ms later), one 300 ms
    // device down-burst, every 6th createVM fails, one migrateVM one-shot.
    let storm = StormSpec {
        seed: 9,
        duration_ms: 4_000,
        compute_hosts: topo.compute_hosts,
        leader_kills: 1,
        leader_restart_after_ms: Some(800),
        down_bursts: 1,
        down_burst_ms: 300,
        every_nth: vec![("createVM".to_owned(), 6)],
        one_shots: vec!["migrateVM".to_owned()],
    };
    let spec = ChaosSpec {
        seed: 9,
        duration_ms: 4_000,
        arrival_per_sec: 40.0,
        clients: 4,
        pool_vms: 6,
        faults: storm.generate(),
        drain_timeout: Duration::from_secs(120),
        ..Default::default()
    };

    println!(
        "chaos drill: {:.0} txn/s for {} ms across {} clients, {} scripted faults\n",
        spec.arrival_per_sec,
        spec.duration_ms,
        spec.clients,
        spec.faults.len()
    );
    let report = run_chaos(&platform, &topo, Some(&devices), &spec);
    platform.shutdown();

    println!(
        "wall {} ms — submitted {} / committed {} / aborted {} / failed {}",
        report.wall_ms, report.submitted, report.committed, report.aborted, report.failed
    );
    println!(
        "faults: {} injected ({} rolls passed), {} leader kill(s)\n",
        report.faults.injected, report.faults.passed, report.faults.leader_kills
    );

    println!("lane   n      p50      p90      p99      max   abort%  committed-latency CDF");
    for lane in &report.lanes {
        print_lane(lane);
    }
    for event in &report.faults.events {
        println!("  t+{:>5} ms  {}", event.applied_at_ms, event.description);
    }

    assert_eq!(
        report.acked_lost, 0,
        "an acknowledged transaction was lost under chaos"
    );
    println!("\nzero acknowledged transactions lost.");
}

fn print_lane(lane: &LaneReport) {
    let s = &lane.committed_latency;
    // The CDF arrives as (latency, fraction) points; the sparkline plots
    // the fraction axis so a long flat head + late ramp reads as an outage.
    let fracs: Vec<f64> = lane.cdf.iter().map(|p| p.frac * 100.0).collect();
    println!(
        "{:<5} {:>4} {:>6}ms {:>6}ms {:>6}ms {:>6}ms {:>6.1}%  {}",
        lane.lane,
        s.count,
        s.p50_ms,
        s.p90_ms,
        s.p99_ms,
        s.max_ms,
        lane.abort_rate * 100.0,
        sparkline(&fracs)
    );
}

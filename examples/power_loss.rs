//! Power-loss drill: kill the *entire* datacenter — every coordination
//! replica, controller, and worker — mid-workload, then restart from disk.
//!
//! Phase 1 runs a durable platform (`PlatformConfig::with_data_dir`) and
//! submits a stream of transactions, acknowledging some and leaving the
//! rest in flight when the power cut lands. Phase 2 recovers with
//! `Tropic::recover`: the coordination store rebuilds from each replica's
//! fuzzy snapshot plus its write-ahead-log suffix, the controller resumes
//! from the reconstructed records and queues, and the drill verifies that
//! **zero acknowledged transactions were lost** and every in-flight one
//! runs to completion.
//!
//! Run with: `cargo run --example power_loss`

use std::time::Duration;

use tropic::coord::{CoordConfig, DurabilityOptions, SyncPolicy, TempDir};
use tropic::core::{ExecMode, PlatformConfig, Priority, Tropic, TxnRequest, TxnState};
use tropic::tcloud::TopologySpec;

fn main() {
    let tmp = TempDir::new("tropic-power-loss");
    let spec = TopologySpec {
        compute_hosts: 8,
        storage_hosts: 2,
        routers: 0,
        ..Default::default()
    };
    let config = PlatformConfig {
        controllers: 1,
        workers: 1,
        checkpoint_every: 0,
        coord: CoordConfig {
            durability: DurabilityOptions {
                // One fsync per committed batch: an acknowledged
                // transaction survives losing every replica at once.
                sync_policy: SyncPolicy::EveryBatch,
                snapshot_every_ops: 16,
                ..DurabilityOptions::default()
            },
            ..CoordConfig::default()
        },
        ..Default::default()
    }
    .with_data_dir(tmp.path());

    println!(
        "phase 1: durable platform up, data_dir = {}",
        tmp.path().display()
    );
    let platform = Tropic::start(config.clone(), spec.service(), ExecMode::LogicalOnly);
    let client = platform.client();

    let mut acknowledged = Vec::new();
    for i in 0..16 {
        let outcome = client
            .submit_request(
                TxnRequest::new("spawnVM")
                    .args(spec.spawn_args(&format!("vm{i}"), i % 8, 1_024))
                    .idempotency_key(format!("power-loss-vm{i}")),
            )
            .expect("submit")
            .wait_timeout(Duration::from_secs(30))
            .expect("txn");
        assert_eq!(outcome.state, TxnState::Committed);
        acknowledged.push(outcome.id);
    }
    // The controller dies first, freezing the pipeline — the in-flight
    // submissions below land in the durable inputQ and are guaranteed to
    // still be there when the power cut hits (no graceful drain).
    platform.crash_controller(0);
    let mut in_flight = Vec::new();
    for i in 16..22 {
        let handle = client
            .submit_request(
                TxnRequest::new("spawnVM")
                    .args(spec.spawn_args(&format!("vm{i}"), i % 8, 1_024))
                    .priority(Priority::Batch),
            )
            .expect("submit");
        in_flight.push(handle.id());
    }
    println!(
        "  {} transactions acknowledged, {} in flight",
        acknowledged.len(),
        in_flight.len()
    );

    println!("\npower loss: every replica, controller, and worker goes dark");
    platform.shutdown();

    println!("\nphase 2: Tropic::recover() from disk");
    let platform = Tropic::recover(config, spec.service(), ExecMode::LogicalOnly);
    let client = platform.client();

    let mut lost = 0;
    for id in &acknowledged {
        match client.txn_record(*id).expect("coord") {
            Some(rec) if rec.state == TxnState::Committed => {}
            other => {
                lost += 1;
                println!("  LOST txn {id}: {other:?}");
            }
        }
    }
    println!(
        "  acknowledged transactions recovered: {}/{} (lost {lost})",
        acknowledged.len() - lost,
        acknowledged.len()
    );
    assert_eq!(lost, 0, "an acknowledged transaction was lost");

    for id in &in_flight {
        // Handles re-attach by id across the recovery boundary.
        let outcome = client
            .handle(*id)
            .wait_timeout(Duration::from_secs(30))
            .expect("txn");
        println!("  in-flight txn {id} resumed -> {:?}", outcome.state);
        assert_eq!(outcome.state, TxnState::Committed);
    }

    // Figure-4-style durability counters (see fig4_cpu_utilization).
    let e = platform.coord().ensemble_stats();
    let s = platform.coord().stats();
    println!();
    println!("| durability counter | value |");
    println!("|--------------------|------:|");
    println!("| snapshots written | {} |", e.snapshots_written);
    println!("| segments rotated | {} |", e.segments_rotated);
    println!("| bytes fsynced | {} |", e.bytes_fsynced);
    println!("| fsyncs | {} |", e.fsyncs);
    println!("| replica recoveries | {} |", e.recoveries);
    println!("| suffix resyncs | {} |", e.suffix_syncs);
    println!("| snapshot transfers | {} |", e.snapshot_syncs);
    println!(
        "| orphan sessions purged | {} |",
        s.recovery_purged_sessions
    );

    platform.shutdown();
    println!("\nzero acknowledged transactions lost. done.");
}

//! EC2-style launch surge: replay a compressed version of the paper's EC2
//! workload (Figure 3's shape — steady ~2.3 spawns/s with a burst to 14/s)
//! against a mid-size deployment, and print the latency distribution the
//! platform sustains through the burst.
//!
//! Run with: `cargo run --release --example ec2_surge`

use std::time::Duration;

use tropic::coord::CoordConfig;
use tropic::core::{ExecMode, PlatformConfig, Tropic};
use tropic::tcloud::TopologySpec;
use tropic::workload::{replay_ec2, sparkline, Ec2TraceSpec, LatencyStats};

fn main() {
    // 200 hosts, 50 storage servers — a pod-sized slice of the paper's
    // 12,500-host deployment, in logical-only mode (paper §5).
    let spec = TopologySpec {
        compute_hosts: 200,
        storage_hosts: 50,
        routers: 0,
        host_mem_mb: 16_384,
        storage_capacity_mb: 1_000_000_000,
        ..Default::default()
    };
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 3,
            workers: 1,
            coord: CoordConfig {
                // Emulated ZooKeeper write latency: the paper's dominant
                // per-transaction overhead.
                write_latency: Duration::from_micros(500),
                ..CoordConfig::default()
            },
            checkpoint_every: 0,
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    );

    // A 30-second trace with the paper's rates: mean 2.34/s, burst to 14/s
    // at 80 % of the duration.
    let trace = Ec2TraceSpec {
        duration_s: 30,
        burst_center_s: 24.0,
        burst_sigma_s: 2.0,
        ..Default::default()
    }
    .generate();
    let rates: Vec<f64> = trace.per_second().iter().map(|&c| f64::from(c)).collect();
    println!("workload (spawns/s): {}", sparkline(&rates));
    println!(
        "total {} spawns, mean {:.2}/s, peak {}/s",
        trace.total(),
        trace.mean_rate(),
        trace.peak().0
    );

    println!("\nreplaying at real time against 200 hosts...");
    let report = replay_ec2(
        &platform,
        &spec,
        &trace,
        1.0,
        2_048,
        Duration::from_secs(120),
    );
    println!(
        "submitted {} | committed {} | aborted {} | wall {} ms",
        report.submitted, report.committed, report.aborted, report.wall_ms
    );

    let latency = LatencyStats::new(
        platform
            .metrics()
            .samples()
            .iter()
            .map(|s| s.latency_ms())
            .collect(),
    );
    println!("\ntransaction latency (the paper's Figure 5 view):");
    println!(
        "  median {} ms | p90 {} ms | p99 {} ms | max {} ms",
        latency.median(),
        latency.percentile(90.0),
        latency.percentile(99.0),
        latency.max()
    );
    let counters = platform.metrics().counters();
    println!(
        "  lock-conflict defers: {} (serialized same-host spawns)",
        counters.defers
    );
    platform.shutdown();
}

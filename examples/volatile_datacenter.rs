//! Volatile data center: exercise the paper's §4 machinery end to end —
//! out-of-band drift (a host reboot, an operator's rogue VM, a lost image)
//! detected and healed by `repair`, external state adopted by `reload`, and
//! a stalled transaction killed and reconciled.
//!
//! Run with: `cargo run --example volatile_datacenter`

use std::time::Duration;

use tropic::core::{ExecMode, PlatformConfig, Signal, Tropic, TxnRequest, TxnState};
use tropic::devices::LatencyModel;
use tropic::model::Path;
use tropic::tcloud::TopologySpec;

fn main() {
    let spec = TopologySpec {
        compute_hosts: 3,
        storage_hosts: 1,
        routers: 0,
        ..Default::default()
    };
    let latency = LatencyModel::zero().with_action("createVM", Duration::from_secs(2));
    let devices = spec.build_devices(&latency);
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    let client = platform.client();
    // The operator plane (repair/reload/signal) is a separate client.
    let admin = platform.admin();

    println!("provisioning three VMs...");
    for i in 0..3 {
        let o = client
            .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args(
                &format!("app{i}"),
                0,
                2_048,
            )))
            .expect("submit")
            .wait_timeout(Duration::from_secs(60))
            .expect("txn");
        assert_eq!(o.state, TxnState::Committed);
    }

    // --- Scenario 1: the paper's host-reboot example. ---
    println!("\nscenario 1: host0 reboots out of band (all VMs power off)");
    let affected = devices.computes[0].oob_power_cycle();
    println!("  physically stopped: {affected:?}");
    let result = admin
        .repair(
            &Path::parse("/vmRoot/host0").unwrap(),
            Duration::from_secs(30),
        )
        .expect("repair");
    println!(
        "  repair: {} ({} corrective actions)",
        result.message, result.actions
    );
    println!(
        "  app0 is {:?} again",
        devices.computes[0].vm_power("app0").unwrap()
    );

    // --- Scenario 2: rogue operator changes. ---
    println!("\nscenario 2: an operator creates a rogue VM and deletes an image via the CLI");
    devices.computes[1].oob_create_vm("rogue", "app0-img", 512, true);
    devices.storages[0].oob_lose_image("app1-img");
    let result = admin
        .repair(&Path::root(), Duration::from_secs(30))
        .expect("repair");
    println!(
        "  repair: {} ({} corrective actions)",
        result.message, result.actions
    );
    println!(
        "  rogue gone: {}, app1-img restored: {}",
        devices.computes[1].vm_power("rogue").is_none(),
        devices.storages[0].has_image("app1-img"),
    );

    // --- Scenario 3: adopting external state with reload. ---
    println!("\nscenario 3: adopting an externally-provisioned VM via reload");
    devices.computes[2].oob_create_vm("legacy", "legacy-img", 1_024, true);
    let result = admin
        .reload(
            &Path::parse("/vmRoot/host2").unwrap(),
            Duration::from_secs(30),
        )
        .expect("reload");
    println!("  reload: {}", result.message);
    let o = client
        .submit_request(TxnRequest::new("stopVM").arg("/vmRoot/host2").arg("legacy"))
        .expect("submit")
        .wait_timeout(Duration::from_secs(30))
        .expect("txn");
    println!("  TROPIC now manages it: stopVM legacy -> {:?}", o.state);

    // --- Scenario 4: a stalled transaction, killed and reconciled. ---
    println!("\nscenario 4: KILL a transaction stuck in a slow device call");
    let stuck = client
        .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args("stuck", 1, 2_048)))
        .expect("submit");
    std::thread::sleep(Duration::from_millis(300));
    admin.signal(stuck.id(), Signal::Kill).expect("signal");
    let o = stuck
        .wait_timeout(Duration::from_secs(30))
        .expect("outcome");
    println!(
        "  stuck txn -> {:?} ({})",
        o.state,
        o.error.unwrap_or_default()
    );
    // The abandoned physical prefix (cloned/exported image) is drift now.
    std::thread::sleep(Duration::from_secs(3));
    let result = admin
        .repair(&Path::root(), Duration::from_secs(30))
        .expect("repair");
    println!(
        "  repair after KILL: {} ({} corrective actions)",
        result.message, result.actions
    );
    let o = client
        .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args("fresh", 1, 2_048)))
        .expect("submit")
        .wait_timeout(Duration::from_secs(60))
        .expect("txn");
    println!("  host1 healthy again: spawn fresh -> {:?}", o.state);

    platform.shutdown();
    println!("\ndone.");
}

//! Remote quickstart: drive a TROPIC platform from a **separate OS
//! process** over the network RPC frontend.
//!
//! Three modes:
//!
//! * `remote_quickstart serve <addr-file>` — start a platform, serve the
//!   RPC frontend on an ephemeral loopback port, write the bound address
//!   to `<addr-file>`, and run until a client asks for shutdown.
//! * `remote_quickstart client <addr>` — connect a [`RemoteClient`] to a
//!   serving process: submit a transaction, follow its handle, stream
//!   lifecycle events, exercise the typed error taxonomy and the
//!   version-rejection policy, then request a clean server shutdown.
//! * no arguments — single-process demo: serve and drive in one binary.
//!
//! `ci.sh --rpc-smoke` runs the first two as two real processes on one
//! loopback socket and asserts both exit cleanly.

use std::time::Duration;

use tropic::coord::{write_frame, FrameReader};
use tropic::core::rpc::{decode_response, RpcResponse};
use tropic::core::{
    ApiError, ExecMode, PlatformConfig, Priority, RemoteClient, Tropic, TxnRequest, TxnState,
};
use tropic::devices::LatencyModel;
use tropic::tcloud::TopologySpec;

fn spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 1,
        ..Default::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => {
            let addr_file = args
                .get(2)
                .expect("usage: remote_quickstart serve <addr-file>");
            serve(addr_file);
        }
        Some("client") => {
            let addr = args.get(2).expect("usage: remote_quickstart client <addr>");
            client(addr);
        }
        None => {
            // Single-process demo: serve on an ephemeral port, then drive
            // it through the same client path the two-process mode uses.
            let devices = spec().build_devices(&LatencyModel::tcloud_scaled());
            let platform = Tropic::start(
                PlatformConfig::default(),
                spec().service(),
                ExecMode::Physical(devices.registry.clone()),
            );
            let server = platform.serve_rpc().expect("bind loopback");
            let addr = server.addr().to_string();
            println!("serving RPC on {addr} (single-process demo)\n");
            client(&addr);
            server.stop();
            platform.shutdown();
        }
        Some(other) => {
            eprintln!(
                "unknown mode `{other}`; use `serve <addr-file>`, `client <addr>`, or no args"
            );
            std::process::exit(2);
        }
    }
}

/// The server process: platform + RPC frontend, alive until a client
/// requests shutdown over the wire.
fn serve(addr_file: &str) {
    let devices = spec().build_devices(&LatencyModel::tcloud_scaled());
    let platform = Tropic::start(
        PlatformConfig::default(), // 3 replicated controllers, as the paper deploys
        spec().service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    let server = platform.serve_rpc().expect("bind loopback");
    let addr = server.addr().to_string();
    // Atomic handoff: the smoke script polls for this file, so it must
    // never observe a half-written address.
    let tmp = format!("{addr_file}.tmp");
    std::fs::write(&tmp, &addr).expect("write addr file");
    std::fs::rename(&tmp, addr_file).expect("publish addr file");
    println!("server: RPC frontend on {addr}, waiting for remote clients...");

    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("server: shutdown requested over the wire; draining...");
    server.stop();
    platform.shutdown();
    println!("server: clean shutdown.");
}

/// The client process: a genuinely separate OS process driving the
/// platform purely through the socket.
fn client(addr: &str) {
    let remote = RemoteClient::connect(addr).expect("connect to server");
    println!("client: connected to {addr}");

    // Stream lifecycle events on a dedicated connection while we work.
    let events = remote.subscribe().expect("subscribe");

    // 1. One typed request over the wire: same builder, same handle
    //    surface as the in-process API.
    println!("client: spawning web-1 remotely...");
    let handle = remote
        .submit_request(
            TxnRequest::new("spawnVM")
                .args(spec().spawn_args("web-1", 0, 2_048))
                .priority(Priority::High)
                .deadline(Duration::from_secs(60))
                .idempotency_key("remote-spawn-web-1")
                .label("origin", "remote_quickstart"),
        )
        .expect("submit over socket");
    println!("client:   txn {} submitted", handle.id());
    let outcome = handle.wait().expect("outcome within the deadline");
    println!(
        "client:   -> {:?} in {} ms",
        outcome.state, outcome.latency_ms
    );
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);

    // 2. Idempotent resubmit over the wire dedups onto the original.
    let dup = remote
        .submit_request(
            TxnRequest::new("spawnVM")
                .args(spec().spawn_args("web-1", 0, 2_048))
                .idempotency_key("remote-spawn-web-1"),
        )
        .expect("resubmit")
        .wait_timeout(Duration::from_secs(30))
        .expect("dedup outcome");
    assert_eq!(dup.id, outcome.id, "dedup returns the original TxnId");
    println!("client:   resubmit deduped onto txn {}", dup.id);

    // 3. The durable record crosses the wire whole.
    let record = remote
        .txn_record(outcome.id)
        .expect("record call")
        .expect("record retained");
    println!(
        "client:   durable record: {} log entries, state {:?}",
        record.log.len(),
        record.state
    );

    // 4. Typed errors survive the wire with their retryable partition.
    let err = remote
        .handle(987_654_321)
        .wait_timeout(Duration::from_millis(300))
        .expect_err("no such txn");
    assert!(matches!(err, ApiError::WaitTimeout { .. }));
    assert!(err.retryable());
    println!(
        "client:   wait on unknown txn -> {err} (retryable: {})",
        err.retryable()
    );

    // 5. Version-rejection policy, demonstrated on a raw socket: a
    //    future-version envelope is refused typed, never misparsed.
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    write_frame(&mut raw, br#"{"v":99,"msg":{"FutureThing":{}}}"#).expect("send future envelope");
    raw.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut reader = FrameReader::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let rejection = loop {
        match reader.read_from(&mut raw, 4 << 20) {
            Ok(Some(payload)) => break decode_response(&payload).expect("v1 reply"),
            Ok(None) => assert!(std::time::Instant::now() < deadline, "no reply"),
            Err(e) => panic!("unexpected {e}"),
        }
    };
    match rejection {
        RpcResponse::Error(e) => {
            assert_eq!(e, ApiError::UnsupportedWireVersion { version: 99 });
            println!("client:   future-version envelope -> {e}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // 6. The subscription saw the terminal transition.
    let sub_deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut saw_terminal = false;
    while std::time::Instant::now() < sub_deadline && !saw_terminal {
        if let Some(ev) = events.recv_timeout(Duration::from_millis(250)) {
            println!(
                "client:   event: txn {} [{:?}] {} -> {:?}",
                ev.id, ev.priority, ev.proc_name, ev.state
            );
            if ev.id == outcome.id && ev.state.is_final() {
                saw_terminal = true;
            }
        }
    }
    assert!(
        saw_terminal,
        "terminal event must reach the remote subscriber"
    );
    drop(events);

    // 7. Ask the serving process to shut down cleanly.
    remote.shutdown_server().expect("shutdown request");
    println!("client: requested server shutdown; done.");
}

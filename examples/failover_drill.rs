//! Failover drill: run TROPIC with three replicated controllers, kill the
//! leader mid-workload, and watch a follower recover the exact state and
//! finish every transaction — the paper's §6.4 high-availability story.
//!
//! Run with: `cargo run --example failover_drill`

use std::time::Duration;

use tropic::coord::CoordConfig;
use tropic::core::{ExecMode, PlatformConfig, Priority, Tropic, TxnRequest, TxnState};
use tropic::tcloud::TopologySpec;

fn main() {
    let spec = TopologySpec {
        compute_hosts: 8,
        storage_hosts: 2,
        routers: 0,
        ..Default::default()
    };
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 3,
            workers: 1,
            coord: CoordConfig {
                // Failure detection at 500 ms (the paper's is ~10 s; §6.4
                // suggests exactly this knob to shrink recovery time).
                session_timeout_ms: 500,
                tick_ms: 25,
                ..CoordConfig::default()
            },
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    );
    let client = platform.client();

    println!("phase 1: normal operation under the elected leader");
    for i in 0..4 {
        let o = client
            .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args(
                &format!("pre{i}"),
                i,
                2_048,
            )))
            .expect("submit")
            .wait_timeout(Duration::from_secs(30))
            .expect("txn");
        println!("  pre{i}: {:?} ({} ms)", o.state, o.latency_ms);
        assert_eq!(o.state, TxnState::Committed);
    }

    let leader = platform.leader_index().expect("a leader");
    println!(
        "\nphase 2: crashing {} (no clean shutdown — its session must expire)",
        platform.controller_name(leader).unwrap()
    );
    let crash_at = platform.clock().now_ms();
    platform.crash_leader();

    println!("phase 3: submitting 6 high-priority transactions during the outage");
    let handles: Vec<_> = (0..6)
        .map(|i| {
            client
                .submit_request(
                    TxnRequest::new("spawnVM")
                        .args(spec.spawn_args(&format!("post{i}"), i % 8, 2_048))
                        .priority(Priority::High)
                        .label("phase", "outage"),
                )
                .expect("queue durable")
        })
        .collect();

    for (i, handle) in handles.iter().enumerate() {
        let o = handle
            .wait_timeout(Duration::from_secs(60))
            .expect("completion");
        println!("  post{i}: {:?} ({} ms)", o.state, o.latency_ms);
        assert_eq!(o.state, TxnState::Committed, "no transaction may be lost");
    }

    let events = platform.metrics().events();
    let recovery = events
        .iter()
        .filter(|e| e.kind == "recovery-complete" && e.at_ms >= crash_at)
        .map(|e| (e.at_ms - crash_at, e.controller.clone()))
        .min()
        .expect("recovery event");
    println!(
        "\n{} took over {} ms after the crash (failure detection 500 ms + election + state restore)",
        recovery.1, recovery.0
    );
    println!("all transactions submitted during the outage committed — none lost.");
    platform.shutdown();
}

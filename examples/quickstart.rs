//! Quickstart: bring up a small TCloud on TROPIC, spawn a VM
//! transactionally, watch a failure roll back cleanly, and inspect the
//! execution log.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use tropic::core::{format_execution_log, ExecMode, PlatformConfig, Tropic, TxnState};
use tropic::devices::{Device, LatencyModel};
use tropic::tcloud::TopologySpec;

fn main() {
    // A 4-host data center with one storage server and a router.
    let spec = TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 1,
        ..Default::default()
    };
    let devices = spec.build_devices(&LatencyModel::tcloud_scaled());
    let platform = Tropic::start(
        PlatformConfig::default(), // 3 replicated controllers, as the paper deploys.
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    let client = platform.client();

    // 1. Spawn a VM: one ACID transaction over storage + compute devices.
    println!("spawning web-1 on host0...");
    let outcome = client
        .submit_and_wait(
            "spawnVM",
            spec.spawn_args("web-1", 0, 2_048),
            Duration::from_secs(60),
        )
        .expect("platform reachable");
    println!("  -> {:?} in {} ms", outcome.state, outcome.latency_ms);
    assert_eq!(outcome.state, TxnState::Committed);
    println!(
        "  host0 runs web-1: {:?}",
        devices.computes[0].vm_power("web-1")
    );

    // 2. Inspect the durable execution log (the paper's Table 1).
    let record = client
        .txn_record(outcome.id)
        .expect("coord reachable")
        .expect("record retained");
    println!("\nexecution log (paper Table 1):");
    print!("{}", format_execution_log(&record.log));

    // 3. Inject a failure in the last step; the transaction aborts and
    //    every earlier action is undone — no orphaned image, no half-built
    //    VM (the paper's §2.1 robustness goal).
    println!("\nspawning doomed-1 with an injected startVM failure...");
    devices.computes[1].fault_plan().fail_once("startVM");
    let outcome = client
        .submit_and_wait(
            "spawnVM",
            spec.spawn_args("doomed-1", 1, 2_048),
            Duration::from_secs(60),
        )
        .expect("platform reachable");
    println!(
        "  -> {:?}: {}",
        outcome.state,
        outcome.error.unwrap_or_default()
    );
    assert_eq!(outcome.state, TxnState::Aborted);
    println!(
        "  no leftovers: host1 has {} VMs, storage has doomed-1-img: {}",
        devices.computes[1].vm_count(),
        devices.storages[0].has_image("doomed-1-img"),
    );

    // 4. Migrate web-1 to another host, transactionally.
    println!("\nmigrating web-1 host0 -> host2...");
    let outcome = client
        .submit_and_wait(
            "migrateVM",
            vec![
                "/vmRoot/host0".into(),
                "/vmRoot/host2".into(),
                "web-1".into(),
            ],
            Duration::from_secs(60),
        )
        .expect("platform reachable");
    println!("  -> {:?} in {} ms", outcome.state, outcome.latency_ms);
    println!(
        "  host0: {:?}, host2: {:?}",
        devices.computes[0].vm_power("web-1"),
        devices.computes[2].vm_power("web-1"),
    );

    platform.shutdown();
    println!("\ndone.");
}

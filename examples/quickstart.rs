//! Quickstart: bring up a small TCloud on TROPIC and drive it through the
//! typed client API — build a request, follow its handle, stream lifecycle
//! events, batch-submit atomically, and watch a failure roll back cleanly.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use tropic::core::{
    format_execution_log, ExecMode, PlatformConfig, Priority, Tropic, TxnRequest, TxnState,
};
use tropic::devices::{Device, LatencyModel};
use tropic::tcloud::TopologySpec;

fn main() {
    // A 4-host data center with one storage server and a router.
    let spec = TopologySpec {
        compute_hosts: 4,
        storage_hosts: 1,
        routers: 1,
        ..Default::default()
    };
    let devices = spec.build_devices(&LatencyModel::tcloud_scaled());
    let platform = Tropic::start(
        PlatformConfig::default(), // 3 replicated controllers, as the paper deploys.
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    let client = platform.client();

    // Stream lifecycle events while we work.
    let events = client.subscribe();

    // 1. Spawn a VM: one typed request, one ACID transaction over
    //    storage + compute devices. High priority, 60 s deadline, and an
    //    idempotency key so an accidental resubmit cannot double-spawn.
    println!("spawning web-1 on host0...");
    let handle = client
        .submit_request(
            TxnRequest::new("spawnVM")
                .args(spec.spawn_args("web-1", 0, 2_048))
                .priority(Priority::High)
                .deadline(Duration::from_secs(60))
                .idempotency_key("spawn-web-1")
                .label("tier", "frontend"),
        )
        .expect("platform reachable");
    // Non-blocking poll first (usually still in flight), then the
    // event-driven wait, bounded by the request's deadline.
    match handle.try_outcome().expect("coord reachable") {
        Some(o) => println!("  already finished: {:?}", o.state),
        None => println!("  txn {} in flight...", handle.id()),
    }
    let outcome = handle.wait().expect("outcome within the deadline");
    println!("  -> {:?} in {} ms", outcome.state, outcome.latency_ms);
    assert_eq!(outcome.state, TxnState::Committed);
    println!(
        "  host0 runs web-1: {:?}",
        devices.computes[0].vm_power("web-1")
    );

    // An idempotent resubmit resolves to the *same* transaction — no
    // second VM, same outcome id.
    let dup = client
        .submit_request(
            TxnRequest::new("spawnVM")
                .args(spec.spawn_args("web-1", 0, 2_048))
                .idempotency_key("spawn-web-1"),
        )
        .expect("platform reachable")
        .wait_timeout(Duration::from_secs(30))
        .expect("dedup outcome");
    assert_eq!(dup.id, outcome.id, "dedup returns the original TxnId");
    println!("  resubmit deduped onto txn {}", dup.id);

    // 2. Inspect the durable execution log (the paper's Table 1).
    let record = client
        .txn_record(outcome.id)
        .expect("coord reachable")
        .expect("record retained");
    println!("\nexecution log (paper Table 1):");
    print!("{}", format_execution_log(&record.log));

    // 3. Inject a failure in the last step; the transaction aborts and
    //    every earlier action is undone — no orphaned image, no half-built
    //    VM (the paper's §2.1 robustness goal).
    println!("\nspawning doomed-1 with an injected startVM failure...");
    devices.computes[1].fault_plan().fail_once("startVM");
    let outcome = client
        .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args("doomed-1", 1, 2_048)))
        .expect("platform reachable")
        .wait_timeout(Duration::from_secs(60))
        .expect("outcome");
    println!(
        "  -> {:?}: {}",
        outcome.state,
        outcome.error.clone().unwrap_or_default()
    );
    assert_eq!(outcome.state, TxnState::Aborted);
    assert!(
        outcome.api_error().is_none(),
        "a device failure is an application outcome, not an API error"
    );
    println!(
        "  no leftovers: host1 has {} VMs, storage has doomed-1-img: {}",
        devices.computes[1].vm_count(),
        devices.storages[0].has_image("doomed-1-img"),
    );

    // 4. Batch-submit atomically: a migration and a batch-lane spawn land
    //    in the queues via ONE coordination-store write (or not at all).
    println!("\nbatch: migrate web-1 host0 -> host2, spawn web-2 in the batch lane...");
    let handles = client
        .submit_batch(vec![
            TxnRequest::new("migrateVM")
                .arg("/vmRoot/host0")
                .arg("/vmRoot/host2")
                .arg("web-1")
                .priority(Priority::High),
            TxnRequest::new("spawnVM")
                .args(spec.spawn_args("web-2", 3, 2_048))
                .priority(Priority::Batch),
        ])
        .expect("atomic enqueue");
    for handle in &handles {
        let o = handle
            .wait_timeout(Duration::from_secs(60))
            .expect("outcome");
        println!("  txn {} -> {:?} in {} ms", o.id, o.state, o.latency_ms);
        assert_eq!(o.state, TxnState::Committed);
    }
    println!(
        "  host0: {:?}, host2: {:?}",
        devices.computes[0].vm_power("web-1"),
        devices.computes[2].vm_power("web-1"),
    );

    // 5. The subscription saw every transition.
    std::thread::sleep(Duration::from_millis(300));
    println!("\nlifecycle events observed:");
    for ev in events.drain() {
        println!(
            "  txn {} [{:?}] {} -> {:?}",
            ev.id, ev.priority, ev.proc_name, ev.state
        );
    }

    platform.shutdown();
    println!("\ndone.");
}

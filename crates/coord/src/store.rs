//! The replicated znode store.
//!
//! Each ensemble replica holds one [`ZnodeStore`] and applies the same
//! totally-ordered sequence of [`Op`]s, so all replicas converge to the same
//! state. Application is deterministic: sequential-node counters live in the
//! parent znode and are part of replicated state.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bytes::Bytes;
use tropic_model::Path;

use crate::error::{CoordError, CoordResult};
use crate::wal::codec;

/// Metadata of a znode, in the spirit of ZooKeeper's `Stat`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stat {
    /// Zxid of the transaction that created the node.
    pub czxid: u64,
    /// Zxid of the transaction that last modified the node's data.
    pub mzxid: u64,
    /// Data version, starting at 0 and bumped by each set.
    pub version: u64,
    /// Owning session for ephemeral nodes.
    pub ephemeral_owner: Option<u64>,
    /// Number of direct children.
    pub num_children: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Znode {
    data: Bytes,
    czxid: u64,
    mzxid: u64,
    version: u64,
    ephemeral_owner: Option<u64>,
    /// Monotonic counter for sequential child names.
    cseq: u64,
    children: BTreeMap<String, Znode>,
}

impl Znode {
    fn new(data: Bytes, zxid: u64, ephemeral_owner: Option<u64>) -> Self {
        Znode {
            data,
            czxid: zxid,
            mzxid: zxid,
            version: 0,
            ephemeral_owner,
            cseq: 0,
            children: BTreeMap::new(),
        }
    }

    fn stat(&self) -> Stat {
        Stat {
            czxid: self.czxid,
            mzxid: self.mzxid,
            version: self.version,
            ephemeral_owner: self.ephemeral_owner,
            num_children: self.children.len(),
        }
    }
}

/// A write operation replicated through the broadcast protocol.
#[derive(Clone, Debug)]
pub enum Op {
    /// Create a znode.
    Create {
        /// Target path; for sequential nodes this is the prefix.
        path: Path,
        /// Initial data.
        data: Bytes,
        /// Owning session, making the node ephemeral.
        ephemeral_owner: Option<u64>,
        /// Append a monotonically-increasing zero-padded suffix.
        sequential: bool,
    },
    /// Replace a znode's data.
    SetData {
        /// Target path.
        path: Path,
        /// New data.
        data: Bytes,
        /// Required current version (compare-and-swap) if given.
        expected_version: Option<u64>,
    },
    /// Delete a znode (must be childless).
    Delete {
        /// Target path.
        path: Path,
        /// Required current version if given.
        expected_version: Option<u64>,
    },
    /// Delete all ephemeral znodes owned by an expired session.
    PurgeSession {
        /// The expired session.
        session: u64,
    },
    /// Apply a batch of operations atomically: either every sub-operation
    /// succeeds, or the store is left byte-identical to its pre-batch state.
    /// Replicated as one broadcast unit, so the batch is also atomic with
    /// respect to crashes and follower sync (group commit). Must not nest.
    Multi {
        /// The sub-operations, applied in order.
        ops: Vec<Op>,
    },
}

impl Op {
    /// Short operation name for logging and stats.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Create { .. } => "create",
            Op::SetData { .. } => "set",
            Op::Delete { .. } => "delete",
            Op::PurgeSession { .. } => "purge_session",
            Op::Multi { .. } => "multi",
        }
    }
}

/// Result of applying an [`Op`].
#[derive(Clone, Debug, PartialEq)]
pub enum OpResult {
    /// Node created; carries the final path (with sequence suffix applied).
    Created(Path),
    /// Data set; carries the new version.
    Set(u64),
    /// Node deleted.
    Deleted,
    /// Session purged; carries the paths of deleted ephemerals.
    Purged(Vec<Path>),
    /// Batch applied; carries each sub-operation's result in order.
    Multi(Vec<OpResult>),
}

/// A state change notification produced by applying an op. The service layer
/// matches these against registered watches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreEvent {
    /// A node was created at the path.
    Created(Path),
    /// A node was deleted at the path.
    Deleted(Path),
    /// A node's data changed.
    DataChanged(Path),
    /// The set of children under the path changed.
    ChildrenChanged(Path),
}

/// Inverse of one applied sub-operation, journaled by [`Op::Multi`] so a
/// failing batch can be reverted to a byte-identical pre-batch state.
enum Undo {
    /// Remove the node created at `path`; restore the parent's sequential
    /// counter when the create consumed one.
    Created {
        path: Path,
        prev_parent_cseq: Option<u64>,
    },
    /// Restore a node's previous data, version, and mzxid.
    Set {
        path: Path,
        data: Bytes,
        version: u64,
        mzxid: u64,
    },
    /// Re-insert a deleted node (leaf at deletion time, so no subtree).
    Deleted { path: Path, node: Znode },
    /// Re-insert purged ephemerals. Order is irrelevant: ephemerals are
    /// enforced childless, so no purged node can be another's parent.
    Purged { nodes: Vec<(Path, Znode)> },
}

/// One entry of an incremental (delta) snapshot: the post-state of a znode
/// touched since the delta's base snapshot, or a tombstone for one that no
/// longer exists. A `Put` carries every scalar field but not children —
/// membership changes under a node are always covered by the children's own
/// records, because creates and deletes mark both child and parent dirty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaRecord {
    /// Upsert: create the node if missing, else overwrite its scalars while
    /// keeping its children.
    Put {
        /// Absolute path of the node.
        path: Path,
        /// Node payload at the delta's zxid.
        data: Bytes,
        /// Creation zxid.
        czxid: u64,
        /// Last-modification zxid.
        mzxid: u64,
        /// Data version.
        version: u64,
        /// Owning session for ephemeral nodes.
        ephemeral_owner: Option<u64>,
        /// Sequential-child counter.
        cseq: u64,
    },
    /// The path was dirtied and no longer exists at the delta's zxid.
    Tombstone {
        /// Absolute path of the deleted node.
        path: Path,
    },
}

/// One replica's copy of the znode tree.
#[derive(Clone)]
pub struct ZnodeStore {
    root: Znode,
    /// Paths touched since the last snapshot. An over-approximation: a
    /// reverted [`Op::Multi`] leaves its marks behind, which costs redundant
    /// delta records but never correctness.
    dirty: BTreeSet<Path>,
}

impl PartialEq for ZnodeStore {
    fn eq(&self, other: &Self) -> bool {
        // Dirty marks are local snapshot bookkeeping, not replicated state:
        // two replicas with identical trees compare equal even when their
        // snapshot cadences differ.
        self.root == other.root
    }
}

impl Eq for ZnodeStore {}

impl fmt::Debug for ZnodeStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ZnodeStore")
            .field("root", &self.root)
            .finish()
    }
}

impl Default for ZnodeStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ZnodeStore {
    /// Creates an empty store with a root znode.
    pub fn new() -> Self {
        ZnodeStore {
            root: Znode::new(Bytes::new(), 0, None),
            dirty: BTreeSet::new(),
        }
    }

    /// Number of distinct paths dirtied since the last
    /// [`ZnodeStore::clear_dirty`]. Snapshot policy compares this against
    /// [`ZnodeStore::node_count`] to pick delta vs full.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Forgets all dirty marks. Called once a snapshot (full or delta) has
    /// captured the state they describe.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// The incremental snapshot of the dirtied paths: tombstones for paths
    /// that no longer exist, then upserts in lexicographic path order (which
    /// puts every ancestor before its descendants, the order
    /// [`ZnodeStore::apply_delta`] relies on).
    pub fn delta_records(&self) -> Vec<DeltaRecord> {
        let mut tombstones = Vec::new();
        let mut puts = Vec::new();
        for path in &self.dirty {
            match self.get_node(path) {
                Some(n) => puts.push(DeltaRecord::Put {
                    path: path.clone(),
                    data: n.data.clone(),
                    czxid: n.czxid,
                    mzxid: n.mzxid,
                    version: n.version,
                    ephemeral_owner: n.ephemeral_owner,
                    cseq: n.cseq,
                }),
                None => tombstones.push(DeltaRecord::Tombstone { path: path.clone() }),
            }
        }
        tombstones.extend(puts);
        tombstones
    }

    /// Applies a decoded delta on top of this store (which must be the
    /// delta's base state). Tombstones remove whole subtrees and ignore
    /// already-missing paths (a deleted ancestor's tombstone subsumes its
    /// descendants'). Returns `None` when a record is inconsistent with the
    /// tree — a root tombstone or an upsert under an absent parent — which
    /// chain recovery treats as corruption.
    pub fn apply_delta(&mut self, records: &[DeltaRecord]) -> Option<()> {
        for rec in records {
            match rec {
                DeltaRecord::Tombstone { path } => {
                    let leaf = path.leaf()?.to_owned();
                    let parent_path = path.parent().expect("non-root");
                    if let Some(parent) = self.get_node_mut(&parent_path) {
                        parent.children.remove(&leaf);
                    }
                }
                DeltaRecord::Put {
                    path,
                    data,
                    czxid,
                    mzxid,
                    version,
                    ephemeral_owner,
                    cseq,
                } => match path.leaf() {
                    // Root upsert: scalars only (top-level sequential
                    // creates bump its cseq).
                    None => {
                        let root = &mut self.root;
                        root.data = data.clone();
                        root.czxid = *czxid;
                        root.mzxid = *mzxid;
                        root.version = *version;
                        root.ephemeral_owner = *ephemeral_owner;
                        root.cseq = *cseq;
                    }
                    Some(leaf) => {
                        let leaf = leaf.to_owned();
                        let parent_path = path.parent().expect("non-root");
                        let parent = self.get_node_mut(&parent_path)?;
                        if let Some(node) = parent.children.get_mut(&leaf) {
                            node.data = data.clone();
                            node.czxid = *czxid;
                            node.mzxid = *mzxid;
                            node.version = *version;
                            node.ephemeral_owner = *ephemeral_owner;
                            node.cseq = *cseq;
                        } else {
                            let mut node = Znode::new(data.clone(), *czxid, *ephemeral_owner);
                            node.mzxid = *mzxid;
                            node.version = *version;
                            node.cseq = *cseq;
                            parent.children.insert(leaf, node);
                        }
                    }
                },
            }
        }
        Some(())
    }

    fn get_node(&self, path: &Path) -> Option<&Znode> {
        let mut cur = &self.root;
        for seg in path.segments() {
            cur = cur.children.get(seg)?;
        }
        Some(cur)
    }

    fn get_node_mut(&mut self, path: &Path) -> Option<&mut Znode> {
        let mut cur = &mut self.root;
        for seg in path.segments() {
            cur = cur.children.get_mut(seg)?;
        }
        Some(cur)
    }

    /// Reads a znode's data and stat.
    pub fn get(&self, path: &Path) -> Option<(Bytes, Stat)> {
        self.get_node(path).map(|n| (n.data.clone(), n.stat()))
    }

    /// Returns `true` if a znode exists at `path`.
    pub fn exists(&self, path: &Path) -> bool {
        self.get_node(path).is_some()
    }

    /// Names of direct children in lexicographic order.
    pub fn children(&self, path: &Path) -> CoordResult<Vec<String>> {
        self.get_node(path)
            .map(|n| n.children.keys().cloned().collect())
            .ok_or_else(|| CoordError::NoNode(path.clone()))
    }

    /// Total number of znodes including the root.
    pub fn node_count(&self) -> usize {
        fn count(n: &Znode) -> usize {
            1 + n.children.values().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// Every session that owns at least one ephemeral znode, ascending.
    /// Recovery uses this to purge sessions that did not survive a full
    /// restart (their clients are gone, so nothing else would expire them).
    pub fn ephemeral_sessions(&self) -> Vec<u64> {
        let mut out = Vec::new();
        fn rec(node: &Znode, out: &mut Vec<u64>) {
            if let Some(session) = node.ephemeral_owner {
                out.push(session);
            }
            for child in node.children.values() {
                rec(child, out);
            }
        }
        rec(&self.root, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Serializes the full store — data, zxids, versions, ephemeral owners,
    /// and sequential counters — into the snapshot wire format.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        encode_znode(&self.root, out);
    }

    /// Inverse of [`ZnodeStore::encode_into`]; `None` on malformed input.
    pub(crate) fn decode_from(cur: &mut codec::Cursor<'_>) -> Option<Self> {
        Some(ZnodeStore {
            root: decode_znode(cur)?,
            dirty: BTreeSet::new(),
        })
    }

    /// Paths of all ephemeral znodes owned by `session`.
    pub fn ephemerals_of(&self, session: u64) -> Vec<Path> {
        let mut out = Vec::new();
        fn rec(path: &Path, node: &Znode, session: u64, out: &mut Vec<Path>) {
            if node.ephemeral_owner == Some(session) {
                out.push(path.clone());
            }
            for (name, child) in &node.children {
                rec(&path.join(name), child, session, out);
            }
        }
        rec(&Path::root(), &self.root, session, &mut out);
        out
    }

    /// Applies a committed op at `zxid`, returning its result and the watch
    /// events it produced. Deterministic across replicas.
    pub fn apply(&mut self, zxid: u64, op: &Op) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        match op {
            Op::Create {
                path,
                data,
                ephemeral_owner,
                sequential,
            } => self.apply_create(zxid, path, data.clone(), *ephemeral_owner, *sequential),
            Op::SetData {
                path,
                data,
                expected_version,
            } => self.apply_set(zxid, path, data.clone(), *expected_version),
            Op::Delete {
                path,
                expected_version,
            } => self.apply_delete(path, *expected_version),
            Op::PurgeSession { session } => self.apply_purge(*session),
            Op::Multi { ops } => self.apply_multi(zxid, ops),
        }
    }

    /// Applies a batch all-or-nothing: sub-ops are applied in order with an
    /// undo journal; the first failure reverts every earlier sub-op (in
    /// reverse order) and reports [`CoordError::MultiFailed`] with the
    /// failing index. No events are emitted for a failed batch. Nested
    /// batches are rejected before anything is applied.
    fn apply_multi(&mut self, zxid: u64, ops: &[Op]) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        if let Some(index) = ops.iter().position(|op| matches!(op, Op::Multi { .. })) {
            return (
                Err(CoordError::MultiFailed {
                    index,
                    cause: Box::new(CoordError::NestedMulti),
                }),
                Vec::new(),
            );
        }
        let mut results = Vec::with_capacity(ops.len());
        let mut events = Vec::new();
        let mut undos: Vec<Undo> = Vec::with_capacity(ops.len());
        for (index, op) in ops.iter().enumerate() {
            // Journal the inverse *before* applying: failed sub-ops mutate
            // nothing (checked below via the apply result), so only applied
            // ops need reverting.
            let undo = self.journal_undo(op);
            let (result, evs) = self.apply(zxid, op);
            match result {
                Ok(r) => {
                    undos.push(self.finish_undo(undo, &r));
                    results.push(r);
                    events.extend(evs);
                }
                Err(cause) => {
                    self.revert(undos);
                    return (
                        Err(CoordError::MultiFailed {
                            index,
                            cause: Box::new(cause),
                        }),
                        Vec::new(),
                    );
                }
            }
        }
        (Ok(OpResult::Multi(results)), events)
    }

    /// Captures the pre-apply state a sub-op's inverse needs. The created
    /// path of a sequential create is only known post-apply; see
    /// [`ZnodeStore::finish_undo`].
    fn journal_undo(&self, op: &Op) -> Undo {
        match op {
            Op::Create {
                path, sequential, ..
            } => Undo::Created {
                path: path.clone(), // placeholder; finish_undo fills the final path
                prev_parent_cseq: sequential
                    .then(|| {
                        path.parent()
                            .and_then(|pp| self.get_node(&pp))
                            .map(|n| n.cseq)
                    })
                    .flatten(),
            },
            Op::SetData { path, .. } => match self.get_node(path) {
                Some(n) => Undo::Set {
                    path: path.clone(),
                    data: n.data.clone(),
                    version: n.version,
                    mzxid: n.mzxid,
                },
                // The apply will fail with NoNode; journal a no-op shape.
                None => Undo::Purged { nodes: Vec::new() },
            },
            Op::Delete { path, .. } => match self.get_node(path) {
                Some(n) => Undo::Deleted {
                    path: path.clone(),
                    node: n.clone(),
                },
                None => Undo::Purged { nodes: Vec::new() },
            },
            Op::PurgeSession { session } => Undo::Purged {
                nodes: self
                    .ephemerals_of(*session)
                    .into_iter()
                    .filter_map(|p| self.get_node(&p).cloned().map(|n| (p, n)))
                    .collect(),
            },
            Op::Multi { .. } => unreachable!("nested multi rejected earlier"),
        }
    }

    /// Completes an undo entry with post-apply information (the final path
    /// of a sequential create).
    fn finish_undo(&self, undo: Undo, result: &OpResult) -> Undo {
        match (undo, result) {
            (
                Undo::Created {
                    prev_parent_cseq, ..
                },
                OpResult::Created(final_path),
            ) => Undo::Created {
                path: final_path.clone(),
                prev_parent_cseq,
            },
            (undo, _) => undo,
        }
    }

    /// Reverts journaled sub-ops in reverse order, restoring the pre-batch
    /// state exactly (data, versions, zxids, and sequential counters).
    fn revert(&mut self, undos: Vec<Undo>) {
        for undo in undos.into_iter().rev() {
            match undo {
                Undo::Created {
                    path,
                    prev_parent_cseq,
                } => {
                    let name = path.leaf().expect("created nodes are non-root").to_owned();
                    let parent_path = path.parent().expect("non-root");
                    if let Some(parent) = self.get_node_mut(&parent_path) {
                        parent.children.remove(&name);
                        if let Some(cseq) = prev_parent_cseq {
                            parent.cseq = cseq;
                        }
                    }
                }
                Undo::Set {
                    path,
                    data,
                    version,
                    mzxid,
                } => {
                    if let Some(node) = self.get_node_mut(&path) {
                        node.data = data;
                        node.version = version;
                        node.mzxid = mzxid;
                    }
                }
                Undo::Deleted { path, node } => {
                    self.reinsert(&path, node);
                }
                Undo::Purged { nodes } => {
                    // Childless by the ephemeral invariant, so any
                    // re-insertion order restores the exact tree.
                    for (path, node) in nodes.into_iter().rev() {
                        self.reinsert(&path, node);
                    }
                }
            }
        }
    }

    fn reinsert(&mut self, path: &Path, node: Znode) {
        let name = path.leaf().expect("non-root").to_owned();
        let parent_path = path.parent().expect("non-root");
        if let Some(parent) = self.get_node_mut(&parent_path) {
            parent.children.insert(name, node);
        }
    }

    fn apply_create(
        &mut self,
        zxid: u64,
        path: &Path,
        data: Bytes,
        ephemeral_owner: Option<u64>,
        sequential: bool,
    ) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        let Some(base_name) = path.leaf().map(str::to_owned) else {
            return (Err(CoordError::NodeExists(path.clone())), Vec::new());
        };
        let parent_path = path.parent().expect("non-root");
        let Some(parent) = self.get_node_mut(&parent_path) else {
            return (Err(CoordError::NoParent(path.clone())), Vec::new());
        };
        if parent.ephemeral_owner.is_some() {
            return (Err(CoordError::EphemeralParent(parent_path)), Vec::new());
        }
        let name = if sequential {
            // Skip over any literal child squatting on the next sequential
            // name, so a collision can never fail (or wedge) the counter.
            // The skip commits with the create and reverts with the batch's
            // undo journal, keeping failed ops side-effect free (required
            // by Multi's atomicity) and replicas deterministic.
            let mut seq = parent.cseq;
            let mut name = format!("{base_name}{seq:010}");
            while parent.children.contains_key(&name) {
                seq += 1;
                name = format!("{base_name}{seq:010}");
            }
            parent.cseq = seq + 1;
            name
        } else {
            if parent.children.contains_key(&base_name) {
                return (
                    Err(CoordError::NodeExists(parent_path.join(&base_name))),
                    Vec::new(),
                );
            }
            base_name
        };
        parent
            .children
            .insert(name.clone(), Znode::new(data, zxid, ephemeral_owner));
        let final_path = parent_path.join(&name);
        self.dirty.insert(final_path.clone());
        self.dirty.insert(parent_path.clone());
        let events = vec![
            StoreEvent::Created(final_path.clone()),
            StoreEvent::ChildrenChanged(parent_path),
        ];
        (Ok(OpResult::Created(final_path)), events)
    }

    fn apply_set(
        &mut self,
        zxid: u64,
        path: &Path,
        data: Bytes,
        expected_version: Option<u64>,
    ) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        let Some(node) = self.get_node_mut(path) else {
            return (Err(CoordError::NoNode(path.clone())), Vec::new());
        };
        if let Some(expected) = expected_version {
            if node.version != expected {
                return (
                    Err(CoordError::BadVersion {
                        path: path.clone(),
                        expected,
                        actual: node.version,
                    }),
                    Vec::new(),
                );
            }
        }
        node.data = data;
        node.version += 1;
        node.mzxid = zxid;
        let v = node.version;
        self.dirty.insert(path.clone());
        (
            Ok(OpResult::Set(v)),
            vec![StoreEvent::DataChanged(path.clone())],
        )
    }

    fn apply_delete(
        &mut self,
        path: &Path,
        expected_version: Option<u64>,
    ) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        let Some(node) = self.get_node(path) else {
            return (Err(CoordError::NoNode(path.clone())), Vec::new());
        };
        if !node.children.is_empty() {
            return (Err(CoordError::NotEmpty(path.clone())), Vec::new());
        }
        if let Some(expected) = expected_version {
            if node.version != expected {
                let actual = node.version;
                return (
                    Err(CoordError::BadVersion {
                        path: path.clone(),
                        expected,
                        actual,
                    }),
                    Vec::new(),
                );
            }
        }
        let name = path.leaf().expect("non-root").to_owned();
        let parent_path = path.parent().expect("non-root");
        let parent = self.get_node_mut(&parent_path).expect("parent exists");
        parent.children.remove(&name);
        self.dirty.insert(path.clone());
        self.dirty.insert(parent_path.clone());
        let events = vec![
            StoreEvent::Deleted(path.clone()),
            StoreEvent::ChildrenChanged(parent_path),
        ];
        (Ok(OpResult::Deleted), events)
    }

    fn apply_purge(&mut self, session: u64) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        // Deepest-first so children are removed before parents.
        let mut paths = self.ephemerals_of(session);
        paths.sort_by_key(|p| std::cmp::Reverse(p.depth()));
        let mut events = Vec::new();
        let mut deleted = Vec::new();
        for path in paths {
            let name = path.leaf().expect("ephemerals are non-root").to_owned();
            let parent_path = path.parent().expect("non-root");
            // Ephemeral nodes have no children (enforced at create), so
            // removal cannot orphan anything.
            let removed = self
                .get_node_mut(&parent_path)
                .is_some_and(|parent| parent.children.remove(&name).is_some());
            if removed {
                self.dirty.insert(path.clone());
                self.dirty.insert(parent_path.clone());
                events.push(StoreEvent::Deleted(path.clone()));
                events.push(StoreEvent::ChildrenChanged(parent_path));
                deleted.push(path);
            }
        }
        (Ok(OpResult::Purged(deleted)), events)
    }
}

fn encode_znode(node: &Znode, out: &mut Vec<u8>) {
    codec::put_bytes(out, &node.data);
    codec::put_u64(out, node.czxid);
    codec::put_u64(out, node.mzxid);
    codec::put_u64(out, node.version);
    codec::put_opt_u64(out, node.ephemeral_owner);
    codec::put_u64(out, node.cseq);
    codec::put_u32(out, node.children.len() as u32);
    for (name, child) in &node.children {
        codec::put_str(out, name);
        encode_znode(child, out);
    }
}

fn decode_znode(cur: &mut codec::Cursor<'_>) -> Option<Znode> {
    let data = Bytes::copy_from_slice(cur.bytes()?);
    let czxid = cur.u64()?;
    let mzxid = cur.u64()?;
    let version = cur.u64()?;
    let ephemeral_owner = cur.opt_u64()?;
    let cseq = cur.u64()?;
    let count = cur.u32()?;
    // No pre-allocation from the wire-claimed count; the cursor bounds the
    // loop on truncated input anyway.
    let mut children = BTreeMap::new();
    for _ in 0..count {
        let name = cur.str()?.to_owned();
        let child = decode_znode(cur)?;
        children.insert(name, child);
    }
    Some(Znode {
        data,
        czxid,
        mzxid,
        version,
        ephemeral_owner,
        cseq,
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn create(store: &mut ZnodeStore, zxid: u64, path: &str) -> CoordResult<OpResult> {
        store
            .apply(
                zxid,
                &Op::Create {
                    path: p(path),
                    data: Bytes::from_static(b"x"),
                    ephemeral_owner: None,
                    sequential: false,
                },
            )
            .0
    }

    #[test]
    fn create_get_delete() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/a").unwrap();
        create(&mut s, 2, "/a/b").unwrap();
        let (data, stat) = s.get(&p("/a/b")).unwrap();
        assert_eq!(&data[..], b"x");
        assert_eq!(stat.version, 0);
        assert_eq!(stat.czxid, 2);
        assert_eq!(s.children(&p("/a")).unwrap(), vec!["b".to_string()]);
        let (res, events) = s.apply(
            3,
            &Op::Delete {
                path: p("/a/b"),
                expected_version: None,
            },
        );
        assert_eq!(res.unwrap(), OpResult::Deleted);
        assert!(events.contains(&StoreEvent::Deleted(p("/a/b"))));
        assert!(!s.exists(&p("/a/b")));
    }

    #[test]
    fn create_requires_parent_and_uniqueness() {
        let mut s = ZnodeStore::new();
        assert!(matches!(
            create(&mut s, 1, "/a/b"),
            Err(CoordError::NoParent(_))
        ));
        create(&mut s, 1, "/a").unwrap();
        assert!(matches!(
            create(&mut s, 2, "/a"),
            Err(CoordError::NodeExists(_))
        ));
    }

    #[test]
    fn sequential_names_monotonic() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/q").unwrap();
        let mk = |s: &mut ZnodeStore, zxid| {
            let (res, _) = s.apply(
                zxid,
                &Op::Create {
                    path: p("/q/item-"),
                    data: Bytes::new(),
                    ephemeral_owner: None,
                    sequential: true,
                },
            );
            match res.unwrap() {
                OpResult::Created(path) => path,
                other => panic!("unexpected {other:?}"),
            }
        };
        let a = mk(&mut s, 2);
        let b = mk(&mut s, 3);
        assert_eq!(a.leaf(), Some("item-0000000000"));
        assert_eq!(b.leaf(), Some("item-0000000001"));
        // Counter survives deletion of earlier items.
        s.apply(
            4,
            &Op::Delete {
                path: a,
                expected_version: None,
            },
        )
        .0
        .unwrap();
        let c = mk(&mut s, 5);
        assert_eq!(c.leaf(), Some("item-0000000002"));
    }

    #[test]
    fn set_data_versions_and_cas() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/a").unwrap();
        let (res, _) = s.apply(
            2,
            &Op::SetData {
                path: p("/a"),
                data: Bytes::from_static(b"y"),
                expected_version: Some(0),
            },
        );
        assert_eq!(res.unwrap(), OpResult::Set(1));
        let (res, _) = s.apply(
            3,
            &Op::SetData {
                path: p("/a"),
                data: Bytes::from_static(b"z"),
                expected_version: Some(0),
            },
        );
        assert!(matches!(res, Err(CoordError::BadVersion { actual: 1, .. })));
        // Unconditional set succeeds.
        let (res, _) = s.apply(
            4,
            &Op::SetData {
                path: p("/a"),
                data: Bytes::from_static(b"w"),
                expected_version: None,
            },
        );
        assert_eq!(res.unwrap(), OpResult::Set(2));
    }

    #[test]
    fn delete_guards() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/a").unwrap();
        create(&mut s, 2, "/a/b").unwrap();
        assert!(matches!(
            s.apply(
                3,
                &Op::Delete {
                    path: p("/a"),
                    expected_version: None
                }
            )
            .0,
            Err(CoordError::NotEmpty(_))
        ));
        assert!(matches!(
            s.apply(
                3,
                &Op::Delete {
                    path: p("/missing"),
                    expected_version: None
                }
            )
            .0,
            Err(CoordError::NoNode(_))
        ));
        assert!(matches!(
            s.apply(
                3,
                &Op::Delete {
                    path: p("/a/b"),
                    expected_version: Some(5)
                }
            )
            .0,
            Err(CoordError::BadVersion { .. })
        ));
    }

    #[test]
    fn ephemerals_purged_on_session_expiry() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/election").unwrap();
        for (zxid, session) in [(2u64, 100u64), (3, 100), (4, 200)] {
            s.apply(
                zxid,
                &Op::Create {
                    path: p("/election/n-"),
                    data: Bytes::new(),
                    ephemeral_owner: Some(session),
                    sequential: true,
                },
            )
            .0
            .unwrap();
        }
        assert_eq!(s.ephemerals_of(100).len(), 2);
        let (res, events) = s.apply(5, &Op::PurgeSession { session: 100 });
        match res.unwrap() {
            OpResult::Purged(paths) => assert_eq!(paths.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, StoreEvent::Deleted(_)))
                .count(),
            2
        );
        assert_eq!(s.ephemerals_of(100).len(), 0);
        assert_eq!(s.ephemerals_of(200).len(), 1);
        assert_eq!(s.children(&p("/election")).unwrap().len(), 1);
    }

    #[test]
    fn ephemeral_cannot_have_children() {
        let mut s = ZnodeStore::new();
        s.apply(
            1,
            &Op::Create {
                path: p("/eph"),
                data: Bytes::new(),
                ephemeral_owner: Some(9),
                sequential: false,
            },
        )
        .0
        .unwrap();
        assert!(matches!(
            create(&mut s, 2, "/eph/child"),
            Err(CoordError::EphemeralParent(_))
        ));
    }

    #[test]
    fn node_count() {
        let mut s = ZnodeStore::new();
        assert_eq!(s.node_count(), 1);
        create(&mut s, 1, "/a").unwrap();
        create(&mut s, 2, "/a/b").unwrap();
        assert_eq!(s.node_count(), 3);
    }

    fn create_op(path: &str, sequential: bool) -> Op {
        Op::Create {
            path: p(path),
            data: Bytes::from_static(b"m"),
            ephemeral_owner: None,
            sequential,
        }
    }

    #[test]
    fn multi_applies_all_and_concatenates_events() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/q").unwrap();
        let (res, events) = s.apply(
            2,
            &Op::Multi {
                ops: vec![
                    create_op("/a", false),
                    create_op("/q/item-", true),
                    Op::SetData {
                        path: p("/a"),
                        data: Bytes::from_static(b"v"),
                        expected_version: Some(0),
                    },
                ],
            },
        );
        let results = match res.unwrap() {
            OpResult::Multi(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], OpResult::Created(p("/a")));
        assert_eq!(results[1], OpResult::Created(p("/q/item-0000000000")));
        assert_eq!(results[2], OpResult::Set(1));
        assert!(events.contains(&StoreEvent::Created(p("/a"))));
        assert!(events.contains(&StoreEvent::DataChanged(p("/a"))));
        // Sub-ops share the batch's zxid.
        assert_eq!(s.get(&p("/a")).unwrap().1.czxid, 2);
        assert_eq!(s.get(&p("/a")).unwrap().1.mzxid, 2);
    }

    #[test]
    fn multi_partial_failure_restores_store_byte_identical() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/q").unwrap();
        create(&mut s, 2, "/victim").unwrap();
        s.apply(
            3,
            &Op::Create {
                path: p("/q/item-"),
                data: Bytes::new(),
                ephemeral_owner: None,
                sequential: true,
            },
        )
        .0
        .unwrap();
        let before = s.clone();
        // Creates, a set, a delete, and a sequential create all succeed,
        // then the last op fails on a version check.
        let (res, events) = s.apply(
            4,
            &Op::Multi {
                ops: vec![
                    create_op("/a", false),
                    create_op("/q/item-", true),
                    Op::SetData {
                        path: p("/victim"),
                        data: Bytes::from_static(b"changed"),
                        expected_version: None,
                    },
                    Op::Delete {
                        path: p("/q/item-0000000000"),
                        expected_version: None,
                    },
                    Op::SetData {
                        path: p("/a"),
                        data: Bytes::from_static(b"v"),
                        expected_version: Some(99),
                    },
                ],
            },
        );
        match res {
            Err(CoordError::MultiFailed { index: 4, cause }) => {
                assert!(matches!(*cause, CoordError::BadVersion { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(events.is_empty(), "failed batch must emit no events");
        assert_eq!(s, before, "store must be byte-identical after revert");
        assert_eq!(format!("{s:?}"), format!("{before:?}"));
        // The reverted sequential counter hands out the same name again.
        let (res, _) = s.apply(5, &create_op("/q/item-", true));
        assert_eq!(res.unwrap(), OpResult::Created(p("/q/item-0000000001")));
    }

    #[test]
    fn multi_first_op_failure_applies_nothing() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/exists").unwrap();
        let before = s.clone();
        let (res, _) = s.apply(
            2,
            &Op::Multi {
                ops: vec![create_op("/exists", false), create_op("/never", false)],
            },
        );
        match res {
            Err(CoordError::MultiFailed { index: 0, cause }) => {
                assert!(matches!(*cause, CoordError::NodeExists(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s, before);
        assert!(!s.exists(&p("/never")));
    }

    #[test]
    fn multi_rejects_nesting() {
        let mut s = ZnodeStore::new();
        let before = s.clone();
        let (res, _) = s.apply(
            1,
            &Op::Multi {
                ops: vec![create_op("/a", false), Op::Multi { ops: Vec::new() }],
            },
        );
        match res {
            Err(CoordError::MultiFailed { index: 1, cause }) => {
                assert!(matches!(*cause, CoordError::NestedMulti));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s, before, "nesting is rejected before any op applies");
    }

    #[test]
    fn multi_purge_reverted_exactly() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/eph-parent").unwrap();
        for zxid in 2..4u64 {
            s.apply(
                zxid,
                &Op::Create {
                    path: p("/eph-parent/n-"),
                    data: Bytes::from_static(b"e"),
                    ephemeral_owner: Some(7),
                    sequential: true,
                },
            )
            .0
            .unwrap();
        }
        let before = s.clone();
        let (res, _) = s.apply(
            5,
            &Op::Multi {
                ops: vec![
                    Op::PurgeSession { session: 7 },
                    Op::Delete {
                        path: p("/missing"),
                        expected_version: None,
                    },
                ],
            },
        );
        assert!(matches!(res, Err(CoordError::MultiFailed { index: 1, .. })));
        assert_eq!(s, before);
        assert_eq!(s.ephemerals_of(7).len(), 2);
    }

    #[test]
    fn empty_multi_is_a_successful_noop() {
        let mut s = ZnodeStore::new();
        let before = s.clone();
        let (res, events) = s.apply(1, &Op::Multi { ops: Vec::new() });
        assert_eq!(res.unwrap(), OpResult::Multi(Vec::new()));
        assert!(events.is_empty());
        assert_eq!(s, before);
    }

    #[test]
    fn sequential_create_skips_literal_collisions() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/q").unwrap();
        // A literal child squats on the counter's next name; sequential
        // creates skip past it instead of failing (a permanent NodeExists
        // here would wedge every queue built on sequential nodes).
        create(&mut s, 2, "/q/item-0000000000").unwrap();
        let (res, _) = s.apply(3, &create_op("/q/item-", true));
        assert_eq!(res.unwrap(), OpResult::Created(p("/q/item-0000000001")));
        let (res, _) = s.apply(4, &create_op("/q/item-", true));
        assert_eq!(res.unwrap(), OpResult::Created(p("/q/item-0000000002")));
    }

    #[test]
    fn reverted_sequential_skip_is_restored_exactly() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/q").unwrap();
        create(&mut s, 2, "/q/item-0000000000").unwrap();
        let before = s.clone();
        // The batch's sequential create skips to suffix 1, then the batch
        // fails; the revert must restore the pre-skip counter.
        let (res, _) = s.apply(
            3,
            &Op::Multi {
                ops: vec![
                    create_op("/q/item-", true),
                    Op::Delete {
                        path: p("/missing"),
                        expected_version: None,
                    },
                ],
            },
        );
        assert!(matches!(res, Err(CoordError::MultiFailed { index: 1, .. })));
        assert_eq!(s, before);
        let (res, _) = s.apply(4, &create_op("/q/item-", true));
        assert_eq!(res.unwrap(), OpResult::Created(p("/q/item-0000000001")));
    }

    #[test]
    fn binary_snapshot_roundtrip_preserves_everything() {
        let mut s = ZnodeStore::new();
        create(&mut s, 1, "/q").unwrap();
        s.apply(2, &create_op("/q/item-", true)).0.unwrap();
        s.apply(
            3,
            &Op::Create {
                path: p("/eph"),
                data: Bytes::from_static(b"e"),
                ephemeral_owner: Some(77),
                sequential: false,
            },
        )
        .0
        .unwrap();
        s.apply(
            4,
            &Op::SetData {
                path: p("/q"),
                data: Bytes::from_static(b"v"),
                expected_version: None,
            },
        )
        .0
        .unwrap();
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        let mut cur = codec::Cursor::new(&buf);
        let back = ZnodeStore::decode_from(&mut cur).expect("decodes");
        assert!(cur.is_done());
        assert_eq!(back, s, "versions, zxids, owners, and cseq all survive");
        assert_eq!(format!("{back:?}"), format!("{s:?}"));
        // The decoded store's sequential counter continues where it left off.
        let mut back = back;
        let (res, _) = back.apply(5, &create_op("/q/item-", true));
        assert_eq!(res.unwrap(), OpResult::Created(p("/q/item-0000000001")));
    }

    #[test]
    fn ephemeral_sessions_enumerated() {
        let mut s = ZnodeStore::new();
        assert!(s.ephemeral_sessions().is_empty());
        create(&mut s, 1, "/base").unwrap();
        for (zxid, session) in [(2u64, 9u64), (3, 4), (4, 9)] {
            s.apply(
                zxid,
                &Op::Create {
                    path: p("/base/e-"),
                    data: Bytes::new(),
                    ephemeral_owner: Some(session),
                    sequential: true,
                },
            )
            .0
            .unwrap();
        }
        assert_eq!(s.ephemeral_sessions(), vec![4, 9]);
    }
}

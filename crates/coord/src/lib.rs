//! # tropic-coord
//!
//! A replicated coordination service standing in for ZooKeeper in the
//! TROPIC reproduction (paper §2.3, §5). It provides the four primitives
//! TROPIC needs:
//!
//! * a **versioned znode store** with ephemeral and sequential nodes and
//!   one-shot watches ([`service::CoordClient`]),
//! * **durable FIFO queues** for `inputQ`/`phyQ` ([`queue::DistributedQueue`]),
//! * **quorum leader election** for the controllers
//!   ([`election::LeaderElection`]),
//! * **failure detection** through session heartbeats and expiry.
//!
//! Writes replicate through a leader-based totally-ordered broadcast over a
//! fault-injectable simulated network ([`ensemble::Ensemble`]); a write
//! commits once a strict majority acknowledges it. The configurable
//! [`service::CoordConfig::write_latency`] models ZooKeeper's logging I/O,
//! which the paper measures as the platform's dominant overhead (§6.1).
//!
//! ```
//! use tropic_coord::{CoordConfig, CoordService, CreateMode};
//! use tropic_model::Path;
//!
//! let svc = CoordService::start(CoordConfig::default());
//! let client = svc.connect("demo");
//! let path = Path::parse("/tropic/state").unwrap();
//! client.create_all(&path).unwrap();
//! client.set_data(&path, &b"ready"[..], None).unwrap();
//! assert!(client.exists(&path).unwrap());
//! # let _ = CreateMode::Persistent;
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod election;
pub mod ensemble;
pub mod error;
pub mod net;
pub mod queue;
pub mod service;
pub mod snapshot;
pub mod store;
pub mod testutil;
pub mod wal;

pub use election::LeaderElection;
pub use ensemble::{Ensemble, EnsembleStats};
pub use error::{CoordError, CoordResult};
pub use net::{NetStats, NodeId, SimNet};
pub use queue::DistributedQueue;
pub use service::{
    CoordClient, CoordConfig, CoordService, CreateMode, KeepAlive, ServiceStats, WatchEvent,
    WatchKind,
};
pub use store::{DeltaRecord, Op, OpResult, Stat, StoreEvent, ZnodeStore};
pub use testutil::TempDir;
pub use wal::frame::{write_frame, FrameError, FrameReader, DEFAULT_MAX_FRAME_BYTES};
pub use wal::{Durability, DurabilityOptions, DurabilityStats, SyncPolicy};

//! The replica ensemble and its totally-ordered broadcast.
//!
//! A leader replica assigns each write a zxid `(epoch << 32) | counter` and
//! replicates it to the followers through the [`SimNet`]; the write commits
//! once a quorum (including the leader) has acknowledged it, following the
//! protocol sketch of Reed & Junqueira cited by the paper ([21]). When the
//! leader replica crashes, the surviving replica with the longest log is
//! elected and lagging replicas sync from it.

use crate::error::{CoordError, CoordResult};
use crate::net::{NodeId, SimNet};
use crate::store::{Op, OpResult, StoreEvent, ZnodeStore};

/// A single ensemble replica: an op log plus the store it materializes.
#[derive(Debug)]
struct Replica {
    id: NodeId,
    alive: bool,
    log: Vec<(u64, Op)>,
    store: ZnodeStore,
    last_zxid: u64,
}

impl Replica {
    fn new(id: NodeId) -> Self {
        Replica {
            id,
            alive: true,
            log: Vec::new(),
            store: ZnodeStore::new(),
            last_zxid: 0,
        }
    }

    fn append_and_apply(&mut self, zxid: u64, op: &Op) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        self.log.push((zxid, op.clone()));
        self.last_zxid = zxid;
        self.store.apply(zxid, op)
    }
}

/// Counters describing broadcast activity, reported by experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnsembleStats {
    /// Committed writes.
    pub committed: u64,
    /// Writes rejected for lack of quorum.
    pub no_quorum: u64,
    /// Ensemble-internal leader elections.
    pub elections: u64,
}

/// A quorum-replicated log of store operations.
pub struct Ensemble {
    replicas: Vec<Replica>,
    net: SimNet,
    leader: Option<NodeId>,
    epoch: u64,
    counter: u64,
    stats: EnsembleStats,
}

impl Ensemble {
    /// Creates an ensemble of `n` replicas (odd sizes make sensible quorums)
    /// on a fresh simulated network.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "ensemble needs at least one replica");
        let mut e = Ensemble {
            replicas: (0..n).map(Replica::new).collect(),
            net: SimNet::new(seed),
            leader: Some(0),
            epoch: 1,
            counter: 0,
            stats: EnsembleStats::default(),
        };
        e.stats.elections = 1;
        e
    }

    /// The simulated network, for fault injection.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Quorum size: a strict majority.
    pub fn quorum(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    /// The current leader replica, if one holds a quorum.
    pub fn leader(&self) -> Option<NodeId> {
        self.leader
    }

    /// Broadcast statistics.
    pub fn stats(&self) -> EnsembleStats {
        self.stats
    }

    /// Crashes a replica: it stops acking and serving until restarted.
    pub fn crash_replica(&mut self, id: NodeId) {
        if let Some(r) = self.replicas.get_mut(id) {
            r.alive = false;
        }
        if self.leader == Some(id) {
            self.elect();
        }
    }

    /// Restarts a crashed replica, which syncs its log from the leader.
    pub fn restart_replica(&mut self, id: NodeId) {
        let Some(leader) = self.leader.or_else(|| {
            self.elect();
            self.leader
        }) else {
            return;
        };
        if id >= self.replicas.len() {
            return;
        }
        let (log, store, last_zxid) = {
            let l = &self.replicas[leader];
            (l.log.clone(), l.store.clone(), l.last_zxid)
        };
        let r = &mut self.replicas[id];
        r.alive = true;
        r.log = log;
        r.store = store;
        r.last_zxid = last_zxid;
    }

    /// Elects the alive replica with the longest log as leader, bumping the
    /// epoch and syncing reachable followers from it. Called automatically
    /// when the current leader crashes.
    fn elect(&mut self) {
        let new_leader = self
            .replicas
            .iter()
            .filter(|r| r.alive)
            .max_by_key(|r| (r.last_zxid, std::cmp::Reverse(r.id)))
            .map(|r| r.id);
        self.leader = new_leader;
        if let Some(leader) = new_leader {
            self.epoch += 1;
            self.counter = 0;
            self.stats.elections += 1;
            // Followers that can reach the new leader sync to its state.
            let (log, store, last_zxid) = {
                let l = &self.replicas[leader];
                (l.log.clone(), l.store.clone(), l.last_zxid)
            };
            for id in 0..self.replicas.len() {
                if id == leader || !self.replicas[id].alive {
                    continue;
                }
                if self.net.deliver(leader, id) && self.replicas[id].last_zxid < last_zxid {
                    let r = &mut self.replicas[id];
                    r.log = log.clone();
                    r.store = store.clone();
                    r.last_zxid = last_zxid;
                }
            }
        }
    }

    /// Number of alive replicas the leader can currently reach (itself
    /// included).
    fn reachable_from_leader(&self, leader: NodeId) -> Vec<NodeId> {
        self.replicas
            .iter()
            .filter(|r| r.alive)
            .filter(|r| r.id == leader || self.net.deliver(leader, r.id))
            .map(|r| r.id)
            .collect()
    }

    /// Submits a write through the broadcast protocol.
    ///
    /// Returns the leader's apply result and the store events the op
    /// produced, or [`CoordError::NoQuorum`] when too few replicas ack (in
    /// which case nothing is applied anywhere).
    pub fn submit(&mut self, op: Op) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        let Some(leader) = self.leader.filter(|&l| self.replicas[l].alive) else {
            self.elect();
            let Some(_) = self.leader else {
                return (Err(CoordError::Unavailable), Vec::new());
            };
            return self.submit(op);
        };

        // Propose phase: count replicas that receive and ack the proposal.
        let ackers = self.reachable_from_leader(leader);
        if ackers.len() < self.quorum() {
            self.stats.no_quorum += 1;
            return (
                Err(CoordError::NoQuorum {
                    acks: ackers.len(),
                    needed: self.quorum(),
                }),
                Vec::new(),
            );
        }

        // Commit phase: assign the zxid and apply on every acking replica.
        self.counter += 1;
        let zxid = (self.epoch << 32) | self.counter;
        let mut leader_result = None;
        let mut leader_events = Vec::new();
        for id in ackers {
            let r = &mut self.replicas[id];
            let (result, events) = r.append_and_apply(zxid, &op);
            if id == leader {
                leader_result = Some(result);
                leader_events = events;
            }
        }
        self.stats.committed += 1;
        (leader_result.expect("leader acked"), leader_events)
    }

    /// Reads from the leader's store. Returns an error when no leader holds
    /// a quorum.
    pub fn read<T>(&mut self, f: impl FnOnce(&ZnodeStore) -> T) -> CoordResult<T> {
        let Some(leader) = self.leader.filter(|&l| self.replicas[l].alive) else {
            self.elect();
            let Some(leader) = self.leader else {
                return Err(CoordError::Unavailable);
            };
            return Ok(f(&self.replicas[leader].store));
        };
        if self.reachable_from_leader(leader).len() < self.quorum() {
            return Err(CoordError::NoQuorum {
                acks: 1,
                needed: self.quorum(),
            });
        }
        Ok(f(&self.replicas[leader].store))
    }

    /// Verifies that every alive replica's store matches the leader's.
    /// Used by invariant tests.
    pub fn replicas_consistent(&self) -> bool {
        let Some(leader) = self.leader else {
            return true;
        };
        let reference = &self.replicas[leader];
        self.replicas
            .iter()
            .filter(|r| r.alive && r.last_zxid == reference.last_zxid)
            .all(|r| r.store.node_count() == reference.store.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tropic_model::Path;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn create_op(path: &str) -> Op {
        Op::Create {
            path: p(path),
            data: Bytes::from_static(b"d"),
            ephemeral_owner: None,
            sequential: false,
        }
    }

    #[test]
    fn writes_replicate_to_all() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        e.submit(create_op("/a/b")).0.unwrap();
        for r in &e.replicas {
            assert_eq!(r.store.node_count(), 3);
            assert_eq!(r.log.len(), 2);
        }
        assert!(e.replicas_consistent());
        assert_eq!(e.stats().committed, 2);
    }

    #[test]
    fn survives_minority_crash() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        e.crash_replica(2);
        e.submit(create_op("/b")).0.unwrap();
        assert_eq!(e.replicas[0].store.node_count(), 3);
        assert_eq!(e.replicas[2].store.node_count(), 2);
        // Restarted replica catches up.
        e.restart_replica(2);
        assert_eq!(e.replicas[2].store.node_count(), 3);
    }

    #[test]
    fn leader_crash_triggers_election() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        assert_eq!(e.leader(), Some(0));
        e.crash_replica(0);
        assert_ne!(e.leader(), Some(0));
        assert!(e.leader().is_some());
        // Writes continue under the new leader with a higher epoch.
        e.submit(create_op("/b")).0.unwrap();
        let leader = e.leader().unwrap();
        assert!(e.replicas[leader].store.exists(&p("/b")));
        assert!(e.replicas[leader].store.exists(&p("/a")));
        assert!(e.stats().elections >= 2);
    }

    #[test]
    fn majority_crash_blocks_writes() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        e.crash_replica(1);
        e.crash_replica(2);
        let (res, _) = e.submit(create_op("/b"));
        assert!(matches!(res, Err(CoordError::NoQuorum { .. })));
        // Nothing applied.
        assert!(!e.replicas[0].store.exists(&p("/b")));
        // Recovery after restart.
        e.restart_replica(1);
        e.submit(create_op("/b")).0.unwrap();
    }

    #[test]
    fn partition_isolating_leader_blocks_writes() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        e.net().partition(vec![vec![0], vec![1, 2]]);
        let (res, _) = e.submit(create_op("/b"));
        assert!(matches!(res, Err(CoordError::NoQuorum { .. })));
        e.net().heal();
        e.submit(create_op("/b")).0.unwrap();
    }

    #[test]
    fn all_crashed_is_unavailable() {
        let mut e = Ensemble::new(1, 1);
        e.crash_replica(0);
        let (res, _) = e.submit(create_op("/x"));
        assert!(matches!(res, Err(CoordError::Unavailable)));
    }

    #[test]
    fn zxids_monotonic_across_epochs() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        let z1 = e.replicas[0].last_zxid;
        e.crash_replica(0);
        e.submit(create_op("/b")).0.unwrap();
        let leader = e.leader().unwrap();
        let z2 = e.replicas[leader].last_zxid;
        assert!(z2 > z1, "zxid must grow across epochs: {z1} vs {z2}");
    }

    #[test]
    fn read_requires_quorum() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        let exists = e.read(|s| s.exists(&p("/a"))).unwrap();
        assert!(exists);
        e.crash_replica(1);
        e.crash_replica(2);
        assert!(e.read(|s| s.exists(&p("/a"))).is_err());
    }
}

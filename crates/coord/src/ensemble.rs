//! The replica ensemble and its totally-ordered broadcast.
//!
//! A leader replica assigns each write a zxid `(epoch << 32) | counter` and
//! replicates it to the followers through the [`SimNet`]; the write commits
//! once a quorum (including the leader) has acknowledged it, following the
//! protocol sketch of Reed & Junqueira cited by the paper (\[21\]). When the
//! leader replica crashes, the surviving replica with the longest log is
//! elected and lagging replicas sync from it.
//!
//! ## Durability
//!
//! With a data directory ([`Ensemble::with_durability`]), each replica owns
//! a [`Durability`] handle: every committed op is appended to a segmented
//! write-ahead log before it is applied, and a fuzzy snapshot — full, or a
//! delta covering just the dirtied subtrees — is written on a size/op-count
//! policy, after which both the on-disk segments and the in-memory
//! `Replica.log` are truncated, bounding memory and disk.
//! [`Ensemble::recover`] rebuilds every replica from its latest valid
//! snapshot chain plus the log suffix, then lets laggards catch up from the
//! leader. Follower resync ships only the suffix since the follower's
//! `last_zxid`; a follower behind the truncation horizon receives a full
//! snapshot transfer instead.
//!
//! Under [`crate::wal::SyncPolicy::Pipelined`], a committed batch is settled
//! in two phases: every acking replica's fsync is *started*
//! (`begin_batch_sync`) before any replica blocks on its own
//! (`finish_batch`), so the ensemble's per-batch fsyncs run concurrently
//! instead of end-to-end.
//!
//! ## Observer replicas
//!
//! Beyond the voting members, an ensemble can carry **observers**
//! ([`Ensemble::add_observer`]): non-voting replicas in the style of
//! ZooKeeper observers (Hunt et al., USENIX ATC 2010). An observer attaches
//! through the same suffix/snapshot-transfer machinery as a lagging
//! follower, replays every committed op, and serves reads off the quorum
//! path — but it never stands for election, never counts toward the ack
//! quorum, and never gates a commit. Staleness is bounded by a **lease**:
//! the leader renews an observer's lease (while it holds a quorum and the
//! observer is caught up to the last committed zxid) via
//! [`Ensemble::tick_observers`]; [`Ensemble::observer_read`] rejects with
//! [`CoordError::LeaseExpired`] once the lease lapses, so a partitioned or
//! lagging observer can never serve unboundedly stale data.

use std::io;
use std::path::Path as StdPath;

use crate::error::{CoordError, CoordResult};
use crate::net::{NodeId, SimNet};
use crate::store::{Op, OpResult, StoreEvent, ZnodeStore};
use crate::wal::{Durability, DurabilityOptions};

/// How many log entries an in-memory (non-durable) replica retains before
/// taking a "virtual snapshot": its store already holds the state, so old
/// entries are dropped and laggards fall back to snapshot transfer.
const DEFAULT_MEMORY_LOG_CAP: usize = 4_096;

/// Default observer lease, in milliseconds of the caller-supplied clock
/// (see [`Ensemble::tick_observers`]). Chosen to match the default client
/// session timeout: an observer goes stale no later than a dead client.
pub const DEFAULT_OBSERVER_LEASE_MS: u64 = 2_000;

/// A single ensemble replica: an op log plus the store it materializes.
/// `log` holds only entries with zxid greater than `log_start_zxid`; older
/// history is covered by the replica's snapshot (durable mode) or simply by
/// its live store (in-memory mode).
#[derive(Debug)]
struct Replica {
    id: NodeId,
    alive: bool,
    log: Vec<(u64, Op)>,
    log_start_zxid: u64,
    store: ZnodeStore,
    last_zxid: u64,
    durability: Option<Durability>,
    /// Non-voting member: replays commits and serves lease-bounded reads,
    /// but never stands for election or counts toward the quorum.
    observer: bool,
    /// Lease horizon for observer reads, in the caller's clock domain
    /// (see [`Ensemble::tick_observers`]). Voters ignore this field.
    lease_until_ms: u64,
}

impl Replica {
    fn new(id: NodeId) -> Self {
        Replica {
            id,
            alive: true,
            log: Vec::new(),
            log_start_zxid: 0,
            store: ZnodeStore::new(),
            last_zxid: 0,
            durability: None,
            observer: false,
            lease_until_ms: 0,
        }
    }

    fn append_and_apply(&mut self, zxid: u64, op: &Op) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        // Log before apply: a crash between the two replays the op, which is
        // deterministic and therefore converges to the same state.
        if let Some(d) = self.durability.as_mut() {
            if let Err(e) = d.append(zxid, op) {
                // Fail-stop: a replica that cannot persist must not ack, or
                // it would report durability it does not have. It rejoins
                // via snapshot transfer once healed.
                self.alive = false;
                return (Err(CoordError::Durability(e.to_string())), Vec::new());
            }
        }
        self.log.push((zxid, op.clone()));
        self.last_zxid = zxid;
        self.store.apply(zxid, op)
    }

    /// Starts this replica's group fsync without waiting on it (pipelined
    /// policy only; a no-op otherwise). Calling this on every acking
    /// replica before any `finish_batch` lets the ensemble's fsyncs for one
    /// batch overlap.
    fn begin_batch_sync(&mut self) {
        if let Some(d) = self.durability.as_mut() {
            if d.begin_batch_sync().is_err() {
                self.alive = false;
            }
        }
    }

    /// Ends a committed batch on this replica: fsync per policy, snapshot
    /// per policy (truncating WAL segments and the in-memory log), or — for
    /// in-memory replicas — enforce the log cap.
    fn finish_batch(&mut self, memory_log_cap: usize) {
        let last_zxid = self.last_zxid;
        let snapshot_zxid = match self.durability.as_mut() {
            Some(d) => match d.commit_batch(last_zxid, &mut self.store) {
                Ok(z) => z,
                Err(_) => {
                    self.alive = false;
                    return;
                }
            },
            None => {
                self.bound_memory(memory_log_cap);
                return;
            }
        };
        match snapshot_zxid {
            Some(zxid) => {
                self.log.retain(|(z, _)| *z > zxid);
                self.log_start_zxid = self.log_start_zxid.max(zxid);
            }
            // Both snapshot triggers disabled (full-log mode): the WAL
            // keeps all history by request, but the in-memory log still
            // honours the cap — laggards past it get a snapshot transfer.
            None => self.bound_memory(memory_log_cap),
        }
    }

    /// Drops the oldest in-memory log entries once the log has grown well
    /// past the cap (hysteresis keeps the drain amortized-cheap).
    fn bound_memory(&mut self, cap: usize) {
        if self.log.len() > cap + cap / 2 {
            let drop_n = self.log.len() - cap;
            self.log_start_zxid = self.log[drop_n - 1].0;
            self.log.drain(..drop_n);
        }
    }

    /// Adopts a full-state transfer from the leader. The local log resets
    /// to the transfer point; durable replicas persist the state as a
    /// snapshot so a later restart recovers without the leader.
    fn install_snapshot(&mut self, store: ZnodeStore, last_zxid: u64) {
        self.store = store;
        self.last_zxid = last_zxid;
        self.log.clear();
        self.log_start_zxid = last_zxid;
        if let Some(d) = self.durability.as_mut() {
            if d.install_snapshot(last_zxid, &mut self.store).is_err() {
                self.alive = false;
            }
        }
    }
}

/// Counters describing broadcast and durability activity, reported by
/// experiments and the CI stats surfaces.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnsembleStats {
    /// Committed writes.
    pub committed: u64,
    /// Writes rejected for lack of quorum.
    pub no_quorum: u64,
    /// Ensemble-internal leader elections.
    pub elections: u64,
    /// Snapshots written across all replicas (policy and transfers).
    pub snapshots_written: u64,
    /// The subset of `snapshots_written` that were incremental (delta).
    pub delta_snapshots_written: u64,
    /// WAL segment files rotated across all replicas.
    pub segments_rotated: u64,
    /// Bytes covered by completed fsyncs across all replicas.
    pub bytes_fsynced: u64,
    /// fsync calls issued against segment files across all replicas.
    pub fsyncs: u64,
    /// Directory fsyncs (renames, new segments, deletions) across all
    /// replicas.
    pub dir_fsyncs: u64,
    /// Pipelined commit paths that blocked on a full sync window.
    pub pipeline_stalls: u64,
    /// Batches settled by a shared (coalesced) sync round.
    pub pipeline_coalesced: u64,
    /// Replicas recovered from disk (snapshot + log-suffix replay).
    pub recoveries: u64,
    /// Follower resyncs served as a log suffix since `last_zxid`.
    pub suffix_syncs: u64,
    /// Follower resyncs that needed a full snapshot transfer (lagging
    /// beyond the truncation horizon, or diverged).
    pub snapshot_syncs: u64,
    /// Replicas that fail-stopped because their WAL/snapshot I/O failed:
    /// a replica that cannot persist stops acking rather than report
    /// durability it does not have.
    pub wal_fail_stops: u64,
    /// Non-voting observer replicas currently attached.
    pub observers: u64,
    /// Reads served by an observer under a valid lease (off the quorum
    /// path).
    pub observer_reads: u64,
    /// Observer lease renewals granted by a leader holding a quorum to a
    /// caught-up observer.
    pub observer_lease_renewals: u64,
    /// Observer reads rejected because the lease had lapsed — the
    /// staleness bound doing its job.
    pub observer_lease_expiries: u64,
}

/// A quorum-replicated log of store operations.
pub struct Ensemble {
    replicas: Vec<Replica>,
    net: SimNet,
    leader: Option<NodeId>,
    epoch: u64,
    counter: u64,
    stats: EnsembleStats,
    memory_log_cap: usize,
    /// Observer lease duration; renewals extend `lease_until_ms` by this
    /// much past the last observed `now_ms`.
    observer_lease_ms: u64,
    /// Latest caller-reported wall-clock, advanced by
    /// [`Ensemble::tick_observers`]. The ensemble owns no clock of its
    /// own — determinism under simulation requires the time to be fed in.
    now_ms: u64,
    /// Zxid of the most recent committed write. An acking replica whose
    /// `last_zxid` trails this has missed a commit (drop/partition) and is
    /// healed *before* the next op applies, so no replica ever holds a
    /// hole below its own `last_zxid` — the invariant suffix resync relies
    /// on.
    last_committed_zxid: u64,
}

impl Ensemble {
    /// Creates an in-memory ensemble of `n` replicas (odd sizes make
    /// sensible quorums) on a fresh simulated network.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "ensemble needs at least one replica");
        Self::assemble((0..n).map(Replica::new).collect(), seed)
    }

    /// Creates a durable ensemble: each replica persists its log and
    /// snapshots under `data_dir/replica-<id>`. **Formats** those
    /// directories, destroying any prior contents — use
    /// [`Ensemble::recover`] to resume from existing state instead.
    pub fn with_durability(
        n: usize,
        seed: u64,
        data_dir: &StdPath,
        opts: DurabilityOptions,
    ) -> io::Result<Self> {
        assert!(n >= 1, "ensemble needs at least one replica");
        let mut replicas = Vec::with_capacity(n);
        for id in 0..n {
            let dir = data_dir.join(replica_dir_name(id));
            let mut r = Replica::new(id);
            r.durability = Some(Durability::create(&dir, opts.clone())?);
            replicas.push(r);
        }
        Ok(Self::assemble(replicas, seed))
    }

    fn assemble(replicas: Vec<Replica>, seed: u64) -> Self {
        let mut e = Ensemble {
            replicas,
            net: SimNet::new(seed),
            leader: Some(0),
            epoch: 1,
            counter: 0,
            stats: EnsembleStats::default(),
            memory_log_cap: DEFAULT_MEMORY_LOG_CAP,
            observer_lease_ms: DEFAULT_OBSERVER_LEASE_MS,
            now_ms: 0,
            last_committed_zxid: 0,
        };
        e.stats.elections = 1;
        e
    }

    /// Rebuilds an ensemble from `data_dir` after a full shutdown or crash:
    /// every replica loads its latest valid snapshot and silently replays
    /// its write-ahead-log suffix (no watch events fire during replay),
    /// the replica with the highest zxid leads under a fresh epoch, and
    /// laggards catch up from it — by log suffix when possible, by snapshot
    /// transfer when they sit beyond the truncation horizon.
    pub fn recover(
        n: usize,
        seed: u64,
        data_dir: &StdPath,
        opts: DurabilityOptions,
    ) -> io::Result<Self> {
        assert!(n >= 1, "ensemble needs at least one replica");
        let mut replicas = Vec::with_capacity(n);
        let mut recoveries = 0u64;
        for id in 0..n {
            let dir = data_dir.join(replica_dir_name(id));
            let (durability, snapshot, suffix) = Durability::open(&dir, opts.clone())?;
            let (mut store, horizon) = match snapshot {
                Some((zxid, store)) => (store, zxid),
                None => (ZnodeStore::new(), 0),
            };
            let mut last_zxid = horizon;
            for (zxid, op) in &suffix {
                // Replay is silent by construction: events never reach the
                // watch tables, which live a layer above the ensemble.
                let _ = store.apply(*zxid, op);
                last_zxid = *zxid;
            }
            let mut r = Replica::new(id);
            r.store = store;
            r.log = suffix;
            r.log_start_zxid = horizon;
            r.last_zxid = last_zxid;
            r.durability = Some(durability);
            recoveries += 1;
            replicas.push(r);
        }
        let leader = replicas
            .iter()
            .max_by_key(|r| (r.last_zxid, std::cmp::Reverse(r.id)))
            .map(|r| r.id);
        let max_zxid = replicas.iter().map(|r| r.last_zxid).max().unwrap_or(0);
        let mut e = Ensemble {
            replicas,
            net: SimNet::new(seed),
            leader,
            epoch: (max_zxid >> 32) + 1,
            counter: 0,
            stats: EnsembleStats::default(),
            memory_log_cap: DEFAULT_MEMORY_LOG_CAP,
            observer_lease_ms: DEFAULT_OBSERVER_LEASE_MS,
            now_ms: 0,
            last_committed_zxid: max_zxid,
        };
        e.stats.elections = 1;
        e.stats.recoveries = recoveries;
        if let Some(leader) = leader {
            for id in 0..e.replicas.len() {
                e.sync_follower(leader, id);
            }
        }
        Ok(e)
    }

    /// The simulated network, for fault injection.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Number of replicas, observers included.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Number of voting members (observers excluded).
    pub fn voter_count(&self) -> usize {
        self.replicas.iter().filter(|r| !r.observer).count()
    }

    /// Number of attached non-voting observers.
    pub fn observer_count(&self) -> usize {
        self.replicas.len() - self.voter_count()
    }

    /// Quorum size: a strict majority **of the voters** — observers never
    /// count, which is exactly why adding them scales reads without
    /// slowing writes.
    pub fn quorum(&self) -> usize {
        self.voter_count() / 2 + 1
    }

    /// The current leader replica, if one holds a quorum.
    pub fn leader(&self) -> Option<NodeId> {
        self.leader
    }

    /// Broadcast and durability statistics (the latter aggregated across
    /// every replica's [`Durability`] handle).
    pub fn stats(&self) -> EnsembleStats {
        let mut s = self.stats;
        s.observers = self.observer_count() as u64;
        for r in &self.replicas {
            if let Some(d) = &r.durability {
                let ds = d.stats();
                s.snapshots_written += ds.snapshots_written;
                s.delta_snapshots_written += ds.delta_snapshots_written;
                s.segments_rotated += ds.segments_rotated;
                s.bytes_fsynced += ds.bytes_fsynced;
                s.fsyncs += ds.fsyncs;
                s.dir_fsyncs += ds.dir_fsyncs;
                s.pipeline_stalls += ds.pipeline_stalls;
                s.pipeline_coalesced += ds.pipeline_coalesced;
            }
        }
        s
    }

    /// Caps the in-memory op log of non-durable replicas (experiments and
    /// tests exercise truncation-horizon behaviour through this).
    pub fn set_memory_log_cap(&mut self, cap: usize) {
        self.memory_log_cap = cap.max(1);
    }

    /// Sets the modeled per-fsync device latency on every durable replica
    /// (see [`DurabilityOptions::simulated_fsync_latency`]). Benches use
    /// this to populate a store at full speed and then measure commit
    /// policies against a realistic device.
    pub fn set_simulated_fsync_latency(&mut self, latency: std::time::Duration) {
        for r in &mut self.replicas {
            if let Some(d) = r.durability.as_mut() {
                d.set_simulated_fsync_latency(latency);
            }
        }
    }

    /// In-memory log length of replica `id` (bounded-memory assertions).
    pub fn replica_log_len(&self, id: NodeId) -> Option<usize> {
        self.replicas.get(id).map(|r| r.log.len())
    }

    /// Last committed zxid of replica `id`.
    pub fn replica_last_zxid(&self, id: NodeId) -> Option<u64> {
        self.replicas.get(id).map(|r| r.last_zxid)
    }

    /// Crashes a replica: it stops acking and serving until restarted.
    pub fn crash_replica(&mut self, id: NodeId) {
        if let Some(r) = self.replicas.get_mut(id) {
            r.alive = false;
        }
        if self.leader == Some(id) {
            self.elect();
        }
    }

    /// Restarts a crashed replica, which catches up from the leader: the
    /// log suffix since its `last_zxid` when the leader still holds it, a
    /// full snapshot transfer when the follower lags beyond the leader's
    /// truncation horizon.
    pub fn restart_replica(&mut self, id: NodeId) {
        let Some(leader) = self.leader.or_else(|| {
            self.elect();
            self.leader
        }) else {
            return;
        };
        if id >= self.replicas.len() {
            return;
        }
        self.replicas[id].alive = true;
        self.sync_follower(leader, id);
    }

    /// Brings `id` to the leader's state: a no-op when already caught up, a
    /// log-suffix replay when the leader's log still covers the follower's
    /// position, and a full snapshot transfer otherwise.
    fn sync_follower(&mut self, leader: NodeId, id: NodeId) {
        if id == leader || id >= self.replicas.len() {
            return;
        }
        let (leader_last, leader_log_start) = {
            let l = &self.replicas[leader];
            (l.last_zxid, l.log_start_zxid)
        };
        let follower_last = self.replicas[id].last_zxid;
        if follower_last == leader_last {
            return;
        }
        if follower_last >= leader_log_start && follower_last < leader_last {
            let suffix: Vec<(u64, Op)> = self.replicas[leader]
                .log
                .iter()
                .filter(|(zxid, _)| *zxid > follower_last)
                .cloned()
                .collect();
            let cap = self.memory_log_cap;
            let r = &mut self.replicas[id];
            for (zxid, op) in suffix {
                // Per-op failures replay identically on every replica.
                let _ = r.append_and_apply(zxid, &op);
            }
            r.begin_batch_sync();
            r.finish_batch(cap);
            self.stats.suffix_syncs += 1;
        } else {
            let (store, last_zxid) = {
                let l = &self.replicas[leader];
                (l.store.clone(), l.last_zxid)
            };
            self.replicas[id].install_snapshot(store, last_zxid);
            self.stats.snapshot_syncs += 1;
        }
    }

    /// Elects the alive replica with the longest log as leader, bumping the
    /// epoch and syncing reachable followers from it. Called automatically
    /// when the current leader crashes.
    fn elect(&mut self) {
        let new_leader = self
            .replicas
            .iter()
            .filter(|r| r.alive && !r.observer)
            .max_by_key(|r| (r.last_zxid, std::cmp::Reverse(r.id)))
            .map(|r| r.id);
        self.leader = new_leader;
        if let Some(leader) = new_leader {
            self.epoch += 1;
            self.counter = 0;
            self.stats.elections += 1;
            // Followers that can reach the new leader sync to its state.
            for id in 0..self.replicas.len() {
                if id == leader || !self.replicas[id].alive {
                    continue;
                }
                if self.net.deliver(leader, id) {
                    self.sync_follower(leader, id);
                }
            }
        }
    }

    /// Number of alive **voters** the leader can currently reach (itself
    /// included). Observers are invisible here: they neither ack nor vote.
    fn reachable_from_leader(&self, leader: NodeId) -> Vec<NodeId> {
        self.replicas
            .iter()
            .filter(|r| r.alive && !r.observer)
            .filter(|r| r.id == leader || self.net.deliver(leader, r.id))
            .map(|r| r.id)
            .collect()
    }

    /// Submits a write through the broadcast protocol.
    ///
    /// Returns the leader's apply result and the store events the op
    /// produced, or [`CoordError::NoQuorum`] when too few replicas ack (in
    /// which case nothing is applied anywhere).
    pub fn submit(&mut self, op: Op) -> (CoordResult<OpResult>, Vec<StoreEvent>) {
        let Some(leader) = self.leader.filter(|&l| self.replicas[l].alive) else {
            self.elect();
            let Some(_) = self.leader else {
                return (Err(CoordError::Unavailable), Vec::new());
            };
            return self.submit(op);
        };

        // Propose phase: count replicas that receive and ack the proposal.
        let ackers = self.reachable_from_leader(leader);
        if ackers.len() < self.quorum() {
            self.stats.no_quorum += 1;
            return (
                Err(CoordError::NoQuorum {
                    acks: ackers.len(),
                    needed: self.quorum(),
                }),
                Vec::new(),
            );
        }

        // An acking replica that missed earlier commits (a dropped delivery
        // or healed partition advanced `last_committed_zxid` past it) must
        // catch up *before* this op applies — otherwise its `last_zxid`
        // would advance over a hole and suffix resync could never heal it.
        for &id in &ackers {
            if id != leader && self.replicas[id].last_zxid != self.last_committed_zxid {
                self.sync_follower(leader, id);
            }
        }

        // Commit phase: assign the zxid, log + apply on every acking
        // replica, then settle each replica's batch (group fsync, snapshot
        // policy). One submit is one batch — a multi therefore pays one
        // fsync for its whole group of sub-ops.
        self.counter += 1;
        let zxid = (self.epoch << 32) | self.counter;
        let cap = self.memory_log_cap;
        let mut leader_result = None;
        let mut leader_events = Vec::new();
        // Phase one: append + apply on every acker, starting each replica's
        // group fsync (pipelined policy) before moving to the next — the
        // ensemble's fsyncs for this batch run concurrently.
        for &id in &ackers {
            let r = &mut self.replicas[id];
            let (result, events) = r.append_and_apply(zxid, &op);
            r.begin_batch_sync();
            if id == leader {
                leader_result = Some(result);
                leader_events = events;
            }
        }
        // Phase two: settle each replica's batch (wait for its sync window,
        // snapshot per policy). Serial policies do all their work here.
        for &id in &ackers {
            self.replicas[id].finish_batch(cap);
        }
        // Replicas whose durability I/O failed fail-stopped during the
        // phases above; they are counted here (after both loops, so one
        // failure doesn't hide another's) and heal via snapshot transfer
        // after a restart.
        let fail_stopped = ackers
            .iter()
            .filter(|&&id| !self.replicas[id].alive)
            .count() as u64;
        self.stats.wal_fail_stops += fail_stopped;
        self.stats.committed += 1;
        self.last_committed_zxid = zxid;
        // Observers replay the commit stream after the quorum has settled:
        // they never gate the write, and an unreachable observer simply
        // lags until the next tick (its lease, not the writer, pays).
        self.replicate_to_observers(leader);
        (leader_result.expect("leader acked"), leader_events)
    }

    /// Ships the committed stream to every reachable observer and renews
    /// the lease of each one that is fully caught up.
    fn replicate_to_observers(&mut self, leader: NodeId) {
        let observers: Vec<NodeId> = self
            .replicas
            .iter()
            .filter(|r| r.observer && r.alive)
            .map(|r| r.id)
            .collect();
        for id in observers {
            if self.net.deliver(leader, id) {
                self.sync_follower(leader, id);
                self.renew_lease(id);
            }
        }
    }

    /// Extends observer `id`'s lease iff it has replayed everything the
    /// ensemble has committed — a lagging observer keeps its old horizon.
    fn renew_lease(&mut self, id: NodeId) {
        let lease_until = self.now_ms.saturating_add(self.observer_lease_ms);
        let committed = self.last_committed_zxid;
        if let Some(r) = self.replicas.get_mut(id) {
            if r.observer && r.alive && r.last_zxid == committed {
                r.lease_until_ms = lease_until;
                self.stats.observer_lease_renewals += 1;
            }
        }
    }

    /// Reads from the leader's store. Returns an error when no leader holds
    /// a quorum.
    pub fn read<T>(&mut self, f: impl FnOnce(&ZnodeStore) -> T) -> CoordResult<T> {
        let Some(leader) = self.leader.filter(|&l| self.replicas[l].alive) else {
            self.elect();
            let Some(leader) = self.leader else {
                return Err(CoordError::Unavailable);
            };
            return Ok(f(&self.replicas[leader].store));
        };
        if self.reachable_from_leader(leader).len() < self.quorum() {
            return Err(CoordError::NoQuorum {
                acks: 1,
                needed: self.quorum(),
            });
        }
        Ok(f(&self.replicas[leader].store))
    }

    /// Attaches a non-voting observer replica and returns its id. The
    /// observer catches up through the same machinery as a lagging
    /// follower — a log-suffix replay when the leader still holds the
    /// history, a full snapshot transfer otherwise — and is immediately
    /// leased if it reaches the last committed zxid.
    ///
    /// ```
    /// use tropic_coord::ensemble::Ensemble;
    ///
    /// let mut e = Ensemble::new(3, 1);
    /// let obs = e.add_observer();
    /// assert_eq!(e.replica_count(), 4);
    /// assert_eq!(e.voter_count(), 3);
    /// assert_eq!(e.quorum(), 2); // unchanged: observers don't vote
    /// assert!(e.observer_lease_valid(obs));
    /// ```
    pub fn add_observer(&mut self) -> NodeId {
        let id = self.replicas.len();
        let mut r = Replica::new(id);
        r.observer = true;
        self.replicas.push(r);
        let leader = self
            .leader
            .filter(|&l| self.replicas.get(l).is_some_and(|r| r.alive));
        if let Some(leader) = leader {
            if self.net.deliver(leader, id) {
                self.sync_follower(leader, id);
                self.renew_lease(id);
            }
        }
        id
    }

    /// Is replica `id` a non-voting observer?
    pub fn is_observer(&self, id: NodeId) -> bool {
        self.replicas.get(id).is_some_and(|r| r.observer)
    }

    /// Sets the observer lease duration (milliseconds of the clock fed to
    /// [`Ensemble::tick_observers`]).
    pub fn set_observer_lease_ms(&mut self, ms: u64) {
        self.observer_lease_ms = ms.max(1);
    }

    /// Advances the ensemble's notion of time and, while a leader holds a
    /// quorum, catches reachable observers up and renews the lease of each
    /// one that reaches the last committed zxid. Drive this from the
    /// service tick (or a test clock): a leader cut off from its quorum
    /// stops renewing, so observer reads go stale-and-rejected rather than
    /// silently wrong.
    ///
    /// ```
    /// use tropic_coord::ensemble::Ensemble;
    ///
    /// let mut e = Ensemble::new(3, 1);
    /// e.set_observer_lease_ms(100);
    /// let obs = e.add_observer();
    /// e.tick_observers(50); // leader has quorum: lease renewed to 150
    /// assert!(e.observer_lease_valid(obs));
    /// e.crash_replica(1);
    /// e.crash_replica(2); // quorum lost: no more renewals
    /// e.tick_observers(500);
    /// assert!(!e.observer_lease_valid(obs));
    /// ```
    pub fn tick_observers(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
        let Some(leader) = self
            .leader
            .filter(|&l| self.replicas.get(l).is_some_and(|r| r.alive && !r.observer))
        else {
            return;
        };
        if self.reachable_from_leader(leader).len() < self.quorum() {
            return;
        }
        self.replicate_to_observers(leader);
    }

    /// Does observer `id` currently hold a valid lease?
    pub fn observer_lease_valid(&self, id: NodeId) -> bool {
        self.replicas
            .get(id)
            .is_some_and(|r| r.observer && r.alive && r.lease_until_ms > self.now_ms)
    }

    /// Reads from observer `id`'s store **without touching the quorum** —
    /// the scale-out read path. Rejects with [`CoordError::LeaseExpired`]
    /// when the observer's lease has lapsed (it may be arbitrarily stale)
    /// and with [`CoordError::Unavailable`] when `id` is not a live
    /// observer.
    ///
    /// ```
    /// use tropic_coord::ensemble::Ensemble;
    /// use tropic_coord::store::Op;
    /// use bytes::Bytes;
    /// use tropic_model::Path;
    ///
    /// let mut e = Ensemble::new(3, 1);
    /// let obs = e.add_observer();
    /// e.submit(Op::Create {
    ///     path: Path::parse("/a").unwrap(),
    ///     data: Bytes::copy_from_slice(b"d"),
    ///     ephemeral_owner: None,
    ///     sequential: false,
    /// }).0.unwrap();
    /// // The observer replayed the commit and serves it off-quorum.
    /// let seen = e.observer_read(obs, |s| s.exists(&Path::parse("/a").unwrap()));
    /// assert!(seen.unwrap());
    /// ```
    pub fn observer_read<T>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&ZnodeStore) -> T,
    ) -> CoordResult<T> {
        let now_ms = self.now_ms;
        let Some(r) = self.replicas.get(id).filter(|r| r.observer && r.alive) else {
            return Err(CoordError::Unavailable);
        };
        if r.lease_until_ms <= now_ms {
            self.stats.observer_lease_expiries += 1;
            return Err(CoordError::LeaseExpired { observer: id });
        }
        let out = f(&r.store);
        self.stats.observer_reads += 1;
        Ok(out)
    }

    /// Verifies that every alive replica's store matches the leader's.
    /// Used by invariant tests.
    pub fn replicas_consistent(&self) -> bool {
        let Some(leader) = self.leader else {
            return true;
        };
        let reference = &self.replicas[leader];
        self.replicas
            .iter()
            .filter(|r| r.alive && r.last_zxid == reference.last_zxid)
            .all(|r| r.store.node_count() == reference.store.node_count())
    }
}

fn replica_dir_name(id: NodeId) -> String {
    format!("replica-{id}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use bytes::Bytes;
    use tropic_model::Path;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn create_op(path: &str) -> Op {
        Op::Create {
            path: p(path),
            data: Bytes::from_static(b"d"),
            ephemeral_owner: None,
            sequential: false,
        }
    }

    fn quick_opts() -> DurabilityOptions {
        DurabilityOptions {
            sync_policy: crate::wal::SyncPolicy::Periodic { every_ops: 16 },
            snapshot_every_ops: 8,
            snapshot_max_wal_bytes: 0,
            segment_max_bytes: 1 << 16,
            ..DurabilityOptions::default()
        }
    }

    #[test]
    fn writes_replicate_to_all() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        e.submit(create_op("/a/b")).0.unwrap();
        for r in &e.replicas {
            assert_eq!(r.store.node_count(), 3);
            assert_eq!(r.log.len(), 2);
        }
        assert!(e.replicas_consistent());
        assert_eq!(e.stats().committed, 2);
    }

    #[test]
    fn survives_minority_crash() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        e.crash_replica(2);
        e.submit(create_op("/b")).0.unwrap();
        assert_eq!(e.replicas[0].store.node_count(), 3);
        assert_eq!(e.replicas[2].store.node_count(), 2);
        // Restarted replica catches up from the suffix alone.
        e.restart_replica(2);
        assert_eq!(e.replicas[2].store.node_count(), 3);
        assert_eq!(e.stats().suffix_syncs, 1);
        assert_eq!(e.stats().snapshot_syncs, 0);
    }

    #[test]
    fn leader_crash_triggers_election() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        assert_eq!(e.leader(), Some(0));
        e.crash_replica(0);
        assert_ne!(e.leader(), Some(0));
        assert!(e.leader().is_some());
        // Writes continue under the new leader with a higher epoch.
        e.submit(create_op("/b")).0.unwrap();
        let leader = e.leader().unwrap();
        assert!(e.replicas[leader].store.exists(&p("/b")));
        assert!(e.replicas[leader].store.exists(&p("/a")));
        assert!(e.stats().elections >= 2);
    }

    #[test]
    fn majority_crash_blocks_writes() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        e.crash_replica(1);
        e.crash_replica(2);
        let (res, _) = e.submit(create_op("/b"));
        assert!(matches!(res, Err(CoordError::NoQuorum { .. })));
        // Nothing applied.
        assert!(!e.replicas[0].store.exists(&p("/b")));
        // Recovery after restart.
        e.restart_replica(1);
        e.submit(create_op("/b")).0.unwrap();
    }

    #[test]
    fn partition_isolating_leader_blocks_writes() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        e.net().partition(vec![vec![0], vec![1, 2]]);
        let (res, _) = e.submit(create_op("/b"));
        assert!(matches!(res, Err(CoordError::NoQuorum { .. })));
        e.net().heal();
        e.submit(create_op("/b")).0.unwrap();
    }

    #[test]
    fn acking_replica_that_missed_commits_heals_before_applying() {
        // A replica partitioned away while a quorum commits must not ack
        // later writes over the hole: it catches up first, or suffix
        // resync could never repair the divergence.
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        e.net().partition(vec![vec![0, 1], vec![2]]);
        e.submit(create_op("/b")).0.unwrap(); // committed by {0, 1} only
        assert_eq!(e.replicas[2].store.node_count(), 2);
        e.net().heal();
        e.submit(create_op("/c")).0.unwrap(); // replica 2 must pull /b first
        assert_eq!(e.replicas[2].store.node_count(), 4, "/b was skipped");
        assert_eq!(e.replicas[2].last_zxid, e.replicas[0].last_zxid);
        assert!(e.replicas_consistent());
        assert_eq!(e.stats().suffix_syncs, 1);
    }

    #[test]
    fn all_crashed_is_unavailable() {
        let mut e = Ensemble::new(1, 1);
        e.crash_replica(0);
        let (res, _) = e.submit(create_op("/x"));
        assert!(matches!(res, Err(CoordError::Unavailable)));
    }

    #[test]
    fn zxids_monotonic_across_epochs() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        let z1 = e.replicas[0].last_zxid;
        e.crash_replica(0);
        e.submit(create_op("/b")).0.unwrap();
        let leader = e.leader().unwrap();
        let z2 = e.replicas[leader].last_zxid;
        assert!(z2 > z1, "zxid must grow across epochs: {z1} vs {z2}");
    }

    #[test]
    fn read_requires_quorum() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        let exists = e.read(|s| s.exists(&p("/a"))).unwrap();
        assert!(exists);
        e.crash_replica(1);
        e.crash_replica(2);
        assert!(e.read(|s| s.exists(&p("/a"))).is_err());
    }

    #[test]
    fn memory_log_cap_bounds_in_memory_replicas() {
        let mut e = Ensemble::new(1, 1);
        e.set_memory_log_cap(10);
        for i in 0..40 {
            e.submit(create_op(&format!("/n{i}"))).0.unwrap();
        }
        let len = e.replica_log_len(0).unwrap();
        assert!(len <= 15, "log length {len} exceeds cap + hysteresis");
        assert!(e.replicas[0].log_start_zxid > 0);
        // State is intact despite the truncated log.
        assert_eq!(e.read(|s| s.node_count()).unwrap(), 41);
    }

    #[test]
    fn lagging_replica_beyond_horizon_gets_snapshot_transfer() {
        let mut e = Ensemble::new(3, 1);
        e.set_memory_log_cap(4);
        e.submit(create_op("/seed")).0.unwrap();
        e.crash_replica(2);
        for i in 0..20 {
            e.submit(create_op(&format!("/n{i}"))).0.unwrap();
        }
        // The leader's log no longer reaches back to the follower's zxid.
        assert!(e.replicas[0].log_start_zxid > e.replicas[2].last_zxid);
        e.restart_replica(2);
        assert_eq!(e.stats().snapshot_syncs, 1);
        assert_eq!(e.replicas[2].store.node_count(), 22);
        assert_eq!(e.replicas[2].last_zxid, e.replicas[0].last_zxid);
    }

    #[test]
    fn observer_attaches_replays_suffix_and_serves_lease_reads() {
        let mut e = Ensemble::new(3, 1);
        e.submit(create_op("/a")).0.unwrap();
        let obs = e.add_observer();
        // Attach went through the existing suffix machinery.
        assert_eq!(e.stats().suffix_syncs, 1);
        assert_eq!(e.quorum(), 2, "observer must not change the quorum");
        // A write after attach replays onto the observer post-commit, and
        // an off-quorum read through the observer sees it.
        e.submit(create_op("/b")).0.unwrap();
        assert!(e.observer_read(obs, |s| s.exists(&p("/b"))).unwrap());
        assert_eq!(e.replicas[obs].last_zxid, e.replicas[0].last_zxid);
        let s = e.stats();
        assert_eq!(s.observers, 1);
        assert!(s.observer_reads >= 1);
        assert!(s.observer_lease_renewals >= 1);
    }

    #[test]
    fn observer_never_elected_and_never_acks() {
        let mut e = Ensemble::new(3, 1);
        let obs = e.add_observer();
        e.submit(create_op("/a")).0.unwrap();
        // Even with every voter dead the observer must not take over.
        e.crash_replica(0);
        e.crash_replica(1);
        e.crash_replica(2);
        assert_ne!(e.leader(), Some(obs));
        let (res, _) = e.submit(create_op("/b"));
        assert!(matches!(res, Err(CoordError::Unavailable)));
    }

    #[test]
    fn observer_lease_expires_without_quorum_and_recovers_after_heal() {
        let mut e = Ensemble::new(3, 1);
        e.set_observer_lease_ms(100);
        let obs = e.add_observer();
        e.submit(create_op("/a")).0.unwrap();
        e.tick_observers(10);
        assert!(e.observer_read(obs, |s| s.node_count()).is_ok());
        // Quorum gone: leases stop renewing; time passes; reads reject.
        e.crash_replica(1);
        e.crash_replica(2);
        e.tick_observers(500);
        let res = e.observer_read(obs, |s| s.node_count());
        assert!(matches!(
            res,
            Err(CoordError::LeaseExpired { observer }) if observer == obs
        ));
        assert_eq!(e.stats().observer_lease_expiries, 1);
        // Quorum back: the next tick re-leases the observer.
        e.restart_replica(1);
        e.tick_observers(510);
        assert!(e.observer_read(obs, |s| s.exists(&p("/a"))).unwrap());
    }

    #[test]
    fn lagging_observer_attaches_via_snapshot_transfer() {
        let mut e = Ensemble::new(3, 1);
        e.set_memory_log_cap(4);
        for i in 0..20 {
            e.submit(create_op(&format!("/n{i}"))).0.unwrap();
        }
        // The leader's log no longer reaches back to zxid 0, so a fresh
        // observer needs the full-state path.
        let obs = e.add_observer();
        assert_eq!(e.stats().snapshot_syncs, 1);
        assert_eq!(e.observer_read(obs, |s| s.node_count()).unwrap(), 21);
    }

    #[test]
    fn partitioned_observer_lags_then_catches_up_on_tick() {
        let mut e = Ensemble::new(3, 1);
        e.set_observer_lease_ms(1_000);
        let obs = e.add_observer();
        e.net().partition(vec![vec![0, 1, 2], vec![obs]]);
        e.submit(create_op("/a")).0.unwrap(); // commits without the observer
        assert!(!e.replicas[obs].store.exists(&p("/a")));
        e.net().heal();
        e.tick_observers(10);
        assert!(e.observer_read(obs, |s| s.exists(&p("/a"))).unwrap());
    }

    #[test]
    fn durable_ensemble_recovers_after_total_loss() {
        let tmp = TempDir::new("tropic-ens-recover");
        let mut e = Ensemble::with_durability(3, 1, tmp.path(), quick_opts()).unwrap();
        for i in 0..20 {
            e.submit(create_op(&format!("/n{i}"))).0.unwrap();
        }
        let live = e.read(|s| s.clone()).unwrap();
        assert!(e.stats().snapshots_written > 0);
        // Log bounded by snapshot truncation.
        assert!(e.replica_log_len(0).unwrap() <= 8);
        drop(e); // the whole data center powers off
        let mut back = Ensemble::recover(3, 1, tmp.path(), quick_opts()).unwrap();
        assert_eq!(back.stats().recoveries, 3);
        let recovered = back.read(|s| s.clone()).unwrap();
        assert_eq!(recovered, live);
        // And the recovered ensemble keeps committing with higher zxids.
        let before = back.replica_last_zxid(0).unwrap();
        back.submit(create_op("/after")).0.unwrap();
        assert!(back.replica_last_zxid(0).unwrap() > before);
        assert!(back.replicas_consistent());
    }

    #[test]
    fn recover_with_one_stale_replica_dir_syncs_it() {
        let tmp = TempDir::new("tropic-ens-stale");
        let mut e = Ensemble::with_durability(2, 1, tmp.path(), quick_opts()).unwrap();
        for i in 0..12 {
            e.submit(create_op(&format!("/n{i}"))).0.unwrap();
        }
        let live = e.read(|s| s.clone()).unwrap();
        drop(e);
        // Replica 1 loses its disk entirely (fresh node replacing it).
        std::fs::remove_dir_all(tmp.path().join("replica-1")).unwrap();
        let mut back = Ensemble::recover(2, 1, tmp.path(), quick_opts()).unwrap();
        assert_eq!(
            back.stats().snapshot_syncs,
            1,
            "fresh node needs the snapshot"
        );
        assert_eq!(back.read(|s| s.clone()).unwrap(), live);
        assert!(back.replicas_consistent());
    }
}

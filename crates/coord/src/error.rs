//! Error types for the coordination service.

use std::fmt;

use tropic_model::Path;

/// Errors returned by coordination-service operations.
///
/// The variants mirror the ZooKeeper client error codes TROPIC relies on
/// (paper §5): `NoNode`/`NodeExists`/`BadVersion` drive the queue and
/// election recipes, `SessionExpired` drives controller failover, and
/// `NoQuorum` surfaces ensemble unavailability.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordError {
    /// The referenced znode does not exist.
    NoNode(Path),
    /// A znode already exists at the path.
    NodeExists(Path),
    /// The parent of a znode being created does not exist.
    NoParent(Path),
    /// A compare-and-swap failed because the caller's version was stale.
    BadVersion {
        /// Path of the znode.
        path: Path,
        /// Version the caller expected.
        expected: u64,
        /// Version actually stored.
        actual: u64,
    },
    /// The znode still has children and cannot be deleted.
    NotEmpty(Path),
    /// Ephemeral znodes cannot have children (ZooKeeper semantics).
    EphemeralParent(Path),
    /// The client's session has expired; its ephemeral nodes are gone.
    SessionExpired,
    /// Fewer than a quorum of replicas acknowledged the operation.
    NoQuorum {
        /// Acknowledgements received.
        acks: usize,
        /// Quorum size required.
        needed: usize,
    },
    /// The whole ensemble is down.
    Unavailable,
    /// A sub-operation of an atomic batch failed; none of the batch was
    /// applied.
    MultiFailed {
        /// Index of the failing sub-operation within the batch.
        index: usize,
        /// Why that sub-operation failed.
        cause: Box<CoordError>,
    },
    /// Atomic batches cannot contain other batches.
    NestedMulti,
    /// The serving replica could not persist the write (WAL append, fsync,
    /// or snapshot I/O failed). The replica fail-stops rather than ack a
    /// write it cannot make durable.
    Durability(String),
    /// An observer replica's staleness lease lapsed before the read: the
    /// leader has not renewed it (quorum lost, or the observer is lagging),
    /// so serving from the observer could return unboundedly stale data.
    /// Retry against the quorum read path.
    LeaseExpired {
        /// Id of the observer whose lease lapsed.
        observer: usize,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::NoNode(p) => write!(f, "no node at {p}"),
            CoordError::NodeExists(p) => write!(f, "node already exists at {p}"),
            CoordError::NoParent(p) => write!(f, "parent missing for {p}"),
            CoordError::BadVersion {
                path,
                expected,
                actual,
            } => write!(
                f,
                "bad version at {path}: expected {expected}, actual {actual}"
            ),
            CoordError::NotEmpty(p) => write!(f, "node at {p} has children"),
            CoordError::EphemeralParent(p) => {
                write!(f, "ephemeral node at {p} cannot have children")
            }
            CoordError::SessionExpired => write!(f, "session expired"),
            CoordError::NoQuorum { acks, needed } => {
                write!(f, "no quorum: {acks} acks, {needed} needed")
            }
            CoordError::Unavailable => write!(f, "coordination service unavailable"),
            CoordError::MultiFailed { index, cause } => {
                write!(f, "multi op #{index} failed ({cause}); batch not applied")
            }
            CoordError::NestedMulti => write!(f, "multi ops cannot nest"),
            CoordError::Durability(e) => write!(f, "durability failure: {e}"),
            CoordError::LeaseExpired { observer } => {
                write!(f, "observer {observer} lease expired; read from the quorum")
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// Convenience alias for coordination results.
pub type CoordResult<T> = Result<T, CoordError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let p = Path::parse("/tropic/txns").unwrap();
        assert!(CoordError::NoNode(p.clone())
            .to_string()
            .contains("/tropic/txns"));
        assert!(CoordError::BadVersion {
            path: p,
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("expected 1"));
        assert!(CoordError::NoQuorum { acks: 1, needed: 2 }
            .to_string()
            .contains("quorum"));
    }
}

//! Quorum-based leader election recipe (paper §2.3).
//!
//! Each candidate creates an ephemeral-sequential znode under an election
//! base path; the candidate owning the lowest sequence number is the leader.
//! When a leader's session expires, its znode vanishes and the next
//! candidate observes leadership. This is the standard ZooKeeper recipe the
//! paper's controllers use to pick the single active controller.

use std::time::Duration;

use bytes::Bytes;
use tropic_model::Path;

use crate::error::CoordResult;
use crate::service::{CoordClient, CreateMode, WatchKind};

/// A participant in a leader election.
pub struct LeaderElection<'a> {
    client: &'a CoordClient,
    base: Path,
    my_node: Path,
}

impl<'a> LeaderElection<'a> {
    /// Joins the election at `base` as a candidate named `name` (stored as
    /// the znode payload for diagnostics).
    pub fn join(client: &'a CoordClient, base: Path, name: &str) -> CoordResult<Self> {
        client.create_all(&base)?;
        let my_node = client.create(
            &base.join("n-"),
            Bytes::from(name.to_owned()),
            CreateMode::EphemeralSequential,
        )?;
        Ok(LeaderElection {
            client,
            base,
            my_node,
        })
    }

    /// This candidate's election znode.
    pub fn my_node(&self) -> &Path {
        &self.my_node
    }

    /// Returns `true` if this candidate currently owns the lowest sequence
    /// number (i.e. is the leader).
    pub fn is_leader(&self) -> CoordResult<bool> {
        let children = self.client.get_children(&self.base)?;
        let me = self.my_node.leaf().expect("election node has a name");
        Ok(children.iter().min().map(String::as_str) == Some(me))
    }

    /// Name of the current leader candidate (znode payload), if any.
    pub fn leader_name(&self) -> CoordResult<Option<String>> {
        let children = self.client.get_children(&self.base)?;
        let Some(head) = children.into_iter().min() else {
            return Ok(None);
        };
        Ok(self
            .client
            .get_data(&self.base.join(&head))?
            .map(|(data, _)| String::from_utf8_lossy(&data).into_owned()))
    }

    /// Blocks until this candidate becomes leader or `timeout` elapses.
    /// Returns `true` on leadership.
    ///
    /// Rather than herd on the whole children list, each candidate watches
    /// its immediate predecessor znode, per the standard recipe.
    pub fn wait_leadership(&self, timeout: Duration) -> CoordResult<bool> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.is_leader()? {
                return Ok(true);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            // Find my predecessor and watch it.
            let me = self.my_node.leaf().expect("named node").to_owned();
            let mut children = self.client.get_children(&self.base)?;
            children.sort();
            let my_index = children.iter().position(|c| *c == me);
            let predecessor: Option<String> = match my_index {
                Some(i) if i > 0 => Some(children[i - 1].clone()),
                _ => None,
            };
            match predecessor {
                Some(pred) => {
                    let pred_path = self.base.join(&pred);
                    self.client.watch(&pred_path, WatchKind::Node)?;
                    // The predecessor may have vanished between list and
                    // watch; re-check before blocking.
                    if !self.client.exists(&pred_path)? {
                        continue;
                    }
                    let _ = self.client.wait_event(deadline - now);
                }
                // No predecessor: loop re-checks leadership immediately.
                None => continue,
            }
        }
    }

    /// Leaves the election by deleting this candidate's znode.
    pub fn resign(self) -> CoordResult<()> {
        self.client.delete(&self.my_node, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{CoordConfig, CoordService};
    use std::sync::Arc;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn first_joiner_leads() {
        let svc = CoordService::start(CoordConfig::default());
        let c1 = svc.connect("a");
        let c2 = svc.connect("b");
        let e1 = LeaderElection::join(&c1, p("/election"), "a").unwrap();
        let e2 = LeaderElection::join(&c2, p("/election"), "b").unwrap();
        assert!(e1.is_leader().unwrap());
        assert!(!e2.is_leader().unwrap());
        assert_eq!(e1.leader_name().unwrap().unwrap(), "a");
        assert_eq!(e2.leader_name().unwrap().unwrap(), "a");
    }

    #[test]
    fn resignation_promotes_successor() {
        let svc = CoordService::start(CoordConfig::default());
        let c1 = svc.connect("a");
        let c2 = svc.connect("b");
        let e1 = LeaderElection::join(&c1, p("/election"), "a").unwrap();
        let e2 = LeaderElection::join(&c2, p("/election"), "b").unwrap();
        e1.resign().unwrap();
        assert!(e2.is_leader().unwrap());
    }

    #[test]
    fn session_expiry_promotes_successor() {
        let svc = CoordService::start(CoordConfig::default());
        let c1 = svc.connect("a");
        let c2 = svc.connect("b");
        let _e1 = LeaderElection::join(&c1, p("/election"), "a").unwrap();
        let e2 = LeaderElection::join(&c2, p("/election"), "b").unwrap();
        assert!(!e2.is_leader().unwrap());
        svc.expire_session(c1.session_id());
        assert!(e2.is_leader().unwrap());
    }

    #[test]
    fn wait_leadership_unblocks_on_predecessor_death() {
        let svc = Arc::new(CoordService::start(CoordConfig::default()));
        let c1 = svc.connect("a");
        let _e1 = LeaderElection::join(&c1, p("/election"), "a").unwrap();
        let svc2 = Arc::clone(&svc);
        let waiter = std::thread::spawn(move || {
            let c2 = svc2.connect("b");
            let e2 = LeaderElection::join(&c2, p("/election"), "b").unwrap();
            e2.wait_leadership(Duration::from_secs(5)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(100));
        svc.expire_session(c1.session_id());
        assert!(waiter.join().unwrap(), "successor should gain leadership");
    }

    #[test]
    fn wait_leadership_times_out_behind_live_leader() {
        let svc = CoordService::start(CoordConfig::default());
        let c1 = svc.connect("a");
        let c2 = svc.connect("b");
        let _e1 = LeaderElection::join(&c1, p("/election"), "a").unwrap();
        let e2 = LeaderElection::join(&c2, p("/election"), "b").unwrap();
        assert!(!e2.wait_leadership(Duration::from_millis(150)).unwrap());
    }

    #[test]
    fn three_candidates_promote_in_order() {
        let svc = CoordService::start(CoordConfig::default());
        let clients: Vec<_> = (0..3).map(|i| svc.connect(&format!("c{i}"))).collect();
        let elections: Vec<_> = clients
            .iter()
            .enumerate()
            .map(|(i, c)| LeaderElection::join(c, p("/election"), &format!("c{i}")).unwrap())
            .collect();
        assert!(elections[0].is_leader().unwrap());
        svc.expire_session(clients[0].session_id());
        assert!(elections[1].is_leader().unwrap());
        assert!(!elections[2].is_leader().unwrap());
        svc.expire_session(clients[1].session_id());
        assert!(elections[2].is_leader().unwrap());
    }
}

//! Distributed queue recipe over the coordination service.
//!
//! TROPIC decouples its components through two durable queues, `inputQ` and
//! `phyQ` (paper Figure 1). Each queue is a znode whose children are
//! sequentially-numbered persistent items; dequeue claims the lowest item by
//! deleting it, so exactly one consumer wins even with many workers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bytes::Bytes;
use tropic_model::Path;

use crate::error::{CoordError, CoordResult};
use crate::service::{CoordClient, CreateMode, WatchKind};
use crate::store::Op;

/// Name prefix of queue-item znodes. Children of the base without this
/// prefix (e.g. nested sub-queue lanes) are not items and are ignored by
/// every queue operation.
const ITEM_PREFIX: &str = "item-";

/// A durable multi-producer multi-consumer FIFO queue.
///
/// Items are children of the base named `item-<seq>`; other children of
/// the base (such as nested priority-lane queues) coexist untouched.
pub struct DistributedQueue<'a> {
    client: &'a CoordClient,
    base: Path,
}

impl<'a> DistributedQueue<'a> {
    /// Binds a queue rooted at `base`, creating the base znode if needed.
    pub fn new(client: &'a CoordClient, base: Path) -> CoordResult<Self> {
        client.create_all(&base)?;
        Ok(DistributedQueue { client, base })
    }

    /// Binds a queue whose base znode is known to exist already, skipping
    /// the existence probes of [`DistributedQueue::new`]. For hot paths
    /// (the controller re-binds its lanes every scheduling round); callers
    /// must have created the base beforehand or every operation fails
    /// with `NoNode`.
    pub fn bind(client: &'a CoordClient, base: Path) -> Self {
        DistributedQueue { client, base }
    }

    /// The queue's base path.
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// Appends an item, returning the znode path that identifies it.
    pub fn enqueue(&self, data: impl Into<Bytes>) -> CoordResult<Path> {
        self.client.create(
            &self.base.join(ITEM_PREFIX),
            data,
            CreateMode::PersistentSequential,
        )
    }

    /// Appends several items as one atomic batch (one replicated write);
    /// either every item lands, in order, or none does.
    pub fn enqueue_many(
        &self,
        items: impl IntoIterator<Item = impl Into<Bytes>>,
    ) -> CoordResult<()> {
        let ops: Vec<Op> = items.into_iter().map(|d| self.enqueue_op(d)).collect();
        self.client.multi(ops)?;
        Ok(())
    }

    /// The [`Op`] that [`DistributedQueue::enqueue`] would submit, for
    /// inclusion in a caller-assembled atomic batch.
    pub fn enqueue_op(&self, data: impl Into<Bytes>) -> Op {
        Op::Create {
            path: self.base.join(ITEM_PREFIX),
            data: data.into(),
            ephemeral_owner: None,
            sequential: true,
        }
    }

    /// The [`Op`] that removes the named item, for inclusion in a
    /// caller-assembled atomic batch. Unlike [`DistributedQueue::remove`],
    /// a missing item fails the whole batch — callers batch removals only
    /// for items they exclusively own (the leader's peeked inputs).
    pub fn remove_op(&self, name: &str) -> Op {
        Op::Delete {
            path: self.base.join(name),
            expected_version: None,
        }
    }

    /// Path of the item znode with the given name.
    pub fn item_path(&self, name: &str) -> Path {
        self.base.join(name)
    }

    /// Names of all queued items in FIFO (lexicographic) order.
    /// Non-item children of the base znode are excluded.
    pub fn item_names(&self) -> CoordResult<Vec<String>> {
        let mut names = self.client.get_children(&self.base)?;
        names.retain(|n| n.starts_with(ITEM_PREFIX));
        Ok(names)
    }

    /// Reads one item's payload by name, or `None` when already claimed.
    pub fn get(&self, name: &str) -> CoordResult<Option<Bytes>> {
        Ok(self
            .client
            .get_data(&self.base.join(name))?
            .map(|(data, _)| data))
    }

    /// Claims up to `max` items from the head of the queue in one atomic
    /// batch (a multi of deletes), preserving FIFO order. When a competing
    /// consumer steals any candidate between the read and the claim, the
    /// whole claim fails benignly and is retried against the new head.
    /// Returns an empty vector when the queue is empty.
    pub fn try_dequeue_batch(&self, max: usize) -> CoordResult<Vec<(String, Bytes)>> {
        if max == 0 {
            return Ok(Vec::new());
        }
        loop {
            let names = self.item_names()?;
            let mut claim: Vec<(String, Bytes)> = Vec::new();
            for name in names.into_iter().take(max) {
                match self.client.get_data(&self.base.join(&name))? {
                    Some((data, _)) => claim.push((name, data)),
                    // Claimed by a competitor between list and read.
                    None => continue,
                }
            }
            if claim.is_empty() {
                return Ok(Vec::new());
            }
            let deletes: Vec<Op> = claim.iter().map(|(name, _)| self.remove_op(name)).collect();
            match self.client.multi(deletes) {
                Ok(_) => return Ok(claim),
                // Lost a race for at least one item: nothing was claimed
                // (the batch is atomic); retry from the fresh head.
                Err(CoordError::MultiFailed { cause, .. })
                    if matches!(*cause, CoordError::NoNode(_)) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocks until the queue is likely non-empty, `timeout` passes, or
    /// `stop` becomes true — without claiming anything. Arms one children
    /// watch and then waits on the client's event channel in short slices,
    /// so idling costs no store writes and a shutdown flag interrupts the
    /// wait within one slice regardless of how long `timeout` is.
    pub fn await_items(&self, timeout: Duration, stop: &AtomicBool) -> CoordResult<()> {
        if self.len()? > 0 {
            return Ok(());
        }
        let deadline = std::time::Instant::now() + timeout;
        self.client.watch(&self.base, WatchKind::Children)?;
        // Re-check after registering the watch: an item may have landed in
        // between, in which case the watch may never fire for it.
        if self.len()? > 0 {
            return Ok(());
        }
        while !stop.load(Ordering::SeqCst) {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(());
            }
            let slice = (deadline - now).min(Duration::from_millis(25));
            if self.client.wait_event(slice).is_some() {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Blocks until *any* of `queues` is likely non-empty, `timeout`
    /// passes, or `stop` becomes true — the multi-lane variant of
    /// [`DistributedQueue::await_items`]. Arms one children watch per
    /// queue, then waits on the shared event channel; all queues must be
    /// bound to the same client session.
    pub fn await_any(
        queues: &[&DistributedQueue<'_>],
        timeout: Duration,
        stop: &AtomicBool,
    ) -> CoordResult<()> {
        let Some(first) = queues.first() else {
            return Ok(());
        };
        for q in queues {
            if q.len()? > 0 {
                return Ok(());
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        for q in queues {
            q.client.watch(&q.base, WatchKind::Children)?;
        }
        // Re-check after arming the watches to close the landing race.
        for q in queues {
            if q.len()? > 0 {
                return Ok(());
            }
        }
        while !stop.load(Ordering::SeqCst) {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(());
            }
            let slice = (deadline - now).min(Duration::from_millis(25));
            if first.client.wait_event(slice).is_some() {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Number of queued items.
    pub fn len(&self) -> CoordResult<usize> {
        Ok(self.item_names()?.len())
    }

    /// Returns `true` if the queue has no items.
    pub fn is_empty(&self) -> CoordResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Attempts to claim the head item. Returns `None` when the queue is
    /// empty. When several consumers race, the delete succeeds for exactly
    /// one; losers silently move on to the next item.
    pub fn try_dequeue(&self) -> CoordResult<Option<(String, Bytes)>> {
        loop {
            let Some(head) = self.item_names()?.into_iter().min() else {
                return Ok(None);
            };
            let item_path = self.base.join(&head);
            let Some((data, _)) = self.client.get_data(&item_path)? else {
                // Claimed by a competitor between list and read; try again.
                continue;
            };
            match self.client.delete(&item_path, None) {
                Ok(()) => return Ok(Some((head, data))),
                Err(CoordError::NoNode(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocks up to `timeout` for an item, using a children watch to avoid
    /// busy-polling.
    pub fn dequeue_timeout(&self, timeout: Duration) -> CoordResult<Option<(String, Bytes)>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(item) = self.try_dequeue()? {
                return Ok(Some(item));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.client.watch(&self.base, WatchKind::Children)?;
            // Re-check after registering the watch: an item may have landed
            // in between, in which case the watch may never fire for it.
            if let Some(item) = self.try_dequeue()? {
                return Ok(Some(item));
            }
            let _ = self.client.wait_event(deadline - now);
        }
    }

    /// Removes a specific item by name. Used by peek-process-remove
    /// consumers (the controller), where the side effects of processing are
    /// persisted *before* the item disappears, making a crash in between
    /// recoverable (the successor re-reads the item and skips idempotently).
    pub fn remove(&self, name: &str) -> CoordResult<()> {
        match self.client.delete(&self.base.join(name), None) {
            Ok(()) | Err(CoordError::NoNode(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Reads the head item without claiming it.
    pub fn peek(&self) -> CoordResult<Option<(String, Bytes)>> {
        let Some(head) = self.item_names()?.into_iter().min() else {
            return Ok(None);
        };
        let item_path = self.base.join(&head);
        Ok(self
            .client
            .get_data(&item_path)?
            .map(|(data, _)| (head, data)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{CoordConfig, CoordService};
    use std::sync::Arc;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn svc() -> CoordService {
        CoordService::start(CoordConfig::default())
    }

    #[test]
    fn fifo_order() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/inputQ")).unwrap();
        assert!(q.is_empty().unwrap());
        q.enqueue(Bytes::from_static(b"a")).unwrap();
        q.enqueue(Bytes::from_static(b"b")).unwrap();
        q.enqueue(Bytes::from_static(b"c")).unwrap();
        assert_eq!(q.len().unwrap(), 3);
        let (_, d1) = q.try_dequeue().unwrap().unwrap();
        let (_, d2) = q.try_dequeue().unwrap().unwrap();
        let (_, d3) = q.try_dequeue().unwrap().unwrap();
        assert_eq!(
            (&d1[..], &d2[..], &d3[..]),
            (&b"a"[..], &b"b"[..], &b"c"[..])
        );
        assert!(q.try_dequeue().unwrap().is_none());
    }

    #[test]
    fn peek_does_not_consume() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        q.enqueue(Bytes::from_static(b"x")).unwrap();
        assert_eq!(&q.peek().unwrap().unwrap().1[..], b"x");
        assert_eq!(q.len().unwrap(), 1);
    }

    #[test]
    fn concurrent_consumers_claim_each_item_once() {
        let svc = Arc::new(svc());
        let producer = svc.connect("p");
        let q = DistributedQueue::new(&producer, p("/phyQ")).unwrap();
        const N: usize = 200;
        for i in 0..N {
            q.enqueue(Bytes::from(format!("{i}"))).unwrap();
        }
        let mut handles = Vec::new();
        for w in 0..4 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let client = svc.connect(&format!("w{w}"));
                let q = DistributedQueue::new(&client, p("/phyQ")).unwrap();
                let mut claimed = Vec::new();
                while let Some((_, data)) = q.try_dequeue().unwrap() {
                    claimed.push(String::from_utf8(data.to_vec()).unwrap());
                }
                claimed
            }));
        }
        let mut all: Vec<String> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|s| s.parse::<usize>().unwrap());
        assert_eq!(all.len(), N, "each item claimed exactly once");
        for (i, item) in all.iter().enumerate() {
            assert_eq!(item, &format!("{i}"));
        }
    }

    #[test]
    fn dequeue_timeout_waits_for_producer() {
        let svc = Arc::new(svc());
        let svc2 = Arc::clone(&svc);
        let consumer = std::thread::spawn(move || {
            let c = svc2.connect("consumer");
            let q = DistributedQueue::new(&c, p("/q")).unwrap();
            q.dequeue_timeout(Duration::from_secs(5)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(100));
        let c = svc.connect("producer");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        q.enqueue(Bytes::from_static(b"late")).unwrap();
        let got = consumer.join().unwrap().unwrap();
        assert_eq!(&got.1[..], b"late");
    }

    #[test]
    fn dequeue_timeout_times_out() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        let start = std::time::Instant::now();
        assert!(q
            .dequeue_timeout(Duration::from_millis(100))
            .unwrap()
            .is_none());
        assert!(start.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn enqueue_many_is_fifo_and_atomic() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        let writes_before = svc.stats().writes;
        q.enqueue_many([&b"a"[..], &b"b"[..], &b"c"[..]]).unwrap();
        assert_eq!(
            svc.stats().writes,
            writes_before + 1,
            "batch enqueue is one write"
        );
        let items = q.try_dequeue_batch(10).unwrap();
        let datas: Vec<&[u8]> = items.iter().map(|(_, d)| &d[..]).collect();
        assert_eq!(datas, vec![&b"a"[..], &b"b"[..], &b"c"[..]]);
        assert!(q.is_empty().unwrap());
    }

    #[test]
    fn dequeue_batch_respects_max_and_order() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        for i in 0..5 {
            q.enqueue(Bytes::from(format!("{i}"))).unwrap();
        }
        let first = q.try_dequeue_batch(2).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(&first[0].1[..], b"0");
        assert_eq!(&first[1].1[..], b"1");
        assert_eq!(q.len().unwrap(), 3);
        assert!(q.try_dequeue_batch(0).unwrap().is_empty());
        assert_eq!(q.len().unwrap(), 3);
    }

    #[test]
    fn concurrent_batch_consumers_claim_each_item_once() {
        let svc = Arc::new(svc());
        let producer = svc.connect("p");
        let q = DistributedQueue::new(&producer, p("/phyQ")).unwrap();
        const N: usize = 120;
        for i in 0..N {
            q.enqueue(Bytes::from(format!("{i}"))).unwrap();
        }
        let mut handles = Vec::new();
        for w in 0..4 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let client = svc.connect(&format!("w{w}"));
                let q = DistributedQueue::new(&client, p("/phyQ")).unwrap();
                let mut claimed = Vec::new();
                loop {
                    let batch = q.try_dequeue_batch(3).unwrap();
                    if batch.is_empty() {
                        break;
                    }
                    claimed.extend(
                        batch
                            .into_iter()
                            .map(|(_, d)| String::from_utf8(d.to_vec()).unwrap()),
                    );
                }
                claimed
            }));
        }
        let mut all: Vec<String> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|s| s.parse::<usize>().unwrap());
        assert_eq!(all.len(), N, "each item claimed exactly once");
        for (i, item) in all.iter().enumerate() {
            assert_eq!(item, &format!("{i}"));
        }
    }

    #[test]
    fn nested_lane_znodes_are_not_items() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/inputQ")).unwrap();
        c.create_all(&p("/inputQ/hi")).unwrap();
        c.create_all(&p("/inputQ/batch")).unwrap();
        assert!(q.is_empty().unwrap(), "lane znodes are not queue items");
        q.enqueue(Bytes::from_static(b"x")).unwrap();
        assert_eq!(q.len().unwrap(), 1);
        let (_, d) = q.try_dequeue().unwrap().unwrap();
        assert_eq!(&d[..], b"x");
        assert!(
            q.try_dequeue().unwrap().is_none(),
            "lane znodes must never be dequeued"
        );
        q.enqueue(Bytes::from_static(b"y")).unwrap();
        let batch = q.try_dequeue_batch(10).unwrap();
        assert_eq!(batch.len(), 1, "batch claim ignores lane znodes");
        assert!(svc.connect("check").exists(&p("/inputQ/hi")).unwrap());
    }

    #[test]
    fn await_any_wakes_on_any_lane() {
        let svc = Arc::new(svc());
        let svc2 = Arc::clone(&svc);
        let waiter = std::thread::spawn(move || {
            let c = svc2.connect("waiter");
            let hi = DistributedQueue::new(&c, p("/q/hi")).unwrap();
            let lo = DistributedQueue::new(&c, p("/q/lo")).unwrap();
            let stop = AtomicBool::new(false);
            let t0 = std::time::Instant::now();
            DistributedQueue::await_any(&[&hi, &lo], Duration::from_secs(10), &stop).unwrap();
            (t0.elapsed(), lo.len().unwrap())
        });
        std::thread::sleep(Duration::from_millis(100));
        let c = svc.connect("producer");
        let lo = DistributedQueue::new(&c, p("/q/lo")).unwrap();
        lo.enqueue(Bytes::from_static(b"late")).unwrap();
        let (elapsed, lo_len) = waiter.join().unwrap();
        assert!(elapsed < Duration::from_secs(9), "woke before the timeout");
        assert_eq!(lo_len, 1);
    }

    #[test]
    fn queue_survives_replica_crash() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        q.enqueue(Bytes::from_static(b"durable")).unwrap();
        svc.crash_replica(0);
        let (_, data) = q.try_dequeue().unwrap().unwrap();
        assert_eq!(&data[..], b"durable");
    }
}

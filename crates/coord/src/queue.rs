//! Distributed queue recipe over the coordination service.
//!
//! TROPIC decouples its components through two durable queues, `inputQ` and
//! `phyQ` (paper Figure 1). Each queue is a znode whose children are
//! sequentially-numbered persistent items; dequeue claims the lowest item by
//! deleting it, so exactly one consumer wins even with many workers.

use std::time::Duration;

use bytes::Bytes;
use tropic_model::Path;

use crate::error::{CoordError, CoordResult};
use crate::service::{CoordClient, CreateMode, WatchKind};

/// A durable multi-producer multi-consumer FIFO queue.
pub struct DistributedQueue<'a> {
    client: &'a CoordClient,
    base: Path,
}

impl<'a> DistributedQueue<'a> {
    /// Binds a queue rooted at `base`, creating the base znode if needed.
    pub fn new(client: &'a CoordClient, base: Path) -> CoordResult<Self> {
        client.create_all(&base)?;
        Ok(DistributedQueue { client, base })
    }

    /// The queue's base path.
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// Appends an item, returning the znode path that identifies it.
    pub fn enqueue(&self, data: impl Into<Bytes>) -> CoordResult<Path> {
        self.client.create(
            &self.base.join("item-"),
            data,
            CreateMode::PersistentSequential,
        )
    }

    /// Number of queued items.
    pub fn len(&self) -> CoordResult<usize> {
        Ok(self.client.get_children(&self.base)?.len())
    }

    /// Returns `true` if the queue has no items.
    pub fn is_empty(&self) -> CoordResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Attempts to claim the head item. Returns `None` when the queue is
    /// empty. When several consumers race, the delete succeeds for exactly
    /// one; losers silently move on to the next item.
    pub fn try_dequeue(&self) -> CoordResult<Option<(String, Bytes)>> {
        loop {
            let children = self.client.get_children(&self.base)?;
            let Some(head) = children.into_iter().min() else {
                return Ok(None);
            };
            let item_path = self.base.join(&head);
            let Some((data, _)) = self.client.get_data(&item_path)? else {
                // Claimed by a competitor between list and read; try again.
                continue;
            };
            match self.client.delete(&item_path, None) {
                Ok(()) => return Ok(Some((head, data))),
                Err(CoordError::NoNode(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocks up to `timeout` for an item, using a children watch to avoid
    /// busy-polling.
    pub fn dequeue_timeout(&self, timeout: Duration) -> CoordResult<Option<(String, Bytes)>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(item) = self.try_dequeue()? {
                return Ok(Some(item));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.client.watch(&self.base, WatchKind::Children)?;
            // Re-check after registering the watch: an item may have landed
            // in between, in which case the watch may never fire for it.
            if let Some(item) = self.try_dequeue()? {
                return Ok(Some(item));
            }
            let _ = self.client.wait_event(deadline - now);
        }
    }

    /// Removes a specific item by name. Used by peek-process-remove
    /// consumers (the controller), where the side effects of processing are
    /// persisted *before* the item disappears, making a crash in between
    /// recoverable (the successor re-reads the item and skips idempotently).
    pub fn remove(&self, name: &str) -> CoordResult<()> {
        match self.client.delete(&self.base.join(name), None) {
            Ok(()) | Err(CoordError::NoNode(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Reads the head item without claiming it.
    pub fn peek(&self) -> CoordResult<Option<(String, Bytes)>> {
        let children = self.client.get_children(&self.base)?;
        let Some(head) = children.into_iter().min() else {
            return Ok(None);
        };
        let item_path = self.base.join(&head);
        Ok(self
            .client
            .get_data(&item_path)?
            .map(|(data, _)| (head, data)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{CoordConfig, CoordService};
    use std::sync::Arc;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn svc() -> CoordService {
        CoordService::start(CoordConfig::default())
    }

    #[test]
    fn fifo_order() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/inputQ")).unwrap();
        assert!(q.is_empty().unwrap());
        q.enqueue(Bytes::from_static(b"a")).unwrap();
        q.enqueue(Bytes::from_static(b"b")).unwrap();
        q.enqueue(Bytes::from_static(b"c")).unwrap();
        assert_eq!(q.len().unwrap(), 3);
        let (_, d1) = q.try_dequeue().unwrap().unwrap();
        let (_, d2) = q.try_dequeue().unwrap().unwrap();
        let (_, d3) = q.try_dequeue().unwrap().unwrap();
        assert_eq!(
            (&d1[..], &d2[..], &d3[..]),
            (&b"a"[..], &b"b"[..], &b"c"[..])
        );
        assert!(q.try_dequeue().unwrap().is_none());
    }

    #[test]
    fn peek_does_not_consume() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        q.enqueue(Bytes::from_static(b"x")).unwrap();
        assert_eq!(&q.peek().unwrap().unwrap().1[..], b"x");
        assert_eq!(q.len().unwrap(), 1);
    }

    #[test]
    fn concurrent_consumers_claim_each_item_once() {
        let svc = Arc::new(svc());
        let producer = svc.connect("p");
        let q = DistributedQueue::new(&producer, p("/phyQ")).unwrap();
        const N: usize = 200;
        for i in 0..N {
            q.enqueue(Bytes::from(format!("{i}"))).unwrap();
        }
        let mut handles = Vec::new();
        for w in 0..4 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let client = svc.connect(&format!("w{w}"));
                let q = DistributedQueue::new(&client, p("/phyQ")).unwrap();
                let mut claimed = Vec::new();
                while let Some((_, data)) = q.try_dequeue().unwrap() {
                    claimed.push(String::from_utf8(data.to_vec()).unwrap());
                }
                claimed
            }));
        }
        let mut all: Vec<String> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|s| s.parse::<usize>().unwrap());
        assert_eq!(all.len(), N, "each item claimed exactly once");
        for (i, item) in all.iter().enumerate() {
            assert_eq!(item, &format!("{i}"));
        }
    }

    #[test]
    fn dequeue_timeout_waits_for_producer() {
        let svc = Arc::new(svc());
        let svc2 = Arc::clone(&svc);
        let consumer = std::thread::spawn(move || {
            let c = svc2.connect("consumer");
            let q = DistributedQueue::new(&c, p("/q")).unwrap();
            q.dequeue_timeout(Duration::from_secs(5)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(100));
        let c = svc.connect("producer");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        q.enqueue(Bytes::from_static(b"late")).unwrap();
        let got = consumer.join().unwrap().unwrap();
        assert_eq!(&got.1[..], b"late");
    }

    #[test]
    fn dequeue_timeout_times_out() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        let start = std::time::Instant::now();
        assert!(q
            .dequeue_timeout(Duration::from_millis(100))
            .unwrap()
            .is_none());
        assert!(start.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn queue_survives_replica_crash() {
        let svc = svc();
        let c = svc.connect("q");
        let q = DistributedQueue::new(&c, p("/q")).unwrap();
        q.enqueue(Bytes::from_static(b"durable")).unwrap();
        svc.crash_replica(0);
        let (_, data) = q.try_dequeue().unwrap().unwrap();
        assert_eq!(&data[..], b"durable");
    }
}

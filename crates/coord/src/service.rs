//! The coordination service façade: sessions, watches, and client handles.
//!
//! [`CoordService`] wraps an [`Ensemble`] with the ZooKeeper-style session
//! machinery TROPIC depends on (paper §2.3): clients hold sessions kept
//! alive by heartbeats; when a session expires, its ephemeral znodes are
//! purged — which is exactly what lets the surviving controllers detect a
//! failed leader. Watches are one-shot notifications, as in ZooKeeper.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use tropic_model::{real_clock, Path, SharedClock};

use crate::ensemble::{Ensemble, EnsembleStats};
use crate::error::{CoordError, CoordResult};
use crate::store::{Op, OpResult, Stat, StoreEvent};
use crate::wal::DurabilityOptions;

/// Configuration of a coordination service instance.
#[derive(Clone, Debug)]
pub struct CoordConfig {
    /// Number of ensemble replicas (the paper deploys 3).
    pub replicas: usize,
    /// Session timeout: a client silent for this long is declared dead and
    /// its ephemeral znodes are purged. This dominates controller failover
    /// time (paper §6.4).
    pub session_timeout_ms: u64,
    /// Expiry-check period.
    pub tick_ms: u64,
    /// Simulated I/O latency added to every write while the ensemble lock is
    /// held. Models the ZooKeeper logging cost the paper identifies as the
    /// dominant overhead (§6.1); writes serialize behind it, bounding global
    /// write throughput at roughly `1 / write_latency`.
    pub write_latency: Duration,
    /// Seed for fault-injection randomness.
    pub seed: u64,
    /// On-disk durability root. `None` keeps the ensemble in memory; with a
    /// directory, every replica write-ahead-logs and snapshots under
    /// `<data_dir>/replica-<id>`, and [`CoordService::recover`] can rebuild
    /// the whole store after a total shutdown. [`CoordService::start`]
    /// *formats* the directory.
    pub data_dir: Option<PathBuf>,
    /// Per-replica durability tuning (sync policy, snapshot triggers,
    /// segment size); only meaningful with a `data_dir`. Disabling both
    /// snapshot triggers keeps every record on disk — full-log mode, for
    /// benchmarks — though the in-memory replica logs stay capped
    /// regardless.
    pub durability: DurabilityOptions,
    /// Number of non-voting observer replicas attached at boot (see
    /// [`Ensemble::add_observer`]). Observers replay the commit stream and
    /// serve lease-bounded reads off the quorum path; they never slow
    /// writes. More can be attached at runtime with
    /// [`CoordService::attach_observer`].
    pub observers: usize,
    /// Observer staleness lease. The expiry tick renews leases of caught-up
    /// observers while the leader holds a quorum; an observer whose lease
    /// lapses rejects reads with [`CoordError::LeaseExpired`].
    pub observer_lease_ms: u64,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            replicas: 3,
            session_timeout_ms: 2_000,
            tick_ms: 50,
            write_latency: Duration::ZERO,
            seed: 0,
            data_dir: None,
            durability: DurabilityOptions::default(),
            observers: 0,
            observer_lease_ms: crate::ensemble::DEFAULT_OBSERVER_LEASE_MS,
        }
    }
}

/// Kinds of one-shot watches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchKind {
    /// Fires on creation, deletion, or data change of the node itself.
    Node,
    /// Fires when the node's set of children changes.
    Children,
}

/// A fired watch delivered to a client's event channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchEvent {
    /// The store event that fired the watch.
    pub event: StoreEvent,
}

#[derive(Debug)]
struct Session {
    #[allow(dead_code)]
    name: String,
    last_seen_ms: u64,
    expired: bool,
}

#[derive(Default)]
struct WatchTable {
    node: HashMap<Path, Vec<u64>>,
    children: HashMap<Path, Vec<u64>>,
}

/// Operation counters for the experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Write operations submitted (a multi batch counts once).
    pub writes: u64,
    /// Read operations served.
    pub reads: u64,
    /// Watch events delivered.
    pub watch_events: u64,
    /// Sessions expired.
    pub expired_sessions: u64,
    /// Atomic multi batches submitted.
    pub multis: u64,
    /// Sub-operations carried inside multi batches.
    pub batched_ops: u64,
    /// Orphaned ephemeral-owner sessions purged during
    /// [`CoordService::recover`] (their clients did not survive the
    /// restart, so nothing else would ever expire them).
    pub recovery_purged_sessions: u64,
}

pub(crate) struct ServiceInner {
    ensemble: Mutex<Ensemble>,
    sessions: Mutex<HashMap<u64, Session>>,
    watches: Mutex<WatchTable>,
    client_txs: Mutex<HashMap<u64, Sender<WatchEvent>>>,
    clock: SharedClock,
    config: CoordConfig,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    stats: Mutex<ServiceStats>,
}

impl ServiceInner {
    fn dispatch_events(&self, events: &[StoreEvent]) {
        if events.is_empty() {
            return;
        }
        let mut watches = self.watches.lock();
        let client_txs = self.client_txs.lock();
        let mut fired = 0u64;
        for event in events {
            let targets: Vec<u64> = match event {
                StoreEvent::Created(p) | StoreEvent::Deleted(p) | StoreEvent::DataChanged(p) => {
                    watches.node.remove(p).unwrap_or_default()
                }
                StoreEvent::ChildrenChanged(p) => watches.children.remove(p).unwrap_or_default(),
            };
            for client in targets {
                if let Some(tx) = client_txs.get(&client) {
                    let _ = tx.send(WatchEvent {
                        event: event.clone(),
                    });
                    fired += 1;
                }
            }
        }
        drop(client_txs);
        drop(watches);
        self.stats.lock().watch_events += fired;
    }

    fn check_session(&self, session: u64) -> CoordResult<()> {
        let mut sessions = self.sessions.lock();
        match sessions.get_mut(&session) {
            Some(s) if !s.expired => {
                s.last_seen_ms = self.clock.now_ms();
                Ok(())
            }
            _ => Err(CoordError::SessionExpired),
        }
    }

    fn submit(&self, session: u64, op: Op) -> CoordResult<OpResult> {
        self.check_session(session)?;
        {
            let mut stats = self.stats.lock();
            stats.writes += 1;
            if let Op::Multi { ops } = &op {
                stats.multis += 1;
                stats.batched_ops += ops.len() as u64;
            }
        }
        let (result, events) = {
            let mut ensemble = self.ensemble.lock();
            // The latency sleep sits inside the ensemble lock on purpose:
            // ZooKeeper serializes writes through its leader's log, so the
            // simulated I/O cost must bound *global* write throughput.
            if !self.config.write_latency.is_zero() {
                // analyze:allow(blocking-under-lock): models the leader's serialized log I/O; see comment above
                self.clock.sleep(self.config.write_latency);
            }
            ensemble.submit(op)
        };
        self.dispatch_events(&events);
        result
    }

    fn expire_session_locked(&self, session: u64) {
        {
            let mut sessions = self.sessions.lock();
            match sessions.get_mut(&session) {
                Some(s) if !s.expired => s.expired = true,
                _ => return,
            }
        }
        self.stats.lock().expired_sessions += 1;
        let (result, events) = {
            let mut ensemble = self.ensemble.lock();
            ensemble.submit(Op::PurgeSession { session })
        };
        // Purge is best-effort when the ensemble lacks quorum; the paths
        // remain until quorum returns (the next successful write or restart
        // re-runs no purge, matching ZooKeeper, where the purge is part of
        // the leader log and simply waits for quorum).
        if result.is_ok() {
            self.dispatch_events(&events);
        }
    }
}

/// A highly-available coordination service backed by a replica ensemble.
///
/// Dropping the service stops its expiry thread.
pub struct CoordService {
    inner: Arc<ServiceInner>,
    expiry_thread: Option<JoinHandle<()>>,
}

impl CoordService {
    /// Starts a service with the given configuration on the real clock.
    /// With [`CoordConfig::data_dir`] set, this **formats** the directory
    /// for a fresh deployment; use [`CoordService::recover`] to resume.
    pub fn start(config: CoordConfig) -> Self {
        Self::start_with_clock(config, real_clock())
    }

    /// Recovers a durable service from [`CoordConfig::data_dir`] on the
    /// real clock: every replica reloads its latest snapshot plus its
    /// write-ahead-log suffix, and ephemeral znodes whose owning sessions
    /// did not survive the restart are purged.
    pub fn recover(config: CoordConfig) -> Self {
        Self::recover_with_clock(config, real_clock())
    }

    /// Starts a service reading time from `clock` (tests use a manual clock).
    pub fn start_with_clock(config: CoordConfig, clock: SharedClock) -> Self {
        Self::boot_with_clock(config, clock, false)
    }

    /// [`CoordService::recover`] with an explicit clock.
    pub fn recover_with_clock(config: CoordConfig, clock: SharedClock) -> Self {
        Self::boot_with_clock(config, clock, true)
    }

    fn build_ensemble(config: &CoordConfig, recover: bool) -> Ensemble {
        match &config.data_dir {
            None => Ensemble::new(config.replicas, config.seed),
            Some(dir) => {
                let opts = config.durability.clone();
                if recover {
                    Ensemble::recover(config.replicas, config.seed, dir, opts)
                        .expect("recover coordination state from data_dir")
                } else {
                    Ensemble::with_durability(config.replicas, config.seed, dir, opts)
                        .expect("initialize durable coordination state in data_dir")
                }
            }
        }
    }

    fn boot_with_clock(config: CoordConfig, clock: SharedClock, recover: bool) -> Self {
        let mut ensemble = Self::build_ensemble(&config, recover);
        ensemble.set_observer_lease_ms(config.observer_lease_ms);
        for _ in 0..config.observers {
            ensemble.add_observer();
        }
        ensemble.tick_observers(clock.now_ms());
        let inner = Arc::new(ServiceInner {
            ensemble: Mutex::new(ensemble),
            sessions: Mutex::new(HashMap::new()),
            watches: Mutex::new(WatchTable::default()),
            client_txs: Mutex::new(HashMap::new()),
            clock,
            config,
            next_session: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(ServiceStats::default()),
        });
        if recover {
            // Sessions do not survive a restart, but their ephemeral znodes
            // (election candidacies, worker claims) do — and with the owning
            // clients gone, no heartbeat would ever stop and expire them.
            // Purge them now so the recovered platform elects cleanly. The
            // purges replicate (and WAL) like any other write.
            let mut ensemble = inner.ensemble.lock();
            let orphans = ensemble
                .read(|s| s.ephemeral_sessions())
                .unwrap_or_default();
            if !orphans.is_empty() {
                let count = orphans.len() as u64;
                let ops = orphans
                    .into_iter()
                    .map(|session| Op::PurgeSession { session })
                    .collect();
                // One atomic batch: one broadcast, one WAL record, one
                // fsync — and no half-purged state if this boot crashes.
                if ensemble.submit(Op::Multi { ops }).0.is_ok() {
                    inner.stats.lock().recovery_purged_sessions = count;
                }
            }
            drop(ensemble);
        }
        let expiry_inner = Arc::clone(&inner);
        let expiry_thread = std::thread::Builder::new()
            .name("coord-expiry".into())
            .spawn(move || {
                while !expiry_inner.shutdown.load(Ordering::SeqCst) {
                    expiry_inner.clock.sleep_interruptible(
                        Duration::from_millis(expiry_inner.config.tick_ms),
                        &expiry_inner.shutdown,
                    );
                    let now = expiry_inner.clock.now_ms();
                    let timeout = expiry_inner.config.session_timeout_ms;
                    let stale: Vec<u64> = {
                        let sessions = expiry_inner.sessions.lock();
                        sessions
                            .iter()
                            .filter(|(_, s)| {
                                !s.expired && now.saturating_sub(s.last_seen_ms) > timeout
                            })
                            .map(|(id, _)| *id)
                            .collect()
                    };
                    for session in stale {
                        expiry_inner.expire_session_locked(session);
                    }
                    // Observer lease maintenance rides the same tick: catch
                    // reachable observers up and renew leases while the
                    // leader holds a quorum. On an idle ensemble this is
                    // what keeps healthy observers leased.
                    expiry_inner.ensemble.lock().tick_observers(now);
                }
            })
            .expect("spawn coord expiry thread");
        CoordService {
            inner,
            expiry_thread: Some(expiry_thread),
        }
    }

    /// Opens a client session. `name` labels the session in diagnostics.
    pub fn connect(&self, name: &str) -> CoordClient {
        let session = self.inner.next_session.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = unbounded();
        self.inner.sessions.lock().insert(
            session,
            Session {
                name: name.to_owned(),
                last_seen_ms: self.inner.clock.now_ms(),
                expired: false,
            },
        );
        self.inner.client_txs.lock().insert(session, tx);
        CoordClient {
            inner: Arc::clone(&self.inner),
            session,
            events: rx,
        }
    }

    /// Crashes an ensemble replica.
    pub fn crash_replica(&self, id: usize) {
        self.inner.ensemble.lock().crash_replica(id);
    }

    /// Restarts a crashed ensemble replica (it syncs from the leader).
    pub fn restart_replica(&self, id: usize) {
        self.inner.ensemble.lock().restart_replica(id);
    }

    /// Changes the modeled per-fsync device latency on every durable
    /// replica (see [`DurabilityOptions::simulated_fsync_latency`]).
    /// Benches populate their stores at full speed, then dial in a
    /// realistic device before measuring. A no-op without a `data_dir`.
    pub fn set_simulated_fsync_latency(&self, latency: Duration) {
        self.inner
            .ensemble
            .lock()
            .set_simulated_fsync_latency(latency);
    }

    /// Forces a session to expire immediately, as if its heartbeats stopped
    /// a session-timeout ago. Used by failover tests and the HA experiment.
    pub fn expire_session(&self, session: u64) {
        self.inner.expire_session_locked(session);
    }

    /// Partitions the replica network into groups.
    pub fn partition(&self, groups: Vec<Vec<usize>>) {
        self.inner.ensemble.lock().net().partition(groups);
    }

    /// Heals all replica-network partitions.
    pub fn heal(&self) {
        self.inner.ensemble.lock().net().heal();
    }

    /// Service-level statistics.
    pub fn stats(&self) -> ServiceStats {
        *self.inner.stats.lock()
    }

    /// Ensemble-level statistics.
    pub fn ensemble_stats(&self) -> EnsembleStats {
        self.inner.ensemble.lock().stats()
    }

    /// The configured session timeout in milliseconds.
    pub fn session_timeout_ms(&self) -> u64 {
        self.inner.config.session_timeout_ms
    }

    /// Attaches a non-voting observer replica at runtime and returns its
    /// id. It catches up via the existing suffix/snapshot machinery and is
    /// leased as soon as it reaches the committed frontier.
    pub fn attach_observer(&self) -> usize {
        let mut ensemble = self.inner.ensemble.lock();
        let id = ensemble.add_observer();
        ensemble.tick_observers(self.inner.clock.now_ms());
        id
    }

    /// Ids of the attached observer replicas, in attach order.
    pub fn observer_ids(&self) -> Vec<usize> {
        let ensemble = self.inner.ensemble.lock();
        (0..ensemble.replica_count())
            .filter(|&id| ensemble.is_observer(id))
            .collect()
    }

    /// Does observer `id` currently hold a valid staleness lease? Returns
    /// `false` for non-observers. The RPC tier uses this to decide whether
    /// observer-backed fan-out may keep serving.
    pub fn observer_lease_valid(&self, id: usize) -> bool {
        let mut ensemble = self.inner.ensemble.lock();
        ensemble.tick_observers(self.inner.clock.now_ms());
        ensemble.observer_lease_valid(id)
    }

    /// Reads from observer `id`'s store off the quorum path, under its
    /// staleness lease (see [`Ensemble::observer_read`]). No session is
    /// required: observer reads are the cheap, scale-out path.
    pub fn observer_read<T>(
        &self,
        id: usize,
        f: impl FnOnce(&crate::store::ZnodeStore) -> T,
    ) -> CoordResult<T> {
        self.inner.stats.lock().reads += 1;
        let mut ensemble = self.inner.ensemble.lock();
        ensemble.tick_observers(self.inner.clock.now_ms());
        ensemble.observer_read(id, f)
    }
}

impl Drop for CoordService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.expiry_thread.take() {
            let _ = handle.join();
        }
    }
}

/// How a znode is created.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CreateMode {
    /// Plain persistent node.
    Persistent,
    /// Persistent node with a monotonic sequence suffix.
    PersistentSequential,
    /// Deleted when the creating session expires.
    Ephemeral,
    /// Ephemeral with a sequence suffix (the election recipe's mode).
    EphemeralSequential,
}

/// A client handle bound to one session.
pub struct CoordClient {
    inner: Arc<ServiceInner>,
    session: u64,
    events: Receiver<WatchEvent>,
}

impl CoordClient {
    /// The session identifier.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Refreshes the session heartbeat.
    pub fn ping(&self) -> CoordResult<()> {
        self.inner.check_session(self.session)
    }

    /// Creates a znode, returning its final path (sequence suffix applied).
    pub fn create(
        &self,
        path: &Path,
        data: impl Into<Bytes>,
        mode: CreateMode,
    ) -> CoordResult<Path> {
        let (ephemeral, sequential) = match mode {
            CreateMode::Persistent => (false, false),
            CreateMode::PersistentSequential => (false, true),
            CreateMode::Ephemeral => (true, false),
            CreateMode::EphemeralSequential => (true, true),
        };
        let op = Op::Create {
            path: path.clone(),
            data: data.into(),
            ephemeral_owner: ephemeral.then_some(self.session),
            sequential,
        };
        match self.inner.submit(self.session, op)? {
            OpResult::Created(p) => Ok(p),
            other => unreachable!("create returned {other:?}"),
        }
    }

    /// Creates every missing node along `path` as a persistent znode.
    /// Existing prefixes are left untouched — probed with a cheap quorum
    /// read first, so re-binding well-known paths (queues, record roots)
    /// costs no writes; the create still tolerates losing a race.
    pub fn create_all(&self, path: &Path) -> CoordResult<()> {
        for prefix in path.ancestors_and_self() {
            if prefix.is_root() || self.exists(&prefix)? {
                continue;
            }
            match self.create(&prefix, Bytes::new(), CreateMode::Persistent) {
                Ok(_) | Err(CoordError::NodeExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Submits a batch of write operations as one atomic unit (the
    /// group-commit primitive): the batch replicates as a single broadcast,
    /// pays the write latency once, and either every sub-operation applies
    /// or none does ([`CoordError::MultiFailed`] reports the first failure).
    /// An empty batch is a no-op that never touches the ensemble.
    pub fn multi(&self, ops: Vec<Op>) -> CoordResult<Vec<OpResult>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        match self.inner.submit(self.session, Op::Multi { ops })? {
            OpResult::Multi(results) => Ok(results),
            other => unreachable!("multi returned {other:?}"),
        }
    }

    /// Writes a znode's data; `expected_version` makes it a compare-and-swap.
    pub fn set_data(
        &self,
        path: &Path,
        data: impl Into<Bytes>,
        expected_version: Option<u64>,
    ) -> CoordResult<u64> {
        let op = Op::SetData {
            path: path.clone(),
            data: data.into(),
            expected_version,
        };
        match self.inner.submit(self.session, op)? {
            OpResult::Set(v) => Ok(v),
            other => unreachable!("set returned {other:?}"),
        }
    }

    /// Deletes a znode; `expected_version` makes it conditional.
    pub fn delete(&self, path: &Path, expected_version: Option<u64>) -> CoordResult<()> {
        let op = Op::Delete {
            path: path.clone(),
            expected_version,
        };
        match self.inner.submit(self.session, op)? {
            OpResult::Deleted => Ok(()),
            other => unreachable!("delete returned {other:?}"),
        }
    }

    /// Reads a znode's data and stat, or `None` when absent.
    pub fn get_data(&self, path: &Path) -> CoordResult<Option<(Bytes, Stat)>> {
        self.inner.check_session(self.session)?;
        self.inner.stats.lock().reads += 1;
        self.inner.ensemble.lock().read(|s| s.get(path))
    }

    /// Returns `true` if a znode exists at `path`.
    pub fn exists(&self, path: &Path) -> CoordResult<bool> {
        self.inner.check_session(self.session)?;
        self.inner.stats.lock().reads += 1;
        self.inner.ensemble.lock().read(|s| s.exists(path))
    }

    /// Lists children in lexicographic order.
    pub fn get_children(&self, path: &Path) -> CoordResult<Vec<String>> {
        self.inner.check_session(self.session)?;
        self.inner.stats.lock().reads += 1;
        self.inner.ensemble.lock().read(|s| s.children(path))?
    }

    /// Registers a one-shot watch. `Node` watches fire on create, delete, or
    /// data change of `path`; `Children` watches fire when the child set of
    /// `path` changes. Fired watches arrive on [`CoordClient::events`].
    pub fn watch(&self, path: &Path, kind: WatchKind) -> CoordResult<()> {
        self.inner.check_session(self.session)?;
        let mut watches = self.inner.watches.lock();
        let map = match kind {
            WatchKind::Node => &mut watches.node,
            WatchKind::Children => &mut watches.children,
        };
        map.entry(path.clone()).or_default().push(self.session);
        Ok(())
    }

    /// The channel on which fired watches are delivered.
    pub fn events(&self) -> &Receiver<WatchEvent> {
        &self.events
    }

    /// Waits up to `timeout` for the next watch event.
    pub fn wait_event(&self, timeout: Duration) -> Option<WatchEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Serializes `value` as JSON into the znode at `path`, creating it if
    /// missing. Convenience used for transaction records and checkpoints.
    pub fn put_json<T: serde::Serialize>(&self, path: &Path, value: &T) -> CoordResult<()> {
        let data = serde_json::to_vec(value).expect("serializable value");
        match self.set_data(path, data.clone(), None) {
            Ok(_) => Ok(()),
            Err(CoordError::NoNode(_)) => {
                if let Some(parent) = path.parent() {
                    self.create_all(&parent)?;
                }
                match self.create(path, data.clone(), CreateMode::Persistent) {
                    Ok(_) => Ok(()),
                    // Lost a create race: fall back to set.
                    Err(CoordError::NodeExists(_)) => self.set_data(path, data, None).map(|_| ()),
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Reads and deserializes a JSON znode, or `None` when absent.
    pub fn get_json<T: serde::de::DeserializeOwned>(&self, path: &Path) -> CoordResult<Option<T>> {
        match self.get_data(path)? {
            Some((data, _)) => Ok(serde_json::from_slice(&data).ok()),
            None => Ok(None),
        }
    }

    /// Starts a background heartbeat for this session, pinging at roughly a
    /// quarter of the session timeout — what a real ZooKeeper client's IO
    /// thread does. Needed by components that block for long stretches
    /// (e.g. workers inside slow device calls) but must stay alive. The
    /// heartbeat stops when the returned guard drops, so a crashed
    /// component's session still expires naturally.
    pub fn keepalive(&self) -> KeepAlive {
        let inner = Arc::clone(&self.inner);
        let session = self.session;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let interval = Duration::from_millis((inner.config.session_timeout_ms / 4).max(5));
        let handle = std::thread::Builder::new()
            .name(format!("coord-keepalive-{session}"))
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    if inner.check_session(session).is_err() {
                        // Session gone: nothing left to keep alive.
                        return;
                    }
                    // Real-time chunked sleep so dropping the guard returns
                    // promptly even under a stalled manual clock.
                    let deadline = std::time::Instant::now() + interval;
                    while std::time::Instant::now() < deadline {
                        if stop2.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            })
            .expect("spawn keepalive thread");
        KeepAlive {
            stop,
            handle: Some(handle),
        }
    }

    /// Closes the session cleanly, deleting its ephemeral nodes.
    pub fn close(self) {
        self.inner.expire_session_locked(self.session);
        self.inner.client_txs.lock().remove(&self.session);
    }
}

/// Guard for a background session heartbeat; dropping it stops the pings.
pub struct KeepAlive {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for KeepAlive {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::SyncPolicy;
    use tropic_model::ManualClock;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn quick_service() -> CoordService {
        CoordService::start(CoordConfig {
            session_timeout_ms: 200,
            tick_ms: 10,
            ..CoordConfig::default()
        })
    }

    #[test]
    fn create_read_write_delete() {
        let svc = quick_service();
        let c = svc.connect("t");
        c.create(&p("/a"), Bytes::from_static(b"1"), CreateMode::Persistent)
            .unwrap();
        let (data, stat) = c.get_data(&p("/a")).unwrap().unwrap();
        assert_eq!(&data[..], b"1");
        assert_eq!(stat.version, 0);
        c.set_data(&p("/a"), Bytes::from_static(b"2"), Some(0))
            .unwrap();
        assert!(matches!(
            c.set_data(&p("/a"), Bytes::from_static(b"3"), Some(0)),
            Err(CoordError::BadVersion { .. })
        ));
        c.delete(&p("/a"), None).unwrap();
        assert!(c.get_data(&p("/a")).unwrap().is_none());
    }

    #[test]
    fn create_all_idempotent() {
        let svc = quick_service();
        let c = svc.connect("t");
        c.create_all(&p("/x/y/z")).unwrap();
        c.create_all(&p("/x/y/z")).unwrap();
        assert!(c.exists(&p("/x/y")).unwrap());
    }

    #[test]
    fn watches_fire_once() {
        let svc = quick_service();
        let c1 = svc.connect("watcher");
        let c2 = svc.connect("writer");
        c2.create(&p("/w"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        c1.watch(&p("/w"), WatchKind::Node).unwrap();
        c2.set_data(&p("/w"), Bytes::from_static(b"x"), None)
            .unwrap();
        let ev = c1.wait_event(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.event, StoreEvent::DataChanged(p("/w")));
        // One-shot: a second write does not fire again.
        c2.set_data(&p("/w"), Bytes::from_static(b"y"), None)
            .unwrap();
        assert!(c1.wait_event(Duration::from_millis(50)).is_none());
    }

    #[test]
    fn children_watch() {
        let svc = quick_service();
        let c1 = svc.connect("watcher");
        let c2 = svc.connect("writer");
        c2.create(&p("/q"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        c1.watch(&p("/q"), WatchKind::Children).unwrap();
        c2.create(&p("/q/i"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        let ev = c1.wait_event(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.event, StoreEvent::ChildrenChanged(p("/q")));
    }

    #[test]
    fn ephemeral_removed_on_close() {
        let svc = quick_service();
        let c1 = svc.connect("a");
        let c2 = svc.connect("b");
        c1.create(&p("/eph"), Bytes::new(), CreateMode::Ephemeral)
            .unwrap();
        assert!(c2.exists(&p("/eph")).unwrap());
        c1.close();
        assert!(!c2.exists(&p("/eph")).unwrap());
    }

    #[test]
    fn session_expiry_purges_ephemerals_and_notifies() {
        let clock = ManualClock::new();
        let svc = CoordService::start_with_clock(
            CoordConfig {
                session_timeout_ms: 500,
                tick_ms: 50,
                ..CoordConfig::default()
            },
            clock.clone(),
        );
        let c1 = svc.connect("leader");
        let c2 = svc.connect("follower");
        c1.create(&p("/lead"), Bytes::new(), CreateMode::Ephemeral)
            .unwrap();
        c2.watch(&p("/lead"), WatchKind::Node).unwrap();
        // c2 keeps pinging; c1 goes silent.
        for _ in 0..30 {
            clock.advance(100);
            let _ = c2.ping();
            if c2.wait_event(Duration::from_millis(20)).is_some() {
                // Deletion observed.
                assert!(!c2.exists(&p("/lead")).unwrap());
                assert!(matches!(c1.ping(), Err(CoordError::SessionExpired)));
                return;
            }
        }
        panic!("ephemeral node was not purged after session expiry");
    }

    #[test]
    fn expired_session_rejects_ops() {
        let svc = quick_service();
        let c = svc.connect("t");
        svc.expire_session(c.session_id());
        assert!(matches!(
            c.create(&p("/x"), Bytes::new(), CreateMode::Persistent),
            Err(CoordError::SessionExpired)
        ));
        assert!(matches!(
            c.exists(&p("/x")),
            Err(CoordError::SessionExpired)
        ));
    }

    #[test]
    fn observer_serves_reads_and_lease_gates_staleness() {
        let clock = ManualClock::new();
        let svc = CoordService::start_with_clock(
            CoordConfig {
                observers: 1,
                observer_lease_ms: 400,
                tick_ms: 50,
                ..CoordConfig::default()
            },
            clock.clone(),
        );
        let obs = svc.observer_ids();
        assert_eq!(obs.len(), 1);
        let obs = obs[0];
        let c = svc.connect("writer");
        c.create(&p("/a"), Bytes::from_static(b"v"), CreateMode::Persistent)
            .unwrap();
        // The observer replays the commit and serves it off-quorum.
        assert!(svc.observer_read(obs, |s| s.exists(&p("/a"))).unwrap());
        assert!(svc.observer_lease_valid(obs));
        // Quorum loss stops renewals; once the lease horizon passes, the
        // observer rejects with the typed error instead of serving stale.
        svc.crash_replica(1);
        svc.crash_replica(2);
        clock.advance(1_000);
        assert!(!svc.observer_lease_valid(obs));
        assert!(matches!(
            svc.observer_read(obs, |s| s.node_count()),
            Err(CoordError::LeaseExpired { observer }) if observer == obs
        ));
        let es = svc.ensemble_stats();
        assert_eq!(es.observers, 1);
        assert!(es.observer_reads >= 1);
        assert!(es.observer_lease_expiries >= 1);
        // Heal: the next maintenance pass re-leases and reads resume.
        svc.restart_replica(1);
        assert!(svc.observer_lease_valid(obs));
        assert!(svc.observer_read(obs, |s| s.exists(&p("/a"))).unwrap());
    }

    #[test]
    fn runtime_attached_observer_catches_up() {
        let svc = quick_service();
        let c = svc.connect("w");
        c.create(&p("/pre"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        let obs = svc.attach_observer();
        assert!(svc.observer_read(obs, |s| s.exists(&p("/pre"))).unwrap());
        c.create(&p("/post"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        assert!(svc.observer_read(obs, |s| s.exists(&p("/post"))).unwrap());
    }

    #[test]
    fn json_roundtrip() {
        let svc = quick_service();
        let c = svc.connect("t");
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Rec {
            id: u64,
            name: String,
        }
        let rec = Rec {
            id: 7,
            name: "spawnVM".into(),
        };
        c.put_json(&p("/tropic/txns/7"), &rec).unwrap();
        // Overwrite works too.
        c.put_json(&p("/tropic/txns/7"), &rec).unwrap();
        let back: Rec = c.get_json(&p("/tropic/txns/7")).unwrap().unwrap();
        assert_eq!(back, rec);
        let missing: Option<Rec> = c.get_json(&p("/tropic/txns/8")).unwrap();
        assert!(missing.is_none());
    }

    #[test]
    fn replica_crash_transparent_below_quorum_loss() {
        let svc = quick_service();
        let c = svc.connect("t");
        c.create(&p("/a"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        svc.crash_replica(0);
        c.create(&p("/b"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        svc.crash_replica(1);
        assert!(matches!(
            c.create(&p("/c"), Bytes::new(), CreateMode::Persistent),
            Err(CoordError::NoQuorum { .. })
        ));
        svc.restart_replica(1);
        c.create(&p("/c"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        assert!(c.exists(&p("/a")).unwrap());
        assert!(c.exists(&p("/b")).unwrap());
    }

    #[test]
    fn stats_count_ops() {
        let svc = quick_service();
        let c = svc.connect("t");
        c.create(&p("/a"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        let _ = c.exists(&p("/a")).unwrap();
        let s = svc.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn multi_round_trip_and_stats() {
        let svc = quick_service();
        let c = svc.connect("t");
        let results = c
            .multi(vec![
                Op::Create {
                    path: p("/batch"),
                    data: Bytes::from_static(b"1"),
                    ephemeral_owner: None,
                    sequential: false,
                },
                Op::SetData {
                    path: p("/batch"),
                    data: Bytes::from_static(b"2"),
                    expected_version: None,
                },
            ])
            .unwrap();
        assert_eq!(results.len(), 2);
        let (data, stat) = c.get_data(&p("/batch")).unwrap().unwrap();
        assert_eq!(&data[..], b"2");
        assert_eq!(stat.version, 1);
        let s = svc.stats();
        assert_eq!(s.writes, 1, "a batch is one write");
        assert_eq!(s.multis, 1);
        assert_eq!(s.batched_ops, 2);
        // Empty batches never touch the ensemble.
        assert!(c.multi(Vec::new()).unwrap().is_empty());
        assert_eq!(svc.stats().writes, 1);
    }

    #[test]
    fn multi_failure_applies_nothing_and_fires_no_watches() {
        let svc = quick_service();
        let c = svc.connect("writer");
        let w = svc.connect("watcher");
        c.create(&p("/seen"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
        w.watch(&p("/seen"), WatchKind::Node).unwrap();
        let err = c
            .multi(vec![
                Op::SetData {
                    path: p("/seen"),
                    data: Bytes::from_static(b"x"),
                    expected_version: None,
                },
                Op::Delete {
                    path: p("/missing"),
                    expected_version: None,
                },
            ])
            .unwrap_err();
        assert!(matches!(err, CoordError::MultiFailed { index: 1, .. }));
        let (data, stat) = c.get_data(&p("/seen")).unwrap().unwrap();
        assert!(data.is_empty());
        assert_eq!(stat.version, 0);
        assert!(
            w.wait_event(Duration::from_millis(50)).is_none(),
            "failed batch must not fire watches"
        );
    }

    #[test]
    fn multi_batch_replicates_atomically_across_crash() {
        let svc = quick_service();
        let c = svc.connect("t");
        c.multi(vec![
            Op::Create {
                path: p("/a"),
                data: Bytes::new(),
                ephemeral_owner: None,
                sequential: false,
            },
            Op::Create {
                path: p("/b"),
                data: Bytes::new(),
                ephemeral_owner: None,
                sequential: false,
            },
        ])
        .unwrap();
        // The batch committed as one unit; a replica crash + leader change
        // still shows both effects.
        svc.crash_replica(0);
        assert!(c.exists(&p("/a")).unwrap());
        assert!(c.exists(&p("/b")).unwrap());
    }

    fn durable_config(dir: &std::path::Path) -> CoordConfig {
        CoordConfig {
            session_timeout_ms: 200,
            tick_ms: 10,
            data_dir: Some(dir.to_path_buf()),
            durability: DurabilityOptions {
                sync_policy: SyncPolicy::Periodic { every_ops: 8 },
                snapshot_every_ops: 4,
                ..DurabilityOptions::default()
            },
            ..CoordConfig::default()
        }
    }

    #[test]
    fn durable_service_survives_total_restart() {
        let tmp = crate::testutil::TempDir::new("tropic-svc-durable");
        let config = durable_config(tmp.path());
        {
            let svc = CoordService::start(config.clone());
            let c = svc.connect("writer");
            for i in 0..10 {
                c.create(
                    &p(&format!("/n{i}")),
                    Bytes::from_static(b"v"),
                    CreateMode::Persistent,
                )
                .unwrap();
            }
            c.set_data(&p("/n0"), Bytes::from_static(b"w"), Some(0))
                .unwrap();
            assert!(svc.ensemble_stats().snapshots_written > 0);
        } // full shutdown: every replica gone
        let svc = CoordService::recover(config);
        assert_eq!(svc.ensemble_stats().recoveries, 3);
        let c = svc.connect("reader");
        for i in 0..10 {
            assert!(c.exists(&p(&format!("/n{i}"))).unwrap(), "/n{i} lost");
        }
        let (data, stat) = c.get_data(&p("/n0")).unwrap().unwrap();
        assert_eq!(&data[..], b"w");
        assert_eq!(stat.version, 1, "versions survive recovery");
        // Writes continue after recovery.
        c.create(&p("/after"), Bytes::new(), CreateMode::Persistent)
            .unwrap();
    }

    #[test]
    fn recover_purges_orphaned_ephemerals_but_keeps_persistents() {
        let tmp = crate::testutil::TempDir::new("tropic-svc-orphans");
        let config = durable_config(tmp.path());
        {
            let svc = CoordService::start(config.clone());
            let c = svc.connect("old-leader");
            c.create(&p("/keep"), Bytes::new(), CreateMode::Persistent)
                .unwrap();
            c.create(&p("/lead"), Bytes::new(), CreateMode::Ephemeral)
                .unwrap();
            // The service dies with the session still live.
        }
        let svc = CoordService::recover(config);
        let c = svc.connect("new");
        assert!(c.exists(&p("/keep")).unwrap());
        assert!(
            !c.exists(&p("/lead")).unwrap(),
            "orphaned ephemeral must be purged on recovery"
        );
        assert!(svc.stats().recovery_purged_sessions >= 1);
    }

    #[test]
    fn start_formats_the_data_dir() {
        let tmp = crate::testutil::TempDir::new("tropic-svc-format");
        let config = durable_config(tmp.path());
        {
            let svc = CoordService::start(config.clone());
            let c = svc.connect("w");
            c.create(&p("/old"), Bytes::new(), CreateMode::Persistent)
                .unwrap();
        }
        let svc = CoordService::start(config);
        let c = svc.connect("w");
        assert!(
            !c.exists(&p("/old")).unwrap(),
            "start() is a fresh format, not a recovery"
        );
    }
}

//! Segmented write-ahead log and the per-replica durability handle.
//!
//! Every committed store operation is appended to an on-disk segment as a
//! length-prefixed, CRC-checksummed record *before* it is applied, mirroring
//! ZooKeeper's transaction log — the durable half of the paper's
//! "highly-available transactional orchestration" claim (§2.3, §6.1).
//! Because PR 2's group commit folds a whole scheduling round into one
//! [`Op::Multi`], a single appended record (and a single fsync under
//! [`SyncPolicy::EveryBatch`]) covers the entire batch.
//!
//! The log is segmented: a segment file is named after the zxid of its
//! first record and rotated once it exceeds
//! [`DurabilityOptions::segment_max_bytes`]. When a fuzzy snapshot is
//! written (see [`crate::snapshot`]), every segment is fully covered by it
//! and deleted, bounding disk *and* the replica's in-memory log.
//!
//! Recovery reads segments in zxid order and stops at the first torn or
//! corrupt record: the tail is truncated (it was never acknowledged) and
//! later segments, which would sit beyond the tear, are discarded.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path as StdPath, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Sender};
use parking_lot::{Condvar, Mutex};

use crate::snapshot;
use crate::store::{Op, ZnodeStore};

pub use self::codec::FORMAT_VERSION;

/// A durability failure on the WAL/snapshot hot path.
///
/// Replicas treat any of these as fail-stop: a replica that cannot make
/// its log durable stops acking batches rather than lying about
/// persistence (see `ensemble::Replica`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An I/O operation failed; `op` names the failing step.
    Io {
        /// Which durability step failed (e.g. `append`, `snapshot`).
        op: &'static str,
        /// The underlying error, stringified for cloneability.
        error: String,
    },
    /// The pipelined sync thread reported an fsync failure.
    SyncFailed(String),
    /// The pipelined sync thread is no longer running.
    SyncThreadDead,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { op, error } => write!(f, "WAL {op} I/O failed: {error}"),
            WalError::SyncFailed(e) => write!(f, "WAL fsync failed: {e}"),
            WalError::SyncThreadDead => write!(f, "WAL sync thread terminated"),
        }
    }
}

impl std::error::Error for WalError {}

/// Result alias for durability operations.
pub type WalResult<T> = Result<T, WalError>;

fn wal_io(op: &'static str) -> impl FnOnce(io::Error) -> WalError {
    move |e| WalError::Io {
        op,
        error: e.to_string(),
    }
}

/// When the write-ahead log is forced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// One fsync per committed batch (every ensemble submit — a multi pays
    /// it once for the whole group). The paper's safety posture: an
    /// acknowledged transaction survives losing every replica.
    EveryBatch,
    /// One fsync per `every_ops` appended records (plus one at every
    /// snapshot). Trades a bounded window of acknowledged writes for
    /// throughput, like ZooKeeper's group-flush knobs.
    Periodic {
        /// Appended records between forced syncs (clamped to at least 1).
        every_ops: u64,
    },
    /// Group fsync off the critical path: every batch is handed to a
    /// dedicated sync thread, and the commit path only blocks while more
    /// than `depth` batches remain unsynced. The safety posture is the same
    /// as [`SyncPolicy::EveryBatch`] — every batch *is* fsynced, in order,
    /// and a batch is never reported synced before its own fsync lands —
    /// but with `depth > 0` the fsync of batch N overlaps the encode and
    /// append of batch N+1 instead of serializing ahead of it.
    /// `depth: 0` pipelines across replicas only (each replica's ack still
    /// waits for its own batch), which already overlaps the ensemble's
    /// fsyncs; see `Ensemble::submit`.
    Pipelined {
        /// Max batches allowed in flight (unsynced) before the commit path
        /// stalls waiting on the sync thread.
        depth: u64,
    },
}

/// Durability tuning for one replica.
#[derive(Clone, Debug)]
pub struct DurabilityOptions {
    /// When appended records are fsynced.
    pub sync_policy: SyncPolicy,
    /// Write a snapshot (and truncate the log) after this many appended
    /// records. `0` disables the op-count trigger.
    pub snapshot_every_ops: u64,
    /// Write a snapshot once the live segments exceed this many bytes.
    /// `0` disables the size trigger.
    pub snapshot_max_wal_bytes: u64,
    /// Rotate to a new segment file once the current one exceeds this size.
    pub segment_max_bytes: u64,
    /// Write incremental (delta) snapshots when the dirty set is small
    /// relative to the store, chaining off the previous snapshot. Disable
    /// to force every snapshot full.
    pub delta_snapshots: bool,
    /// Max deltas chained onto one full snapshot before the next snapshot
    /// is forced full (compaction). `0` behaves like
    /// `delta_snapshots: false`.
    pub delta_chain_max: u64,
    /// Modeled device latency added to every fsync (including each sync
    /// round of the pipelined policy). Zero — the default — adds nothing;
    /// benches set it so policy comparisons measure the protocol, not the
    /// host's page cache.
    pub simulated_fsync_latency: Duration,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            sync_policy: SyncPolicy::EveryBatch,
            snapshot_every_ops: 1_024,
            snapshot_max_wal_bytes: 4 << 20,
            segment_max_bytes: 1 << 20,
            delta_snapshots: true,
            delta_chain_max: 8,
            simulated_fsync_latency: Duration::ZERO,
        }
    }
}

/// Counters describing one replica's durability activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct DurabilityStats {
    /// Records appended to the write-ahead log.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log (framing included).
    pub wal_bytes: u64,
    /// Bytes covered by completed fsyncs.
    pub bytes_fsynced: u64,
    /// fsync calls issued against segment files.
    pub fsyncs: u64,
    /// Directory fsyncs making renames, new files, and deletions durable.
    pub dir_fsyncs: u64,
    /// Segment files rotated out.
    pub segments_rotated: u64,
    /// Snapshots written (full and delta, policy-triggered and snapshot
    /// transfers).
    pub snapshots_written: u64,
    /// The subset of `snapshots_written` that were deltas.
    pub delta_snapshots_written: u64,
    /// Times the pipelined commit path blocked because `depth` batches
    /// were already in flight.
    pub pipeline_stalls: u64,
    /// Batches settled by a sync round they shared with other batches
    /// (the fsyncs the pipeline's coalescing saved).
    pub pipeline_coalesced: u64,
    /// Max batches observed in flight (unsynced) at once.
    pub pipeline_depth_peak: u64,
}

/// A recovered snapshot: the zxid it reflects plus the decoded store.
pub type RecoveredSnapshot = (u64, ZnodeStore);

/// What [`Durability::open`] yields: the handle, the latest valid snapshot
/// (if any), and the write-ahead-log suffix strictly after it.
pub type OpenedDurability = (Durability, Option<RecoveredSnapshot>, Vec<(u64, Op)>);

/// The result of scanning a replica's segments at recovery.
pub struct WalRecovery {
    /// Every decodable `(zxid, op)` record, in append order.
    pub ops: Vec<(u64, Op)>,
    /// Bytes of valid records across all live segments (framing included).
    pub valid_bytes: u64,
    /// Whether a torn or corrupt tail was found and truncated away.
    pub truncated_tail: bool,
}

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";
/// Upper bound on one record's payload; anything larger is treated as a
/// tear (a real record never approaches it).
const MAX_RECORD_BYTES: usize = 64 << 20;

fn segment_file_name(first_zxid: u64) -> String {
    format!("{SEGMENT_PREFIX}{first_zxid:016x}{SEGMENT_SUFFIX}")
}

/// Segment files in a directory, sorted ascending by first-record zxid.
pub fn list_segments(dir: &StdPath) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(hex) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|n| n.strip_suffix(SEGMENT_SUFFIX))
        else {
            continue;
        };
        if let Ok(zxid) = u64::from_str_radix(hex, 16) {
            out.push((zxid, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(zxid, _)| *zxid);
    Ok(out)
}

/// A segmented append-only log of framed records.
pub struct Wal {
    dir: PathBuf,
    segment_max_bytes: u64,
    current: Option<Segment>,
    dir_fsyncs: u64,
}

struct Segment {
    /// Shared so the pipelined sync thread can fsync a segment the writer
    /// has already rotated away from (or is still appending to).
    file: Arc<File>,
    bytes: u64,
}

impl Wal {
    /// Binds a log to `dir` without touching existing files; the next append
    /// starts a fresh segment named after its zxid.
    pub fn new(dir: &StdPath, segment_max_bytes: u64) -> Self {
        Wal {
            dir: dir.to_path_buf(),
            segment_max_bytes: segment_max_bytes.max(1),
            current: None,
            dir_fsyncs: 0,
        }
    }

    /// Appends one pre-framed record, rotating segments as needed. Returns
    /// `true` when a rotation happened.
    pub fn append_frame(&mut self, zxid: u64, frame: &[u8]) -> io::Result<bool> {
        let mut rotated = false;
        let need_new = match &self.current {
            None => true,
            Some(s) => s.bytes >= self.segment_max_bytes,
        };
        if need_new {
            if let Some(old) = self.current.take() {
                // The outgoing segment may hold unsynced records under a
                // periodic policy; settle them before abandoning the handle.
                old.file.sync_data()?;
                rotated = true;
            }
            let path = self.dir.join(segment_file_name(zxid));
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            // A new file's directory entry is not durable until the
            // directory itself is fsynced; without this, an acked batch in
            // a fresh segment could vanish wholesale on power loss — so a
            // failure here must surface, not be swallowed.
            File::open(&self.dir)?.sync_all()?;
            self.dir_fsyncs += 1;
            let bytes = file.metadata()?.len();
            self.current = Some(Segment {
                file: Arc::new(file),
                bytes,
            });
        }
        let Some(seg) = self.current.as_mut() else {
            // Unreachable: the branch above always installs a segment.
            return Err(io::Error::other("no current WAL segment"));
        };
        (&*seg.file).write_all(frame)?;
        seg.bytes += frame.len() as u64;
        Ok(rotated)
    }

    /// Forces the current segment to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(seg) = &self.current {
            seg.file.sync_data()?;
        }
        Ok(())
    }

    /// A shared handle to the current segment's file, for handing to the
    /// pipelined sync thread.
    fn current_file(&self) -> Option<Arc<File>> {
        self.current.as_ref().map(|s| Arc::clone(&s.file))
    }

    /// Directory fsyncs issued by this log (new-segment creation, segment
    /// deletion at truncation).
    fn dir_fsyncs(&self) -> u64 {
        self.dir_fsyncs
    }

    /// Deletes every segment file. Called after a snapshot has made them
    /// redundant (snapshots are always taken at the log tip, so every
    /// segment is fully covered). The deletions are made durable with a
    /// directory fsync so a power loss cannot resurrect pre-snapshot
    /// segments next to a post-snapshot log.
    pub fn clear(&mut self) -> io::Result<()> {
        self.current = None;
        let segments = list_segments(&self.dir)?;
        if segments.is_empty() {
            return Ok(());
        }
        for (_, path) in segments {
            fs::remove_file(path)?;
        }
        File::open(&self.dir)?.sync_all()?;
        self.dir_fsyncs += 1;
        Ok(())
    }
}

/// Scans a replica directory's segments, decoding records until the first
/// torn or corrupt one. The tear (and any later, untrusted segment) is
/// removed so subsequent appends extend a clean log.
pub fn recover_dir(dir: &StdPath) -> io::Result<WalRecovery> {
    let segments = list_segments(dir)?;
    let mut ops = Vec::new();
    let mut valid_bytes = 0u64;
    let mut truncated_tail = false;
    for (idx, (_, path)) in segments.iter().enumerate() {
        let data = fs::read(path)?;
        let (valid_len, mut segment_ops, torn) = scan_segment(&data);
        ops.append(&mut segment_ops);
        valid_bytes += valid_len as u64;
        if torn {
            truncated_tail = true;
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
            for (_, later) in &segments[idx + 1..] {
                fs::remove_file(later)?;
            }
            break;
        }
    }
    Ok(WalRecovery {
        ops,
        valid_bytes,
        truncated_tail,
    })
}

/// Reads a little-endian u32 at `pos`, or `None` past the end.
fn le_u32_at(data: &[u8], pos: usize) -> Option<u32> {
    let bytes = data.get(pos..pos.checked_add(4)?)?;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

/// Decodes `(valid_byte_len, records, torn)` from one segment's contents.
fn scan_segment(data: &[u8]) -> (usize, Vec<(u64, Op)>, bool) {
    let mut pos = 0usize;
    let mut ops = Vec::new();
    loop {
        if pos + 8 > data.len() {
            return (pos, ops, pos < data.len());
        }
        let (Some(len), Some(crc)) = (le_u32_at(data, pos), le_u32_at(data, pos + 4)) else {
            return (pos, ops, true);
        };
        let len = len as usize;
        if len > MAX_RECORD_BYTES || pos + 8 + len > data.len() {
            return (pos, ops, true);
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if codec::crc32(payload) != crc {
            return (pos, ops, true);
        }
        let mut cur = codec::Cursor::new(payload);
        let Some(zxid) = cur.u64() else {
            return (pos, ops, true);
        };
        let Some(op) = codec::decode_op(&mut cur) else {
            return (pos, ops, true);
        };
        ops.push((zxid, op));
        pos += 8 + len;
    }
}

/// One queued fsync request: all bytes appended for one committed batch,
/// tagged with a monotonically increasing ticket.
struct SyncJob {
    ticket: u64,
    file: Arc<File>,
    bytes: u64,
}

/// Progress the sync thread publishes back to the commit path.
#[derive(Default)]
struct SyncProgress {
    /// Highest ticket whose fsync has landed (tickets complete in order).
    completed: u64,
    /// fsync calls the thread has issued.
    fsyncs: u64,
    /// Jobs settled by a round they shared with other jobs.
    coalesced: u64,
    /// Bytes covered by completed fsyncs.
    bytes_fsynced: u64,
    /// First fsync failure, if any; waiting commit paths surface it as
    /// [`WalError::SyncFailed`].
    failed: Option<String>,
}

struct SyncShared {
    progress: Mutex<SyncProgress>,
    cv: Condvar,
}

/// The pipelined policy's dedicated sync thread. Jobs are drained in
/// batches: every job queued at wake-up joins one sync round, each distinct
/// segment file is fsynced once, and the round's highest ticket publishes as
/// completed — so k queued batches on one segment cost one fsync.
struct Syncer {
    tx: Option<Sender<SyncJob>>,
    shared: Arc<SyncShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Syncer {
    fn spawn(latency_ns: Arc<AtomicU64>) -> WalResult<Self> {
        let (tx, rx) = channel::unbounded::<SyncJob>();
        let shared = Arc::new(SyncShared {
            progress: Mutex::new(SyncProgress::default()),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("tropic-wal-sync".into())
            .spawn(move || {
                while let Ok(first) = rx.recv() {
                    let first_ticket = first.ticket;
                    let mut jobs = vec![first];
                    while let Ok(more) = rx.try_recv() {
                        jobs.push(more);
                    }
                    let latency = Duration::from_nanos(latency_ns.load(Ordering::Relaxed));
                    let mut fsyncs = 0u64;
                    let mut failed: Option<String> = None;
                    for i in 0..jobs.len() {
                        // One fsync per distinct file settles every job on
                        // it: all their appends happened before they were
                        // queued. (Rotation keeps at most two files per
                        // round in practice.)
                        let dup = jobs[..i]
                            .iter()
                            .any(|prev| Arc::ptr_eq(&prev.file, &jobs[i].file));
                        if dup {
                            continue;
                        }
                        if !latency.is_zero() {
                            std::thread::sleep(latency);
                        }
                        if let Err(e) = jobs[i].file.sync_data() {
                            failed = Some(e.to_string());
                            break;
                        }
                        fsyncs += 1;
                    }
                    let last_ticket = jobs.last().map_or(first_ticket, |j| j.ticket);
                    let bytes: u64 = jobs.iter().map(|j| j.bytes).sum();
                    let mut p = thread_shared.progress.lock();
                    if let Some(e) = failed {
                        if p.failed.is_none() {
                            p.failed = Some(e);
                        }
                    }
                    // Publish completion even on failure so waiters wake and
                    // observe `failed` instead of hanging.
                    p.completed = last_ticket;
                    p.fsyncs += fsyncs;
                    p.coalesced += jobs.len() as u64 - fsyncs.min(jobs.len() as u64);
                    p.bytes_fsynced += bytes;
                    drop(p);
                    thread_shared.cv.notify_all();
                }
            })
            .map_err(wal_io("sync thread spawn"))?;
        Ok(Syncer {
            tx: Some(tx),
            shared,
            thread: Some(thread),
        })
    }

    fn enqueue(&self, job: SyncJob) -> WalResult<()> {
        match self.tx.as_ref() {
            Some(tx) if tx.send(job).is_ok() => Ok(()),
            _ => Err(WalError::SyncThreadDead),
        }
    }

    fn completed(&self) -> u64 {
        self.shared.progress.lock().completed
    }

    /// Blocks until at most `depth` of `submitted` tickets remain unsynced.
    /// Returns whether it had to block, or [`WalError::SyncFailed`] when
    /// the sync thread reported an fsync failure.
    fn wait_outstanding_le(&self, submitted: u64, depth: u64) -> WalResult<bool> {
        let target = submitted.saturating_sub(depth);
        let mut p = self.shared.progress.lock();
        let mut stalled = false;
        while p.completed < target {
            if let Some(e) = &p.failed {
                return Err(WalError::SyncFailed(e.clone()));
            }
            stalled = true;
            self.shared.cv.wait(&mut p);
        }
        if let Some(e) = &p.failed {
            return Err(WalError::SyncFailed(e.clone()));
        }
        Ok(stalled)
    }

    /// Drains the queue without panicking; used from `Drop`.
    fn drain_best_effort(&self, submitted: u64) {
        let mut p = self.shared.progress.lock();
        while p.completed < submitted && p.failed.is_none() {
            self.shared.cv.wait(&mut p);
        }
    }
}

impl Drop for Syncer {
    fn drop(&mut self) {
        // Closing the channel ends the thread's recv loop after it drains
        // what is already queued.
        self.tx.take();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One replica's durability handle: its write-ahead log, snapshot policy,
/// and counters. Owned by an ensemble replica; every committed op flows
/// through [`Durability::append`] before it is applied, and every committed
/// batch ends with [`Durability::commit_batch`].
pub struct Durability {
    dir: PathBuf,
    opts: DurabilityOptions,
    wal: Wal,
    stats: DurabilityStats,
    ops_since_snapshot: u64,
    wal_bytes_since_snapshot: u64,
    appends_since_sync: u64,
    unsynced_bytes: u64,
    /// Modeled fsync latency, shared with the sync thread so it can be
    /// changed after construction (benches populate fast, then measure).
    simulated_fsync_latency_ns: Arc<AtomicU64>,
    /// Lazily spawned by the first pipelined batch.
    syncer: Option<Syncer>,
    /// Tickets handed to the sync thread so far.
    submitted_tickets: u64,
    /// Zxid of the newest snapshot (full or delta) in `dir`; the base the
    /// next delta chains onto.
    chain_tip: Option<u64>,
    /// Deltas chained onto the newest full snapshot.
    chain_len: u64,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("dir", &self.dir)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Durability {
    fn fresh(dir: &StdPath, opts: DurabilityOptions) -> Self {
        let wal = Wal::new(dir, opts.segment_max_bytes);
        let latency = Arc::new(AtomicU64::new(
            u64::try_from(opts.simulated_fsync_latency.as_nanos()).unwrap_or(u64::MAX),
        ));
        Durability {
            dir: dir.to_path_buf(),
            opts,
            wal,
            stats: DurabilityStats::default(),
            ops_since_snapshot: 0,
            wal_bytes_since_snapshot: 0,
            appends_since_sync: 0,
            unsynced_bytes: 0,
            simulated_fsync_latency_ns: latency,
            syncer: None,
            submitted_tickets: 0,
            chain_tip: None,
            chain_len: 0,
        }
    }

    /// Formats a fresh replica directory, destroying any prior contents.
    pub fn create(dir: &StdPath, opts: DurabilityOptions) -> io::Result<Self> {
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        fs::create_dir_all(dir)?;
        Ok(Self::fresh(dir, opts))
    }

    /// Opens an existing replica directory, returning the handle, the
    /// latest valid snapshot (if any), and the log suffix strictly after
    /// it. Purely read-only unless it has crash debris to clean (a torn
    /// WAL tail, a half-written snapshot), so repeated opens of a
    /// cleanly-closed directory are idempotent.
    pub fn open(dir: &StdPath, opts: DurabilityOptions) -> io::Result<OpenedDurability> {
        fs::create_dir_all(dir)?;
        let swept = snapshot::sweep_tmp(dir);
        let chain = snapshot::load_chain(dir);
        let snap = chain.snapshot;
        let horizon = snap.as_ref().map(|(zxid, _)| *zxid).unwrap_or(0);
        let mut d = Self::fresh(dir, opts);
        if swept > 0 {
            d.stats.dir_fsyncs += 1;
        }
        d.chain_tip = snap.as_ref().map(|(zxid, _)| *zxid);
        d.chain_len = chain.chain_len;
        if chain.newer_corrupt {
            // The live segments extend the (corrupt or unlinkable) newest
            // generation, not the chain prefix loaded: replaying them here
            // would splice a hole over the lost history. Drop them — the
            // replica recovers to a *consistent* earlier state and catches
            // the rest up from the leader via snapshot transfer.
            d.wal.clear()?;
            return Ok((d, snap, Vec::new()));
        }
        let recovery = recover_dir(dir)?;
        let suffix: Vec<(u64, Op)> = recovery
            .ops
            .into_iter()
            .filter(|(zxid, _)| *zxid > horizon)
            .collect();
        d.ops_since_snapshot = suffix.len() as u64;
        // Seed the size trigger with what already sits in the live
        // segments, so repeated crash/recover cycles cannot grow the WAL
        // past the configured bound. (Records at or below the snapshot
        // horizon — a crash between snapshot and truncation — are a rare,
        // safe overcount: they only pull the next snapshot earlier.)
        d.wal_bytes_since_snapshot = recovery.valid_bytes;
        Ok((d, snap, suffix))
    }

    /// Appends one committed op to the log (before it is applied).
    pub fn append(&mut self, zxid: u64, op: &Op) -> WalResult<()> {
        let mut payload = Vec::with_capacity(64);
        codec::put_u64(&mut payload, zxid);
        codec::encode_op(op, &mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        codec::put_u32(&mut frame, payload.len() as u32);
        codec::put_u32(&mut frame, codec::crc32(&payload));
        frame.extend_from_slice(&payload);
        let rotated = self
            .wal
            .append_frame(zxid, &frame)
            .map_err(wal_io("append"))?;
        if rotated {
            self.stats.segments_rotated += 1;
            // Rotation fsyncs the outgoing segment (before this frame was
            // written), settling everything unsynced so far; account for
            // it here or the next policy sync would double-count the bytes.
            self.stats.fsyncs += 1;
            self.stats.bytes_fsynced += self.unsynced_bytes;
            self.unsynced_bytes = 0;
            self.appends_since_sync = 0;
        }
        let len = frame.len() as u64;
        self.stats.wal_records += 1;
        self.stats.wal_bytes += len;
        self.unsynced_bytes += len;
        self.appends_since_sync += 1;
        self.ops_since_snapshot += 1;
        self.wal_bytes_since_snapshot += len;
        Ok(())
    }

    /// Under [`SyncPolicy::Pipelined`], hands everything appended since the
    /// last sync point to the sync thread *without waiting*, so the fsync
    /// overlaps whatever the caller does next (encoding the next batch,
    /// appending on the next replica). A no-op for other policies or when
    /// nothing is pending; idempotent within a batch. The matching wait
    /// happens in [`Durability::commit_batch`].
    pub fn begin_batch_sync(&mut self) -> WalResult<()> {
        let SyncPolicy::Pipelined { .. } = self.opts.sync_policy else {
            return Ok(());
        };
        if self.appends_since_sync == 0 {
            return Ok(());
        }
        let Some(file) = self.wal.current_file() else {
            return Ok(());
        };
        if self.syncer.is_none() {
            let latency = Arc::clone(&self.simulated_fsync_latency_ns);
            self.syncer = Some(Syncer::spawn(latency)?);
        }
        let Some(syncer) = self.syncer.as_ref() else {
            return Err(WalError::SyncThreadDead);
        };
        self.submitted_tickets += 1;
        syncer.enqueue(SyncJob {
            ticket: self.submitted_tickets,
            file,
            bytes: self.unsynced_bytes,
        })?;
        let outstanding = self.submitted_tickets - syncer.completed();
        self.stats.pipeline_depth_peak = self.stats.pipeline_depth_peak.max(outstanding);
        self.unsynced_bytes = 0;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Ends a committed batch: syncs per policy and writes a snapshot of
    /// `store` when the policy triggers, truncating every segment. Returns
    /// the snapshot zxid when one was taken, so the owner can truncate its
    /// in-memory log to the same horizon.
    pub fn commit_batch(&mut self, zxid: u64, store: &mut ZnodeStore) -> WalResult<Option<u64>> {
        match self.opts.sync_policy {
            SyncPolicy::EveryBatch => self.sync_now()?,
            SyncPolicy::Periodic { every_ops } => {
                if self.appends_since_sync >= every_ops.max(1) {
                    self.sync_now()?;
                }
            }
            SyncPolicy::Pipelined { depth } => {
                self.begin_batch_sync()?;
                if let Some(syncer) = &self.syncer {
                    if syncer.wait_outstanding_le(self.submitted_tickets, depth)? {
                        self.stats.pipeline_stalls += 1;
                    }
                }
            }
        }
        let by_ops = self.opts.snapshot_every_ops > 0
            && self.ops_since_snapshot >= self.opts.snapshot_every_ops;
        let by_bytes = self.opts.snapshot_max_wal_bytes > 0
            && self.wal_bytes_since_snapshot >= self.opts.snapshot_max_wal_bytes;
        if by_ops || by_bytes {
            self.take_snapshot(zxid, store, false)?;
            Ok(Some(zxid))
        } else {
            Ok(None)
        }
    }

    /// Persists a full-state snapshot received from the leader (a follower
    /// lagging beyond the truncation horizon) and resets the local log.
    /// Always full: the store did not evolve from this replica's previous
    /// snapshot, so a delta could not chain onto it.
    pub fn install_snapshot(&mut self, zxid: u64, store: &mut ZnodeStore) -> WalResult<()> {
        self.take_snapshot(zxid, store, true)
    }

    fn take_snapshot(
        &mut self,
        zxid: u64,
        store: &mut ZnodeStore,
        force_full: bool,
    ) -> WalResult<()> {
        // Settle the pipeline first: the snapshot supersedes the segments
        // about to be truncated, and the counters below assume no sync is
        // in flight.
        self.drain_pipeline()?;
        // A delta records dirty paths with their full path strings; past
        // half the store it stops being the cheaper encoding.
        let delta_base = if !force_full
            && self.opts.delta_snapshots
            && self.chain_len < self.opts.delta_chain_max
            && store.dirty_count().saturating_mul(2) < store.node_count()
        {
            self.chain_tip.filter(|tip| *tip < zxid)
        } else {
            None
        };
        if let Some(base) = delta_base {
            snapshot::write_delta(&self.dir, base, zxid, &store.delta_records())
                .map_err(wal_io("delta snapshot"))?;
            self.chain_len += 1;
            self.stats.delta_snapshots_written += 1;
        } else {
            snapshot::write(&self.dir, zxid, store).map_err(wal_io("snapshot"))?;
            self.chain_len = 0;
        }
        // write/write_delta fsync the directory after their rename.
        self.stats.dir_fsyncs += 1;
        self.chain_tip = Some(zxid);
        if snapshot::retain_latest(&self.dir, 2) > 0 {
            self.stats.dir_fsyncs += 1;
        }
        store.clear_dirty();
        self.wal.clear().map_err(wal_io("truncate"))?;
        self.stats.snapshots_written += 1;
        self.ops_since_snapshot = 0;
        self.wal_bytes_since_snapshot = 0;
        self.appends_since_sync = 0;
        self.unsynced_bytes = 0;
        Ok(())
    }

    fn sync_now(&mut self) -> WalResult<()> {
        if self.appends_since_sync == 0 {
            return Ok(());
        }
        let latency_ns = self.simulated_fsync_latency_ns.load(Ordering::Relaxed);
        if latency_ns > 0 {
            std::thread::sleep(Duration::from_nanos(latency_ns));
        }
        self.wal.sync().map_err(wal_io("fsync"))?;
        self.stats.fsyncs += 1;
        self.stats.bytes_fsynced += self.unsynced_bytes;
        self.unsynced_bytes = 0;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Blocks until every queued pipelined fsync has landed. A no-op for
    /// serial policies.
    pub fn drain_pipeline(&mut self) -> WalResult<()> {
        if let Some(syncer) = &self.syncer {
            if syncer.wait_outstanding_le(self.submitted_tickets, 0)? {
                self.stats.pipeline_stalls += 1;
            }
        }
        Ok(())
    }

    /// Changes the modeled per-fsync device latency. Takes effect on the
    /// next sync (serial policies and the sync thread both read it per
    /// round), so benches can populate a store quickly and then measure
    /// with a realistic device model.
    pub fn set_simulated_fsync_latency(&mut self, latency: Duration) {
        self.simulated_fsync_latency_ns.store(
            u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// This replica's durability counters, including the sync thread's.
    pub fn stats(&self) -> DurabilityStats {
        let mut stats = self.stats;
        stats.dir_fsyncs += self.wal.dir_fsyncs();
        if let Some(syncer) = &self.syncer {
            let p = syncer.shared.progress.lock();
            stats.fsyncs += p.fsyncs;
            stats.bytes_fsynced += p.bytes_fsynced;
            stats.pipeline_coalesced += p.coalesced;
        }
        stats
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        // Settle queued fsyncs before the handle disappears, so a clean
        // shutdown leaves nothing racing recovery (and crash-consistency
        // proptests see deterministic on-disk state). Best-effort: a failed
        // fsync here must not double-panic during unwind.
        if let Some(syncer) = &self.syncer {
            syncer.drain_best_effort(self.submitted_tickets);
        }
    }
}

/// Compact binary encoding shared by the write-ahead log and snapshots.
/// Little-endian fixed-width integers, length-prefixed byte strings, and a
/// tag byte per op variant; checksummed at the framing layer with CRC-32.
pub(crate) mod codec {
    use bytes::Bytes;
    use tropic_model::Path;

    use crate::store::Op;

    /// Version of the binary WAL record layout. The positional codec
    /// has no additive escape hatch: any change to [`Op`]'s shape or
    /// the `TAG_*` assignments must bump this constant (and the bump
    /// must be recorded in `WIRE_SCHEMAS.lock` via
    /// `tropic-analyze --bless`).
    pub const FORMAT_VERSION: u32 = 1;

    const fn make_crc_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut bit = 0;
            while bit < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                bit += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }

    static CRC_TABLE: [u32; 256] = make_crc_table();

    /// IEEE CRC-32 (the ZIP/zlib polynomial).
    pub fn crc32(data: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    pub fn put_u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }

    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
        put_u32(out, b.len() as u32);
        out.extend_from_slice(b);
    }

    pub fn put_str(out: &mut Vec<u8>, s: &str) {
        put_bytes(out, s.as_bytes());
    }

    pub fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
        match v {
            Some(x) => {
                put_u8(out, 1);
                put_u64(out, x);
            }
            None => put_u8(out, 0),
        }
    }

    pub fn put_bool(out: &mut Vec<u8>, v: bool) {
        put_u8(out, u8::from(v));
    }

    /// A failable reader over an encoded buffer.
    pub struct Cursor<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            Cursor { buf, pos: 0 }
        }

        pub fn is_done(&self) -> bool {
            self.pos == self.buf.len()
        }

        fn take(&mut self, n: usize) -> Option<&'a [u8]> {
            if self.buf.len() - self.pos < n {
                return None;
            }
            let slice = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Some(slice)
        }

        pub fn u8(&mut self) -> Option<u8> {
            self.take(1).map(|b| b[0])
        }

        pub fn u32(&mut self) -> Option<u32> {
            self.take(4)
                .and_then(|b| b.try_into().ok())
                .map(u32::from_le_bytes)
        }

        pub fn u64(&mut self) -> Option<u64> {
            self.take(8)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_le_bytes)
        }

        pub fn bytes(&mut self) -> Option<&'a [u8]> {
            let n = self.u32()? as usize;
            self.take(n)
        }

        pub fn str(&mut self) -> Option<&'a str> {
            std::str::from_utf8(self.bytes()?).ok()
        }

        pub fn opt_u64(&mut self) -> Option<Option<u64>> {
            match self.u8()? {
                0 => Some(None),
                1 => Some(Some(self.u64()?)),
                _ => None,
            }
        }

        pub fn bool(&mut self) -> Option<bool> {
            match self.u8()? {
                0 => Some(false),
                1 => Some(true),
                _ => None,
            }
        }
    }

    const TAG_CREATE: u8 = 1;
    const TAG_SET: u8 = 2;
    const TAG_DELETE: u8 = 3;
    const TAG_PURGE: u8 = 4;
    const TAG_MULTI: u8 = 5;

    pub fn encode_op(op: &Op, out: &mut Vec<u8>) {
        match op {
            Op::Create {
                path,
                data,
                ephemeral_owner,
                sequential,
            } => {
                put_u8(out, TAG_CREATE);
                put_str(out, &path.to_string());
                put_bytes(out, data);
                put_opt_u64(out, *ephemeral_owner);
                put_bool(out, *sequential);
            }
            Op::SetData {
                path,
                data,
                expected_version,
            } => {
                put_u8(out, TAG_SET);
                put_str(out, &path.to_string());
                put_bytes(out, data);
                put_opt_u64(out, *expected_version);
            }
            Op::Delete {
                path,
                expected_version,
            } => {
                put_u8(out, TAG_DELETE);
                put_str(out, &path.to_string());
                put_opt_u64(out, *expected_version);
            }
            Op::PurgeSession { session } => {
                put_u8(out, TAG_PURGE);
                put_u64(out, *session);
            }
            Op::Multi { ops } => {
                put_u8(out, TAG_MULTI);
                put_u32(out, ops.len() as u32);
                for sub in ops {
                    encode_op(sub, out);
                }
            }
        }
    }

    pub fn decode_op(cur: &mut Cursor<'_>) -> Option<Op> {
        match cur.u8()? {
            TAG_CREATE => Some(Op::Create {
                path: Path::parse(cur.str()?).ok()?,
                data: Bytes::copy_from_slice(cur.bytes()?),
                ephemeral_owner: cur.opt_u64()?,
                sequential: cur.bool()?,
            }),
            TAG_SET => Some(Op::SetData {
                path: Path::parse(cur.str()?).ok()?,
                data: Bytes::copy_from_slice(cur.bytes()?),
                expected_version: cur.opt_u64()?,
            }),
            TAG_DELETE => Some(Op::Delete {
                path: Path::parse(cur.str()?).ok()?,
                expected_version: cur.opt_u64()?,
            }),
            TAG_PURGE => Some(Op::PurgeSession {
                session: cur.u64()?,
            }),
            TAG_MULTI => {
                let count = cur.u32()?;
                // No pre-allocation from wire-claimed counts: the cursor
                // bounds the loop even if the count is absurd.
                let mut ops = Vec::new();
                for _ in 0..count {
                    ops.push(decode_op(cur)?);
                }
                Some(Op::Multi { ops })
            }
            _ => None,
        }
    }
}

/// Length-prefixed, CRC-checksummed stream framing — the WAL record layout
/// (`[len: u32 LE][crc32: u32 LE][payload]`, the same frame `scan_segment`
/// decodes from disk) lifted onto arbitrary `Read`/`Write` byte streams so
/// network peers can exchange opaque payloads with the same integrity
/// guarantees the log has on disk.
///
/// The reader is *incremental*: [`FrameReader`](frame::FrameReader)
/// buffers partial reads (a frame split across arbitrarily many TCP
/// segments reassembles), returns at most one payload per call, and fails
/// **typed** — an oversized length prefix or a checksum mismatch is a
/// [`FrameError`](frame::FrameError), never a misparse. After
/// [`Oversized`](frame::FrameError::Oversized) or
/// [`Crc`](frame::FrameError::Crc) the stream is unsynchronized and must
/// be closed.
pub mod frame {
    use std::io::{self, Read, Write};

    use super::{codec, le_u32_at};

    /// Default cap on one frame's payload size. Anything larger is
    /// rejected as [`FrameError::Oversized`] *before* the payload is
    /// buffered, so a hostile or corrupt length prefix cannot balloon
    /// memory.
    pub const DEFAULT_MAX_FRAME_BYTES: u32 = 4 << 20;

    /// Typed failures of the frame layer.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum FrameError {
        /// The stream ended cleanly on a frame boundary.
        Closed,
        /// The stream ended mid-frame: a partial header or payload was
        /// read and can never complete.
        Truncated {
            /// Bytes still buffered when the stream ended.
            buffered: usize,
        },
        /// The length prefix exceeds the configured cap; the frame was
        /// rejected without buffering the payload.
        Oversized {
            /// The length the prefix declared.
            len: u32,
            /// The configured cap.
            max: u32,
        },
        /// The payload failed its CRC-32 check.
        Crc {
            /// Checksum carried by the frame header.
            expected: u32,
            /// Checksum computed over the received payload.
            got: u32,
        },
        /// An underlying I/O failure (other than timeout, which surfaces
        /// as `Ok(None)` from [`FrameReader::read_from`]).
        Io(String),
    }

    impl std::fmt::Display for FrameError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                FrameError::Closed => write!(f, "stream closed"),
                FrameError::Truncated { buffered } => {
                    write!(f, "stream ended mid-frame ({buffered} bytes buffered)")
                }
                FrameError::Oversized { len, max } => {
                    write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
                }
                FrameError::Crc { expected, got } => {
                    write!(
                        f,
                        "frame CRC mismatch: header {expected:#010x}, payload {got:#010x}"
                    )
                }
                FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            }
        }
    }

    impl std::error::Error for FrameError {}

    /// Writes one framed payload: `[len][crc32][payload]`, then flushes.
    pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
        // The length prefix is 32-bit; a payload beyond it must fail typed
        // here, not wrap into a prefix that desynchronizes the receiver.
        let len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversized {
            len: u32::MAX,
            max: u32::MAX,
        })?;
        let mut head = Vec::with_capacity(8);
        codec::put_u32(&mut head, len);
        codec::put_u32(&mut head, codec::crc32(payload));
        let io = |e: io::Error| FrameError::Io(e.to_string());
        w.write_all(&head).map_err(io)?;
        w.write_all(payload).map_err(io)?;
        w.flush().map_err(io)?;
        Ok(())
    }

    /// Incremental frame decoder over a byte stream.
    ///
    /// Call [`FrameReader::read_from`] in a loop: it returns `Ok(Some(..))`
    /// once a whole frame has been buffered and verified, `Ok(None)` when
    /// the underlying read timed out (for sockets with a read timeout —
    /// partial state is retained, so the caller can check a stop flag and
    /// call again), and a typed [`FrameError`] otherwise.
    #[derive(Debug, Default)]
    pub struct FrameReader {
        buf: Vec<u8>,
    }

    impl FrameReader {
        /// A reader with empty buffer state.
        pub fn new() -> Self {
            Self::default()
        }

        /// Bytes currently buffered (a partial or not-yet-drained frame).
        pub fn buffered(&self) -> usize {
            self.buf.len()
        }

        /// Attempts to produce the next frame, reading from `r` as needed.
        ///
        /// `max_bytes` caps the payload length; a larger length prefix is
        /// rejected as [`FrameError::Oversized`] without buffering the
        /// payload.
        pub fn read_from(
            &mut self,
            r: &mut impl Read,
            max_bytes: u32,
        ) -> Result<Option<Vec<u8>>, FrameError> {
            loop {
                // A complete frame may already sit in the buffer (several
                // frames can arrive in one read); drain before reading more.
                if let Some(payload) = self.try_take_frame(max_bytes)? {
                    return Ok(Some(payload));
                }
                let mut chunk = [0u8; 4096];
                match r.read(&mut chunk) {
                    Ok(0) => {
                        return Err(if self.buf.is_empty() {
                            FrameError::Closed
                        } else {
                            FrameError::Truncated {
                                buffered: self.buf.len(),
                            }
                        });
                    }
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Ok(None);
                    }
                    Err(e) => return Err(FrameError::Io(e.to_string())),
                }
            }
        }

        /// Decodes one frame from the front of the buffer, if complete.
        fn try_take_frame(&mut self, max_bytes: u32) -> Result<Option<Vec<u8>>, FrameError> {
            if self.buf.len() < 8 {
                return Ok(None);
            }
            let (Some(len), Some(expected)) = (le_u32_at(&self.buf, 0), le_u32_at(&self.buf, 4))
            else {
                return Ok(None);
            };
            if len > max_bytes {
                return Err(FrameError::Oversized {
                    len,
                    max: max_bytes,
                });
            }
            let total = 8 + len as usize;
            if self.buf.len() < total {
                return Ok(None);
            }
            let payload = self.buf[8..total].to_vec();
            let got = codec::crc32(&payload);
            if got != expected {
                return Err(FrameError::Crc { expected, got });
            }
            self.buf.drain(..total);
            Ok(Some(payload))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use bytes::Bytes;
    use tropic_model::Path;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn create_op(path: &str) -> Op {
        Op::Create {
            path: p(path),
            data: Bytes::from_static(b"payload"),
            ephemeral_owner: None,
            sequential: false,
        }
    }

    #[test]
    fn op_codec_roundtrip_all_variants() {
        let ops = vec![
            Op::Create {
                path: p("/a/b"),
                data: Bytes::from_static(b"x"),
                ephemeral_owner: Some(7),
                sequential: true,
            },
            Op::SetData {
                path: p("/a"),
                data: Bytes::new(),
                expected_version: Some(3),
            },
            Op::Delete {
                path: p("/a/b"),
                expected_version: None,
            },
            Op::PurgeSession { session: 42 },
            Op::Multi {
                ops: vec![create_op("/q"), Op::PurgeSession { session: 1 }],
            },
        ];
        for op in &ops {
            let mut buf = Vec::new();
            codec::encode_op(op, &mut buf);
            let mut cur = codec::Cursor::new(&buf);
            let back = codec::decode_op(&mut cur).expect("decodes");
            assert!(cur.is_done());
            assert_eq!(format!("{back:?}"), format!("{op:?}"));
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic test vector for the IEEE polynomial.
        assert_eq!(codec::crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(codec::crc32(b""), 0);
    }

    #[test]
    fn append_recover_roundtrip() {
        let tmp = TempDir::new("tropic-wal-roundtrip");
        let mut d = Durability::create(tmp.path(), DurabilityOptions::default()).unwrap();
        for i in 1..=10u64 {
            d.append(i, &create_op(&format!("/n{i}"))).unwrap();
        }
        drop(d);
        let rec = recover_dir(tmp.path()).unwrap();
        assert_eq!(rec.ops.len(), 10);
        assert!(!rec.truncated_tail);
        assert_eq!(rec.ops[0].0, 1);
        assert_eq!(rec.ops[9].0, 10);
    }

    #[test]
    fn small_segments_rotate_and_recover_in_order() {
        let tmp = TempDir::new("tropic-wal-rotate");
        let opts = DurabilityOptions {
            segment_max_bytes: 64,
            snapshot_every_ops: 0,
            snapshot_max_wal_bytes: 0,
            ..DurabilityOptions::default()
        };
        let mut d = Durability::create(tmp.path(), opts).unwrap();
        for i in 1..=50u64 {
            d.append(i, &create_op(&format!("/node{i}"))).unwrap();
        }
        assert!(d.stats().segments_rotated > 0);
        drop(d);
        assert!(list_segments(tmp.path()).unwrap().len() > 1);
        let rec = recover_dir(tmp.path()).unwrap();
        let zxids: Vec<u64> = rec.ops.iter().map(|(z, _)| *z).collect();
        assert_eq!(zxids, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let tmp = TempDir::new("tropic-wal-torn");
        let mut d = Durability::create(tmp.path(), DurabilityOptions::default()).unwrap();
        for i in 1..=5u64 {
            d.append(i, &create_op(&format!("/n{i}"))).unwrap();
        }
        drop(d);
        // Simulate a crash mid-write: garbage after the last full record.
        let (_, seg) = list_segments(tmp.path()).unwrap().pop().unwrap();
        let mut data = fs::read(&seg).unwrap();
        let clean_len = data.len();
        data.extend_from_slice(&[0xAB; 13]);
        fs::write(&seg, &data).unwrap();
        let rec = recover_dir(tmp.path()).unwrap();
        assert_eq!(rec.ops.len(), 5);
        assert!(rec.truncated_tail);
        // The tear was physically truncated away.
        assert_eq!(fs::read(&seg).unwrap().len(), clean_len);
        // A second recovery is clean.
        let rec = recover_dir(tmp.path()).unwrap();
        assert_eq!(rec.ops.len(), 5);
        assert!(!rec.truncated_tail);
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_valid() {
        let tmp = TempDir::new("tropic-wal-corrupt");
        let mut d = Durability::create(tmp.path(), DurabilityOptions::default()).unwrap();
        for i in 1..=5u64 {
            d.append(i, &create_op(&format!("/n{i}"))).unwrap();
        }
        drop(d);
        let (_, seg) = list_segments(tmp.path()).unwrap().pop().unwrap();
        let mut data = fs::read(&seg).unwrap();
        // Flip a byte inside the last record's payload: its CRC now fails.
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let rec = recover_dir(tmp.path()).unwrap();
        assert_eq!(rec.ops.len(), 4, "replay stops at the last valid record");
        assert!(rec.truncated_tail);
    }

    #[test]
    fn snapshot_policy_truncates_segments() {
        let tmp = TempDir::new("tropic-wal-snap");
        let opts = DurabilityOptions {
            snapshot_every_ops: 4,
            snapshot_max_wal_bytes: 0,
            ..DurabilityOptions::default()
        };
        let mut d = Durability::create(tmp.path(), opts.clone()).unwrap();
        let mut store = ZnodeStore::new();
        for i in 1..=10u64 {
            let op = create_op(&format!("/n{i}"));
            d.append(i, &op).unwrap();
            let _ = store.apply(i, &op);
            d.commit_batch(i, &mut store).unwrap();
        }
        assert_eq!(d.stats().snapshots_written, 2, "at zxid 4 and 8");
        drop(d);
        // Only the post-snapshot suffix remains on disk as WAL records.
        let (reopened, snap, suffix) = Durability::open(tmp.path(), opts).unwrap();
        let (snap_zxid, snap_store) = snap.expect("snapshot exists");
        assert_eq!(snap_zxid, 8);
        assert_eq!(snap_store.node_count(), 9);
        assert_eq!(suffix.len(), 2, "zxids 9 and 10");
        assert_eq!(reopened.stats().snapshots_written, 0);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_without_splicing_the_wal() {
        let tmp = TempDir::new("tropic-wal-splice");
        let opts = DurabilityOptions {
            snapshot_every_ops: 4,
            snapshot_max_wal_bytes: 0,
            ..DurabilityOptions::default()
        };
        let mut d = Durability::create(tmp.path(), opts.clone()).unwrap();
        let mut store = ZnodeStore::new();
        for i in 1..=10u64 {
            let op = create_op(&format!("/n{i}"));
            d.append(i, &op).unwrap();
            let _ = store.apply(i, &op);
            d.commit_batch(i, &mut store).unwrap();
        }
        drop(d);
        // Bit rot hits the newest snapshot (zxid 8); the WAL on disk holds
        // only records 9-10, which extend *it*, not the zxid-4 generation.
        let snap8 = tmp.path().join(snapshot::file_name(8));
        let mut data = fs::read(&snap8).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&snap8, &data).unwrap();

        let (_, snap, suffix) = Durability::open(tmp.path(), opts).unwrap();
        let (zxid, store) = snap.expect("older generation still valid");
        assert_eq!(zxid, 4);
        assert_eq!(
            store.node_count(),
            5,
            "recovers the older generation's consistent state"
        );
        assert!(
            suffix.is_empty(),
            "records 9-10 must not splice onto the zxid-4 state over the 5-8 hole"
        );
        assert!(
            list_segments(tmp.path()).unwrap().is_empty(),
            "the untrusted suffix is discarded on disk too"
        );
    }

    #[test]
    fn open_sweeps_half_written_snapshot_tmp_files() {
        let tmp = TempDir::new("tropic-wal-tmp-sweep");
        let mut d = Durability::create(tmp.path(), DurabilityOptions::default()).unwrap();
        d.append(1, &create_op("/a")).unwrap();
        drop(d);
        // A crash inside snapshot::write leaves the temp file behind.
        let orphan = tmp.path().join(format!("{}.tmp", snapshot::file_name(9)));
        fs::write(&orphan, b"half-written").unwrap();
        let _ = Durability::open(tmp.path(), DurabilityOptions::default()).unwrap();
        assert!(!orphan.exists(), "orphaned .tmp must be swept at open");
    }

    #[test]
    fn rotation_sync_never_double_counts_bytes() {
        let tmp = TempDir::new("tropic-wal-rotate-sync");
        let opts = DurabilityOptions {
            sync_policy: SyncPolicy::Periodic { every_ops: 7 },
            snapshot_every_ops: 0,
            snapshot_max_wal_bytes: 0,
            segment_max_bytes: 64, // rotate mid sync-window
            ..DurabilityOptions::default()
        };
        let mut d = Durability::create(tmp.path(), opts).unwrap();
        let mut store = ZnodeStore::new();
        for i in 1..=50u64 {
            d.append(i, &create_op(&format!("/node{i}"))).unwrap();
            d.commit_batch(i, &mut store).unwrap();
        }
        d.commit_batch(50, &mut store).unwrap();
        let s = d.stats();
        assert!(s.segments_rotated > 0);
        assert!(
            s.bytes_fsynced <= s.wal_bytes,
            "fsynced {} exceeds written {}",
            s.bytes_fsynced,
            s.wal_bytes
        );
    }

    #[test]
    fn every_batch_policy_fsyncs_per_batch() {
        let tmp = TempDir::new("tropic-wal-sync");
        let mut d = Durability::create(
            tmp.path(),
            DurabilityOptions {
                snapshot_every_ops: 0,
                snapshot_max_wal_bytes: 0,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        let mut store = ZnodeStore::new();
        for i in 1..=3u64 {
            d.append(i, &create_op(&format!("/n{i}"))).unwrap();
            d.commit_batch(i, &mut store).unwrap();
        }
        let s = d.stats();
        assert_eq!(s.fsyncs, 3);
        assert_eq!(s.bytes_fsynced, s.wal_bytes);
    }

    #[test]
    fn pipelined_policy_syncs_every_batch_and_recovers_all_records() {
        let tmp = TempDir::new("tropic-wal-pipelined");
        let opts = DurabilityOptions {
            sync_policy: SyncPolicy::Pipelined { depth: 4 },
            snapshot_every_ops: 0,
            snapshot_max_wal_bytes: 0,
            ..DurabilityOptions::default()
        };
        let mut d = Durability::create(tmp.path(), opts.clone()).unwrap();
        let mut store = ZnodeStore::new();
        for i in 1..=20u64 {
            d.append(i, &create_op(&format!("/n{i}"))).unwrap();
            d.commit_batch(i, &mut store).unwrap();
        }
        d.drain_pipeline().unwrap();
        let s = d.stats();
        assert!(s.fsyncs > 0, "the sync thread must actually fsync");
        assert_eq!(
            s.bytes_fsynced, s.wal_bytes,
            "after a drain every appended byte is settled"
        );
        drop(d);
        let (_, snap, suffix) = Durability::open(tmp.path(), opts).unwrap();
        assert!(snap.is_none());
        assert_eq!(suffix.len(), 20, "no acknowledged record may be lost");
        assert_eq!(suffix.last().unwrap().0, 20);
    }

    #[test]
    fn pipelined_depth_zero_stalls_every_batch() {
        let tmp = TempDir::new("tropic-wal-pipelined-strict");
        let opts = DurabilityOptions {
            sync_policy: SyncPolicy::Pipelined { depth: 0 },
            snapshot_every_ops: 0,
            snapshot_max_wal_bytes: 0,
            ..DurabilityOptions::default()
        };
        let mut d = Durability::create(tmp.path(), opts).unwrap();
        let mut store = ZnodeStore::new();
        for i in 1..=5u64 {
            d.append(i, &create_op(&format!("/n{i}"))).unwrap();
            d.commit_batch(i, &mut store).unwrap();
        }
        let s = d.stats();
        assert_eq!(
            s.pipeline_stalls, 5,
            "depth 0 waits for its own fsync on every batch"
        );
        assert!(s.pipeline_depth_peak >= 1);
        assert_eq!(s.bytes_fsynced, s.wal_bytes);
    }

    #[test]
    fn small_dirty_set_snapshots_as_delta_and_recovers() {
        let tmp = TempDir::new("tropic-wal-delta");
        let opts = DurabilityOptions {
            snapshot_every_ops: 10,
            snapshot_max_wal_bytes: 0,
            ..DurabilityOptions::default()
        };
        let mut d = Durability::create(tmp.path(), opts.clone()).unwrap();
        let mut store = ZnodeStore::new();
        // Round one dirties the whole store (10 creates on 11 nodes): full.
        for i in 1..=10u64 {
            let op = create_op(&format!("/n{i}"));
            d.append(i, &op).unwrap();
            let _ = store.apply(i, &op);
            d.commit_batch(i, &mut store).unwrap();
        }
        // Round two touches a single node out of 11: delta.
        for i in 11..=20u64 {
            let op = Op::SetData {
                path: p("/n1"),
                data: Bytes::from(format!("v{i}")),
                expected_version: None,
            };
            d.append(i, &op).unwrap();
            let _ = store.apply(i, &op);
            d.commit_batch(i, &mut store).unwrap();
        }
        let s = d.stats();
        assert_eq!(s.snapshots_written, 2);
        assert_eq!(s.delta_snapshots_written, 1, "second round is a delta");
        assert!(tmp.path().join(snapshot::file_name(10)).exists());
        assert!(tmp.path().join(snapshot::delta_file_name(20)).exists());
        drop(d);
        let (_, snap, suffix) = Durability::open(tmp.path(), opts).unwrap();
        let (zxid, recovered) = snap.expect("chain recovers");
        assert_eq!(zxid, 20);
        assert!(suffix.is_empty());
        assert_eq!(recovered, store);
    }

    #[test]
    fn delta_chain_max_forces_periodic_full_compaction() {
        let tmp = TempDir::new("tropic-wal-delta-compact");
        let opts = DurabilityOptions {
            snapshot_every_ops: 2,
            snapshot_max_wal_bytes: 0,
            delta_chain_max: 1,
            ..DurabilityOptions::default()
        };
        let mut d = Durability::create(tmp.path(), opts).unwrap();
        let mut store = ZnodeStore::new();
        for i in 1..=10u64 {
            let op = create_op(&format!("/n{i}"));
            d.append(i, &op).unwrap();
            let _ = store.apply(i, &op);
            d.commit_batch(i, &mut store).unwrap();
        }
        // Ten single-touch rounds of two ops each: snapshot every round.
        for i in 11..=30u64 {
            let op = Op::SetData {
                path: p("/n1"),
                data: Bytes::from(format!("v{i}")),
                expected_version: None,
            };
            d.append(i, &op).unwrap();
            let _ = store.apply(i, &op);
            d.commit_batch(i, &mut store).unwrap();
        }
        let s = d.stats();
        assert!(s.delta_snapshots_written > 0);
        assert!(
            s.snapshots_written > 2 * s.delta_snapshots_written,
            "chain_max 1 alternates full/delta: {} snapshots, {} deltas",
            s.snapshots_written,
            s.delta_snapshots_written
        );
    }

    mod frame_layer {
        use std::io::Read;

        use crate::wal::frame::{write_frame, FrameError, FrameReader};

        /// Wraps a byte slice, serving at most `chunk` bytes per read —
        /// a socket delivering arbitrarily small TCP segments.
        struct Trickle<'a> {
            data: &'a [u8],
            pos: usize,
            chunk: usize,
        }

        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = (self.data.len() - self.pos).min(self.chunk).min(buf.len());
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }

        fn framed(payloads: &[&[u8]]) -> Vec<u8> {
            let mut out = Vec::new();
            for p in payloads {
                write_frame(&mut out, p).unwrap();
            }
            out
        }

        #[test]
        fn roundtrip_one_byte_at_a_time() {
            let wire = framed(&[b"hello", b"", b"world"]);
            let mut r = Trickle {
                data: &wire,
                pos: 0,
                chunk: 1,
            };
            let mut reader = FrameReader::new();
            let mut got = Vec::new();
            loop {
                match reader.read_from(&mut r, 1 << 20) {
                    Ok(Some(p)) => got.push(p),
                    Ok(None) => unreachable!("Trickle never times out"),
                    Err(FrameError::Closed) => break,
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            assert_eq!(got, vec![b"hello".to_vec(), Vec::new(), b"world".to_vec()]);
        }

        #[test]
        fn several_frames_in_one_read_all_drain() {
            let wire = framed(&[b"a", b"b", b"c"]);
            let mut cursor = &wire[..];
            let mut reader = FrameReader::new();
            for want in [b"a", b"b", b"c"] {
                let got = reader.read_from(&mut cursor, 1 << 20).unwrap().unwrap();
                assert_eq!(got, want);
            }
            assert!(matches!(
                reader.read_from(&mut cursor, 1 << 20),
                Err(FrameError::Closed)
            ));
        }

        #[test]
        fn corrupt_crc_rejected_typed() {
            let mut wire = framed(&[b"payload"]);
            let last = wire.len() - 1;
            wire[last] ^= 0xFF;
            let mut cursor = &wire[..];
            let mut reader = FrameReader::new();
            assert!(matches!(
                reader.read_from(&mut cursor, 1 << 20),
                Err(FrameError::Crc { .. })
            ));
        }

        #[test]
        fn oversized_length_prefix_rejected_before_buffering() {
            let wire = framed(&[&[0u8; 64]]);
            let mut cursor = &wire[..];
            let mut reader = FrameReader::new();
            match reader.read_from(&mut cursor, 16) {
                Err(FrameError::Oversized { len: 64, max: 16 }) => {}
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn eof_mid_frame_is_truncated_not_closed() {
            let wire = framed(&[b"payload"]);
            let cut = &wire[..wire.len() - 2];
            let mut cursor = cut;
            let mut reader = FrameReader::new();
            assert!(matches!(
                reader.read_from(&mut cursor, 1 << 20),
                Err(FrameError::Truncated { .. })
            ));
        }
    }
}

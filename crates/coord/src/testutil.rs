//! Small self-cleaning filesystem helpers for tests, benches, and
//! examples (a `tempfile`-style stand-in, since the workspace builds
//! offline without the real crate).

use std::path::{Path as StdPath, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely-named directory under the system temp dir, removed
/// recursively when dropped — so `cargo test -q` leaves no litter behind.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory whose name starts with `prefix`.
    pub fn new(prefix: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let unique = format!(
            "{prefix}-{}-{}-{}",
            std::process::id(),
            nanos,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &StdPath {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_dirs_are_unique_and_cleaned() {
        let a = TempDir::new("tropic-testutil");
        let b = TempDir::new("tropic-testutil");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("x"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists(), "dropped TempDir removes its contents");
    }
}

//! Simulated network between ensemble replicas.
//!
//! The broadcast protocol sends its propose/ack/commit traffic through a
//! [`SimNet`], which can drop messages probabilistically and partition the
//! replica set into isolated groups. This is how the test suite exercises
//! quorum loss and leader changes without real sockets.

use std::collections::HashSet;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a replica endpoint on the simulated network.
pub type NodeId = usize;

/// Counters describing simulated network activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped by fault injection or partitions.
    pub dropped: u64,
}

struct NetState {
    /// Disjoint groups of mutually-reachable nodes. Empty = fully connected.
    partitions: Vec<HashSet<NodeId>>,
    drop_prob: f64,
    rng: StdRng,
    stats: NetStats,
}

/// A fault-injectable message fabric.
pub struct SimNet {
    state: Mutex<NetState>,
}

impl SimNet {
    /// Creates a fully-connected, lossless network. `seed` makes drop rolls
    /// reproducible.
    pub fn new(seed: u64) -> Self {
        SimNet {
            state: Mutex::new(NetState {
                partitions: Vec::new(),
                drop_prob: 0.0,
                rng: StdRng::seed_from_u64(seed),
                stats: NetStats::default(),
            }),
        }
    }

    /// Splits the network into isolated groups. Nodes absent from every
    /// group can reach nobody.
    pub fn partition(&self, groups: Vec<Vec<NodeId>>) {
        let mut st = self.state.lock();
        st.partitions = groups
            .into_iter()
            .map(|g| g.into_iter().collect())
            .collect();
    }

    /// Removes all partitions.
    pub fn heal(&self) {
        self.state.lock().partitions.clear();
    }

    /// Sets the independent per-message drop probability.
    pub fn set_drop_prob(&self, p: f64) {
        self.state.lock().drop_prob = p.clamp(0.0, 1.0);
    }

    /// Decides whether a message from `from` to `to` is delivered, updating
    /// the stats counters. Self-delivery always succeeds.
    pub fn deliver(&self, from: NodeId, to: NodeId) -> bool {
        let mut st = self.state.lock();
        let ok = if from == to {
            true
        } else if !st.partitions.is_empty() {
            let same_group = st
                .partitions
                .iter()
                .any(|g| g.contains(&from) && g.contains(&to));
            if same_group {
                let p = st.drop_prob;
                !(p > 0.0 && st.rng.gen_bool(p))
            } else {
                false
            }
        } else {
            let p = st.drop_prob;
            !(p > 0.0 && st.rng.gen_bool(p))
        };
        if ok {
            st.stats.delivered += 1;
        } else {
            st.stats.dropped += 1;
        }
        ok
    }

    /// Snapshot of delivery counters.
    pub fn stats(&self) -> NetStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_by_default() {
        let net = SimNet::new(1);
        assert!(net.deliver(0, 1));
        assert!(net.deliver(2, 0));
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn partition_blocks_cross_group() {
        let net = SimNet::new(1);
        net.partition(vec![vec![0, 1], vec![2]]);
        assert!(net.deliver(0, 1));
        assert!(!net.deliver(0, 2));
        assert!(!net.deliver(2, 1));
        // Node 3 is in no group: unreachable.
        assert!(!net.deliver(0, 3));
        net.heal();
        assert!(net.deliver(0, 2));
    }

    #[test]
    fn self_delivery_survives_partition() {
        let net = SimNet::new(1);
        net.partition(vec![vec![0], vec![1]]);
        assert!(net.deliver(1, 1));
    }

    #[test]
    fn drop_prob_zero_and_one() {
        let net = SimNet::new(7);
        net.set_drop_prob(0.0);
        assert!((0..100).all(|_| net.deliver(0, 1)));
        net.set_drop_prob(1.0);
        assert!((0..100).all(|_| !net.deliver(0, 1)));
        let s = net.stats();
        assert_eq!(s.delivered, 100);
        assert_eq!(s.dropped, 100);
    }

    #[test]
    fn drop_prob_is_probabilistic() {
        let net = SimNet::new(42);
        net.set_drop_prob(0.5);
        let delivered = (0..1000).filter(|_| net.deliver(0, 1)).count();
        assert!(delivered > 300 && delivered < 700, "delivered {delivered}");
    }
}

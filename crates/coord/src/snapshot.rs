//! Fuzzy snapshots of the znode store — full and incremental (delta).
//!
//! A **full** snapshot (`snap-<zxid>.bin`, magic `TRPCSNP1`) captures the
//! *entire* replicated state — data, versions, zxids, ephemeral owners, and
//! sequential counters — at a batch boundary, tagged with the zxid of the
//! last op it reflects. A **delta** snapshot (`delta-<zxid>.bin`, magic
//! `TRPCDLT1`) captures only the paths dirtied since the previous snapshot:
//! it names the zxid of that base (`base_zxid`) and carries
//! [`DeltaRecord`]s encoded with the same WAL codec. Deltas form a
//! chain — full at the base, each delta's `base_zxid` equal to the previous
//! tip — resolved by [`load_chain`]. Together with the write-ahead log
//! suffix after the chain tip ([`crate::wal`]), the chain reconstructs a
//! store byte-identical to the live one, which is what lets replicas
//! truncate both their on-disk segments and their in-memory op logs
//! (ZooKeeper's snapshot + txn-log recovery scheme, paper §2.3).
//!
//! Files are written atomically (temp file, fsync, rename, directory
//! fsync) and carry a magic header plus a trailing CRC-32; loaders skip
//! anything that fails validation, falling back to the previous full
//! generation or the longest valid chain prefix. Old directories that hold
//! only `snap-*` files load unchanged: a chain of length zero.

use std::fs;
use std::io::{self, Write};
use std::path::{Path as StdPath, PathBuf};

use crate::store::{DeltaRecord, ZnodeStore};
use crate::wal::codec;

const MAGIC: &[u8; 8] = b"TRPCSNP1";
const DELTA_MAGIC: &[u8; 8] = b"TRPCDLT1";
const PREFIX: &str = "snap-";
const DELTA_PREFIX: &str = "delta-";
const SUFFIX: &str = ".bin";
const TAG_PUT: u8 = 1;
const TAG_TOMBSTONE: u8 = 2;

/// File name of the full snapshot tagged with `zxid`.
pub fn file_name(zxid: u64) -> String {
    format!("{PREFIX}{zxid:016x}{SUFFIX}")
}

/// File name of the delta snapshot whose tip is `zxid`.
pub fn delta_file_name(zxid: u64) -> String {
    format!("{DELTA_PREFIX}{zxid:016x}{SUFFIX}")
}

fn list_prefixed(dir: &StdPath, prefix: &str) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(hex) = name
            .strip_prefix(prefix)
            .and_then(|n| n.strip_suffix(SUFFIX))
        else {
            continue;
        };
        if let Ok(zxid) = u64::from_str_radix(hex, 16) {
            out.push((zxid, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(zxid, _)| *zxid);
    out
}

/// Full snapshot files in `dir`, sorted ascending by zxid.
pub fn list(dir: &StdPath) -> Vec<(u64, PathBuf)> {
    list_prefixed(dir, PREFIX)
}

/// Delta snapshot files in `dir`, sorted ascending by tip zxid.
pub fn list_deltas(dir: &StdPath) -> Vec<(u64, PathBuf)> {
    list_prefixed(dir, DELTA_PREFIX)
}

/// Atomically writes a full snapshot of `store` tagged with `zxid`,
/// returning the file size in bytes.
pub fn write(dir: &StdPath, zxid: u64, store: &ZnodeStore) -> io::Result<u64> {
    let mut body = Vec::with_capacity(4_096);
    codec::put_u64(&mut body, zxid);
    store.encode_into(&mut body);
    write_atomic(dir, &file_name(zxid), MAGIC, &body)
}

/// Atomically writes a delta snapshot with tip `zxid` chained onto the
/// snapshot at `base_zxid`, returning the file size in bytes.
pub fn write_delta(
    dir: &StdPath,
    base_zxid: u64,
    zxid: u64,
    records: &[DeltaRecord],
) -> io::Result<u64> {
    let mut body = Vec::with_capacity(1_024);
    codec::put_u64(&mut body, zxid);
    codec::put_u64(&mut body, base_zxid);
    codec::put_u32(&mut body, records.len() as u32);
    for rec in records {
        encode_delta_record(rec, &mut body);
    }
    write_atomic(dir, &delta_file_name(zxid), DELTA_MAGIC, &body)
}

fn write_atomic(dir: &StdPath, name: &str, magic: &[u8; 8], body: &[u8]) -> io::Result<u64> {
    let crc = codec::crc32(body);
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    {
        let mut file = fs::File::create(&tmp_path)?;
        file.write_all(magic)?;
        file.write_all(body)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_data()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // The rename is only durable once the directory is fsynced; this must
    // succeed before the caller may truncate the WAL the snapshot covers,
    // so a failure propagates instead of being swallowed.
    fs::File::open(dir)?.sync_all()?;
    Ok((magic.len() + body.len() + 4) as u64)
}

fn encode_delta_record(rec: &DeltaRecord, out: &mut Vec<u8>) {
    match rec {
        DeltaRecord::Put {
            path,
            data,
            czxid,
            mzxid,
            version,
            ephemeral_owner,
            cseq,
        } => {
            codec::put_u8(out, TAG_PUT);
            codec::put_str(out, &path.to_string());
            codec::put_bytes(out, data);
            codec::put_u64(out, *czxid);
            codec::put_u64(out, *mzxid);
            codec::put_u64(out, *version);
            codec::put_opt_u64(out, *ephemeral_owner);
            codec::put_u64(out, *cseq);
        }
        DeltaRecord::Tombstone { path } => {
            codec::put_u8(out, TAG_TOMBSTONE);
            codec::put_str(out, &path.to_string());
        }
    }
}

fn decode_delta_record(cur: &mut codec::Cursor<'_>) -> Option<DeltaRecord> {
    match cur.u8()? {
        TAG_PUT => {
            let path = tropic_model::Path::parse(cur.str()?).ok()?;
            let data = bytes::Bytes::copy_from_slice(cur.bytes()?);
            Some(DeltaRecord::Put {
                path,
                data,
                czxid: cur.u64()?,
                mzxid: cur.u64()?,
                version: cur.u64()?,
                ephemeral_owner: cur.opt_u64()?,
                cseq: cur.u64()?,
            })
        }
        TAG_TOMBSTONE => Some(DeltaRecord::Tombstone {
            path: tropic_model::Path::parse(cur.str()?).ok()?,
        }),
        _ => None,
    }
}

/// Loads the newest snapshot in `dir` that passes validation (magic, CRC,
/// full decode, zxid matching the file name). Corrupt generations are
/// skipped, not fatal.
pub fn load_latest(dir: &StdPath) -> Option<(u64, ZnodeStore)> {
    load_latest_detailed(dir).0
}

/// Like [`load_latest`], but also reports whether a *newer* generation
/// file existed and failed validation. That matters to recovery: the live
/// WAL segments always extend the newest snapshot taken (truncation
/// deletes everything older), so when the newest generation is corrupt the
/// suffix on disk is **not contiguous** with the older generation loaded
/// here and must not be replayed on top of it.
pub fn load_latest_detailed(dir: &StdPath) -> (Option<(u64, ZnodeStore)>, bool) {
    let mut newer_corrupt = false;
    let mut snaps = list(dir);
    while let Some((zxid, path)) = snaps.pop() {
        if let Some(store) = load_file(&path, zxid) {
            return (Some((zxid, store)), newer_corrupt);
        }
        newer_corrupt = true;
    }
    (None, newer_corrupt)
}

/// Result of resolving a directory's snapshot chain: the newest valid full
/// snapshot plus every delta that links onto it.
#[derive(Debug)]
pub struct RecoveredChain {
    /// Store and zxid at the resolved chain tip; `None` for a fresh dir.
    pub snapshot: Option<(u64, ZnodeStore)>,
    /// Number of deltas applied on top of the base full snapshot.
    pub chain_len: u64,
    /// A snapshot file newer than the resolved tip existed but failed
    /// validation or did not link into the chain. The WAL suffix on disk
    /// extends that newer state, not the resolved tip, so it must not be
    /// replayed on top of this store (see [`load_latest_detailed`]).
    pub newer_corrupt: bool,
}

/// Resolves the snapshot chain in `dir`: the newest full snapshot that
/// passes validation, then each delta in zxid order whose `base_zxid`
/// matches the running tip. A torn or corrupt delta ends the chain at the
/// longest valid prefix with `newer_corrupt` set; deltas at or below the
/// newest full are superseded debris and are ignored. Directories written
/// before the delta format existed resolve as a chain of length zero.
pub fn load_chain(dir: &StdPath) -> RecoveredChain {
    let (base, mut newer_corrupt) = load_latest_detailed(dir);
    let deltas = list_deltas(dir);
    let Some((base_zxid, mut store)) = base else {
        return RecoveredChain {
            snapshot: None,
            chain_len: 0,
            newer_corrupt: newer_corrupt || !deltas.is_empty(),
        };
    };
    let mut tip = base_zxid;
    let mut chain_len = 0u64;
    for (zxid, path) in deltas {
        if zxid <= base_zxid {
            continue;
        }
        if newer_corrupt {
            // Deltas chained onto a corrupt full cannot link to the older
            // base we fell back to; don't even try.
            break;
        }
        match load_delta_file(&path, zxid) {
            Some((delta_base, records)) if delta_base == tip => {
                if store.apply_delta(&records).is_none() {
                    newer_corrupt = true;
                    break;
                }
                tip = zxid;
                chain_len += 1;
            }
            _ => {
                newer_corrupt = true;
                break;
            }
        }
    }
    RecoveredChain {
        snapshot: Some((tip, store)),
        chain_len,
        newer_corrupt,
    }
}

/// Removes half-written `*.tmp` snapshot files left by a crash between
/// create and rename, so repeated crash-during-snapshot cycles cannot
/// leak disk. Returns the number of files removed; when any were, the
/// directory is fsynced so the cleanup itself survives power loss.
pub fn sweep_tmp(dir: &StdPath) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".tmp"))
            && fs::remove_file(entry.path()).is_ok()
        {
            removed += 1;
        }
    }
    if removed > 0 {
        let _ = fs::File::open(dir).and_then(|f| f.sync_all());
    }
    removed
}

fn load_file(path: &StdPath, expect_zxid: u64) -> Option<ZnodeStore> {
    let data = fs::read(path).ok()?;
    if data.len() < MAGIC.len() + 12 || &data[..MAGIC.len()] != MAGIC {
        return None;
    }
    let body = &data[MAGIC.len()..data.len() - 4];
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
    if codec::crc32(body) != stored_crc {
        return None;
    }
    let mut cur = codec::Cursor::new(body);
    let zxid = cur.u64()?;
    if zxid != expect_zxid {
        return None;
    }
    let store = ZnodeStore::decode_from(&mut cur)?;
    cur.is_done().then_some(store)
}

fn load_delta_file(path: &StdPath, expect_zxid: u64) -> Option<(u64, Vec<DeltaRecord>)> {
    let data = fs::read(path).ok()?;
    if data.len() < DELTA_MAGIC.len() + 12 || &data[..DELTA_MAGIC.len()] != DELTA_MAGIC {
        return None;
    }
    let body = &data[DELTA_MAGIC.len()..data.len() - 4];
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
    if codec::crc32(body) != stored_crc {
        return None;
    }
    let mut cur = codec::Cursor::new(body);
    let zxid = cur.u64()?;
    if zxid != expect_zxid {
        return None;
    }
    let base_zxid = cur.u64()?;
    let count = cur.u32()?;
    let mut records = Vec::new();
    for _ in 0..count {
        records.push(decode_delta_record(&mut cur)?);
    }
    cur.is_done().then_some((base_zxid, records))
}

/// Deletes all but the newest `keep` full-snapshot generations, plus every
/// delta at or below the newest full (superseded: the live chain is
/// exactly the deltas above it). Returns the number of files removed;
/// when any were, the directory is fsynced so the deletions are durable.
pub fn retain_latest(dir: &StdPath, keep: usize) -> usize {
    let snaps = list(dir);
    let mut removed = 0;
    if snaps.len() > keep {
        for (_, path) in &snaps[..snaps.len() - keep] {
            if fs::remove_file(path).is_ok() {
                removed += 1;
            }
        }
    }
    if let Some((newest_full, _)) = snaps.last() {
        for (zxid, path) in list_deltas(dir) {
            if zxid <= *newest_full && fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
    }
    if removed > 0 {
        let _ = fs::File::open(dir).and_then(|f| f.sync_all());
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Op;
    use crate::testutil::TempDir;
    use bytes::Bytes;
    use tropic_model::Path;

    fn populated_store() -> ZnodeStore {
        let mut s = ZnodeStore::new();
        for (zxid, op) in [
            (
                1u64,
                Op::Create {
                    path: Path::parse("/q").unwrap(),
                    data: Bytes::from_static(b"root"),
                    ephemeral_owner: None,
                    sequential: false,
                },
            ),
            (
                2,
                Op::Create {
                    path: Path::parse("/q/item-").unwrap(),
                    data: Bytes::from_static(b"seq"),
                    ephemeral_owner: Some(9),
                    sequential: true,
                },
            ),
            (
                3,
                Op::SetData {
                    path: Path::parse("/q").unwrap(),
                    data: Bytes::from_static(b"v2"),
                    expected_version: None,
                },
            ),
        ] {
            s.apply(zxid, &op).0.unwrap();
        }
        s
    }

    #[test]
    fn write_load_roundtrip_is_byte_identical() {
        let tmp = TempDir::new("tropic-snap-roundtrip");
        let store = populated_store();
        write(tmp.path(), 3, &store).unwrap();
        let (zxid, back) = load_latest(tmp.path()).expect("snapshot loads");
        assert_eq!(zxid, 3);
        assert_eq!(back, store);
        assert_eq!(format!("{back:?}"), format!("{store:?}"));
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_generation() {
        let tmp = TempDir::new("tropic-snap-fallback");
        let store = populated_store();
        write(tmp.path(), 3, &store).unwrap();
        let mut newer = store.clone();
        newer
            .apply(
                4,
                &Op::Delete {
                    path: Path::parse("/q/item-0000000000").unwrap(),
                    expected_version: None,
                },
            )
            .0
            .unwrap();
        write(tmp.path(), 4, &newer).unwrap();
        // Corrupt the newest generation.
        let path = tmp.path().join(file_name(4));
        let mut data = fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        let (zxid, back) = load_latest(tmp.path()).expect("older snapshot still valid");
        assert_eq!(zxid, 3);
        assert_eq!(back, store);
    }

    #[test]
    fn retain_keeps_only_newest() {
        let tmp = TempDir::new("tropic-snap-retain");
        let store = populated_store();
        for zxid in [3u64, 4, 5, 6] {
            write(tmp.path(), zxid, &store).unwrap();
        }
        retain_latest(tmp.path(), 2);
        let zxids: Vec<u64> = list(tmp.path()).into_iter().map(|(z, _)| z).collect();
        assert_eq!(zxids, vec![5, 6]);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let tmp = TempDir::new("tropic-snap-empty");
        assert!(load_latest(tmp.path()).is_none());
    }

    /// Applies `op` at `zxid` and returns the delta records it dirtied.
    fn mutate(store: &mut ZnodeStore, zxid: u64, op: &Op) -> Vec<DeltaRecord> {
        store.clear_dirty();
        store.apply(zxid, op).0.unwrap();
        store.delta_records()
    }

    #[test]
    fn delta_chain_recovers_full_plus_deltas() {
        let tmp = TempDir::new("tropic-snap-chain");
        let mut store = populated_store();
        write(tmp.path(), 3, &store).unwrap();

        let recs = mutate(
            &mut store,
            5,
            &Op::SetData {
                path: Path::parse("/q").unwrap(),
                data: Bytes::from_static(b"v3"),
                expected_version: None,
            },
        );
        write_delta(tmp.path(), 3, 5, &recs).unwrap();

        let recs = mutate(
            &mut store,
            7,
            &Op::Delete {
                path: Path::parse("/q/item-0000000000").unwrap(),
                expected_version: None,
            },
        );
        write_delta(tmp.path(), 5, 7, &recs).unwrap();

        let chain = load_chain(tmp.path());
        assert!(!chain.newer_corrupt);
        assert_eq!(chain.chain_len, 2);
        let (zxid, recovered) = chain.snapshot.expect("chain loads");
        assert_eq!(zxid, 7);
        assert_eq!(recovered, store);
    }

    #[test]
    fn corrupt_delta_truncates_chain_to_valid_prefix() {
        let tmp = TempDir::new("tropic-snap-chain-corrupt");
        let mut store = populated_store();
        write(tmp.path(), 3, &store).unwrap();

        let recs = mutate(
            &mut store,
            5,
            &Op::SetData {
                path: Path::parse("/q").unwrap(),
                data: Bytes::from_static(b"v3"),
                expected_version: None,
            },
        );
        write_delta(tmp.path(), 3, 5, &recs).unwrap();
        let after_first = store.clone();

        let recs = mutate(
            &mut store,
            7,
            &Op::Delete {
                path: Path::parse("/q/item-0000000000").unwrap(),
                expected_version: None,
            },
        );
        write_delta(tmp.path(), 5, 7, &recs).unwrap();
        let victim = tmp.path().join(delta_file_name(7));
        let mut data = fs::read(&victim).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&victim, &data).unwrap();

        let chain = load_chain(tmp.path());
        assert!(chain.newer_corrupt, "torn delta must flag corruption");
        assert_eq!(chain.chain_len, 1);
        let (zxid, recovered) = chain.snapshot.expect("valid prefix loads");
        assert_eq!(zxid, 5);
        assert_eq!(recovered, after_first);
    }

    #[test]
    fn delta_without_full_base_is_corrupt() {
        let tmp = TempDir::new("tropic-snap-chain-orphan");
        let mut store = populated_store();
        let recs = mutate(
            &mut store,
            5,
            &Op::SetData {
                path: Path::parse("/q").unwrap(),
                data: Bytes::from_static(b"v3"),
                expected_version: None,
            },
        );
        write_delta(tmp.path(), 3, 5, &recs).unwrap();

        let chain = load_chain(tmp.path());
        assert!(
            chain.newer_corrupt,
            "orphan delta has no base to chain from"
        );
        assert!(chain.snapshot.is_none());
    }

    #[test]
    fn retain_latest_drops_deltas_superseded_by_newer_full() {
        let tmp = TempDir::new("tropic-snap-chain-retain");
        let mut store = populated_store();
        write(tmp.path(), 3, &store).unwrap();
        let recs = mutate(
            &mut store,
            5,
            &Op::SetData {
                path: Path::parse("/q").unwrap(),
                data: Bytes::from_static(b"v3"),
                expected_version: None,
            },
        );
        write_delta(tmp.path(), 3, 5, &recs).unwrap();
        // Compaction: a newer full supersedes the chain behind it.
        write(tmp.path(), 7, &store).unwrap();
        let recs = mutate(
            &mut store,
            9,
            &Op::SetData {
                path: Path::parse("/q").unwrap(),
                data: Bytes::from_static(b"v4"),
                expected_version: None,
            },
        );
        write_delta(tmp.path(), 7, 9, &recs).unwrap();

        retain_latest(tmp.path(), 2);
        let fulls: Vec<u64> = list(tmp.path()).into_iter().map(|(z, _)| z).collect();
        let deltas: Vec<u64> = list_deltas(tmp.path())
            .into_iter()
            .map(|(z, _)| z)
            .collect();
        assert_eq!(fulls, vec![3, 7]);
        assert_eq!(deltas, vec![9], "delta behind the newest full is debris");

        let chain = load_chain(tmp.path());
        assert!(!chain.newer_corrupt);
        let (zxid, recovered) = chain.snapshot.expect("chain loads after retention");
        assert_eq!(zxid, 9);
        assert_eq!(recovered, store);
    }
}

//! Fuzzy snapshots of the znode store.
//!
//! A snapshot captures the *entire* replicated state — data, versions,
//! zxids, ephemeral owners, and sequential counters — at a batch boundary,
//! tagged with the zxid of the last op it reflects. Together with the
//! write-ahead log suffix after that zxid ([`crate::wal`]), it reconstructs
//! a store byte-identical to the live one, which is what lets replicas
//! truncate both their on-disk segments and their in-memory op logs
//! (ZooKeeper's snapshot + txn-log recovery scheme, paper §2.3).
//!
//! Files are written atomically (temp file, fsync, rename) and carry a
//! magic header plus a trailing CRC-32; [`load_latest`] skips anything that
//! fails validation, falling back to the previous snapshot generation.

use std::fs;
use std::io::{self, Write};
use std::path::{Path as StdPath, PathBuf};

use crate::store::ZnodeStore;
use crate::wal::codec;

const MAGIC: &[u8; 8] = b"TRPCSNP1";
const PREFIX: &str = "snap-";
const SUFFIX: &str = ".bin";

/// File name of the snapshot tagged with `zxid`.
pub fn file_name(zxid: u64) -> String {
    format!("{PREFIX}{zxid:016x}{SUFFIX}")
}

/// Snapshot files in `dir`, sorted ascending by zxid.
pub fn list(dir: &StdPath) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(hex) = name
            .strip_prefix(PREFIX)
            .and_then(|n| n.strip_suffix(SUFFIX))
        else {
            continue;
        };
        if let Ok(zxid) = u64::from_str_radix(hex, 16) {
            out.push((zxid, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(zxid, _)| *zxid);
    out
}

/// Atomically writes a snapshot of `store` tagged with `zxid`, returning
/// the file size in bytes.
pub fn write(dir: &StdPath, zxid: u64, store: &ZnodeStore) -> io::Result<u64> {
    let mut body = Vec::with_capacity(4_096);
    codec::put_u64(&mut body, zxid);
    store.encode_into(&mut body);
    let crc = codec::crc32(&body);
    let final_path = dir.join(file_name(zxid));
    let tmp_path = dir.join(format!("{}.tmp", file_name(zxid)));
    {
        let mut file = fs::File::create(&tmp_path)?;
        file.write_all(MAGIC)?;
        file.write_all(&body)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_data()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // The rename is only durable once the directory is fsynced; this must
    // succeed before the caller may truncate the WAL the snapshot covers,
    // so a failure propagates instead of being swallowed.
    fs::File::open(dir)?.sync_all()?;
    Ok((MAGIC.len() + body.len() + 4) as u64)
}

/// Loads the newest snapshot in `dir` that passes validation (magic, CRC,
/// full decode, zxid matching the file name). Corrupt generations are
/// skipped, not fatal.
pub fn load_latest(dir: &StdPath) -> Option<(u64, ZnodeStore)> {
    load_latest_detailed(dir).0
}

/// Like [`load_latest`], but also reports whether a *newer* generation
/// file existed and failed validation. That matters to recovery: the live
/// WAL segments always extend the newest snapshot taken (truncation
/// deletes everything older), so when the newest generation is corrupt the
/// suffix on disk is **not contiguous** with the older generation loaded
/// here and must not be replayed on top of it.
pub fn load_latest_detailed(dir: &StdPath) -> (Option<(u64, ZnodeStore)>, bool) {
    let mut newer_corrupt = false;
    let mut snaps = list(dir);
    while let Some((zxid, path)) = snaps.pop() {
        if let Some(store) = load_file(&path, zxid) {
            return (Some((zxid, store)), newer_corrupt);
        }
        newer_corrupt = true;
    }
    (None, newer_corrupt)
}

/// Removes half-written `*.tmp` snapshot files left by a crash between
/// create and rename, so repeated crash-during-snapshot cycles cannot
/// leak disk.
pub fn sweep_tmp(dir: &StdPath) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".tmp")) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

fn load_file(path: &StdPath, expect_zxid: u64) -> Option<ZnodeStore> {
    let data = fs::read(path).ok()?;
    if data.len() < MAGIC.len() + 12 || &data[..MAGIC.len()] != MAGIC {
        return None;
    }
    let body = &data[MAGIC.len()..data.len() - 4];
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
    if codec::crc32(body) != stored_crc {
        return None;
    }
    let mut cur = codec::Cursor::new(body);
    let zxid = cur.u64()?;
    if zxid != expect_zxid {
        return None;
    }
    let store = ZnodeStore::decode_from(&mut cur)?;
    cur.is_done().then_some(store)
}

/// Deletes all but the newest `keep` snapshot generations.
pub fn retain_latest(dir: &StdPath, keep: usize) {
    let snaps = list(dir);
    if snaps.len() > keep {
        for (_, path) in &snaps[..snaps.len() - keep] {
            let _ = fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Op;
    use crate::testutil::TempDir;
    use bytes::Bytes;
    use tropic_model::Path;

    fn populated_store() -> ZnodeStore {
        let mut s = ZnodeStore::new();
        for (zxid, op) in [
            (
                1u64,
                Op::Create {
                    path: Path::parse("/q").unwrap(),
                    data: Bytes::from_static(b"root"),
                    ephemeral_owner: None,
                    sequential: false,
                },
            ),
            (
                2,
                Op::Create {
                    path: Path::parse("/q/item-").unwrap(),
                    data: Bytes::from_static(b"seq"),
                    ephemeral_owner: Some(9),
                    sequential: true,
                },
            ),
            (
                3,
                Op::SetData {
                    path: Path::parse("/q").unwrap(),
                    data: Bytes::from_static(b"v2"),
                    expected_version: None,
                },
            ),
        ] {
            s.apply(zxid, &op).0.unwrap();
        }
        s
    }

    #[test]
    fn write_load_roundtrip_is_byte_identical() {
        let tmp = TempDir::new("tropic-snap-roundtrip");
        let store = populated_store();
        write(tmp.path(), 3, &store).unwrap();
        let (zxid, back) = load_latest(tmp.path()).expect("snapshot loads");
        assert_eq!(zxid, 3);
        assert_eq!(back, store);
        assert_eq!(format!("{back:?}"), format!("{store:?}"));
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_generation() {
        let tmp = TempDir::new("tropic-snap-fallback");
        let store = populated_store();
        write(tmp.path(), 3, &store).unwrap();
        let mut newer = store.clone();
        newer
            .apply(
                4,
                &Op::Delete {
                    path: Path::parse("/q/item-0000000000").unwrap(),
                    expected_version: None,
                },
            )
            .0
            .unwrap();
        write(tmp.path(), 4, &newer).unwrap();
        // Corrupt the newest generation.
        let path = tmp.path().join(file_name(4));
        let mut data = fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        let (zxid, back) = load_latest(tmp.path()).expect("older snapshot still valid");
        assert_eq!(zxid, 3);
        assert_eq!(back, store);
    }

    #[test]
    fn retain_keeps_only_newest() {
        let tmp = TempDir::new("tropic-snap-retain");
        let store = populated_store();
        for zxid in [3u64, 4, 5, 6] {
            write(tmp.path(), zxid, &store).unwrap();
        }
        retain_latest(tmp.path(), 2);
        let zxids: Vec<u64> = list(tmp.path()).into_iter().map(|(z, _)| z).collect();
        assert_eq!(zxids, vec![5, 6]);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let tmp = TempDir::new("tropic-snap-empty");
        assert!(load_latest(tmp.path()).is_none());
    }
}

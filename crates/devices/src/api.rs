//! The device API boundary between TROPIC's physical layer and devices.
//!
//! Workers replay execution-log records by calling [`Device::invoke`] with
//! the action name and arguments recorded in the logical layer (paper §3.2,
//! Table 1). Every device also exports its current state as a model subtree
//! ([`Device::export_state`]), which reconciliation compares against the
//! logical layer (paper §4).

use tropic_model::{Node, Path, Value};

use crate::error::{DeviceError, DeviceResult};
use crate::fault::FaultPlan;

/// Reserved action name that every device treats as a physical no-op.
///
/// Corrective transactions scheduled by the twin reconciler record this as
/// the undo action of every repair step: the logical layer already holds the
/// desired state, so undoing a half-applied repair must change nothing —
/// neither logically nor physically. [`DeviceRegistry`](crate::DeviceRegistry)
/// short-circuits invocations of this action before device resolution, so
/// the no-op also succeeds for objects whose device has been decommissioned.
pub const NOOP_ACTION: &str = "__twinNoop";

/// One physical action invocation, addressed to a resource object path as in
/// the paper's execution logs (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct ActionCall {
    /// Resource object path, e.g. `/vmRoot/vmHost3`.
    pub object: Path,
    /// Action name, e.g. `createVM`.
    pub action: String,
    /// Positional arguments, e.g. `[vmName, vmImage]`.
    pub args: Vec<Value>,
}

impl ActionCall {
    /// Creates an action call.
    pub fn new(object: Path, action: impl Into<String>, args: Vec<Value>) -> Self {
        ActionCall {
            object,
            action: action.into(),
            args,
        }
    }

    /// Reads positional argument `i` as a string.
    pub fn arg_str(&self, i: usize) -> DeviceResult<&str> {
        self.args
            .get(i)
            .and_then(Value::as_str)
            .ok_or_else(|| DeviceError::BadArgument {
                action: self.action.clone(),
                message: format!("argument {i} missing or not a string"),
            })
    }

    /// Reads positional argument `i` as an integer.
    pub fn arg_int(&self, i: usize) -> DeviceResult<i64> {
        self.args
            .get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| DeviceError::BadArgument {
                action: self.action.clone(),
                message: format!("argument {i} missing or not an int"),
            })
    }
}

/// A simulated physical device.
///
/// Implementations hold their own state behind interior mutability: the
/// worker pool invokes actions on shared references.
pub trait Device: Send + Sync {
    /// Device name for diagnostics (usually the mount path's leaf).
    fn name(&self) -> &str;

    /// The path in the data model at which this device's state mounts, e.g.
    /// `/vmRoot/vmHost3`.
    fn mount(&self) -> &Path;

    /// Executes one physical action against the device.
    ///
    /// Implementations apply their latency model, roll the fault plan, and
    /// only then mutate state, so an injected fault leaves the device
    /// unchanged (the action never happened).
    fn invoke(&self, call: &ActionCall) -> DeviceResult<()>;

    /// Exports the device's current physical state as a model subtree
    /// rooted at [`Device::mount`].
    fn export_state(&self) -> Node;

    /// The device's fault-injection plan.
    fn fault_plan(&self) -> &FaultPlan;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_accessors() {
        let call = ActionCall::new(
            Path::parse("/vmRoot/h1").unwrap(),
            "createVM",
            vec![Value::from("vm1"), Value::from(2048i64)],
        );
        assert_eq!(call.arg_str(0).unwrap(), "vm1");
        assert_eq!(call.arg_int(1).unwrap(), 2048);
        assert!(call.arg_str(1).is_err());
        assert!(call.arg_int(5).is_err());
        let err = call.arg_str(9).unwrap_err();
        assert!(err.to_string().contains("createVM"));
    }
}

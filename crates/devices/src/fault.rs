//! Fault injection for simulated devices.
//!
//! The robustness experiments (paper §6.3) "randomly raise exceptions in the
//! last step of VM spawn and migrate"; the volatility machinery (§4) must
//! also cope with devices failing their *undo* actions. A [`FaultPlan`]
//! scripts both: probabilistic failures per action name, one-shot scheduled
//! failures, periodic every-*n*-th failures, and a fail-everything switch
//! simulating an unreachable device.
//!
//! # Precedence and counting semantics
//!
//! Every device action is routed through [`FaultPlan::roll`] exactly once
//! (undo actions included), and the first rule that fires wins. Rules are
//! evaluated in a fixed precedence order:
//!
//! 1. **Down** ([`FaultPlan::set_down`]) — the device is unreachable; every
//!    action fails. No other rule is evaluated and no other rule's counter
//!    advances while the device is down.
//! 2. **One-shots** ([`FaultPlan::fail_once`]) — the next matching
//!    invocation fails and the rule is consumed. Multiple one-shots for the
//!    same action fire on consecutive invocations.
//! 3. **Every-*n*-th** ([`FaultPlan::fail_every_nth`]) — counting is
//!    **1-based**: with `n = 3` the 3rd, 6th, 9th… matching invocations
//!    fail, and `n = 1` fails every invocation. Each rule keeps its own
//!    counter, which advances only when the rule is actually consulted — a
//!    roll swallowed by a one-shot (or by an earlier-registered every-nth
//!    rule that fires first) does not advance it.
//! 4. **Probabilistic** ([`FaultPlan::fail_action_with_prob`]) — each
//!    matching rule is an independent Bernoulli trial against the plan's
//!    seeded RNG, so a given seed yields a reproducible fault sequence for
//!    a fixed invocation order.
//!
//! [`FaultStats`] counts the outcomes: `injected` for every roll a rule
//! failed, `passed` for every roll that reached the device. The platform
//! aggregates these per-registry (`DeviceRegistry::fault_stats`) and
//! surfaces them in the platform counters, so stress harnesses (see
//! `tropic_workload::chaos`) can attribute aborts to injected faults rather
//! than real bugs.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counters describing injected behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Actions allowed through.
    pub passed: u64,
    /// Actions failed by injection.
    pub injected: u64,
}

impl FaultStats {
    /// Accumulates another counter snapshot into this one (used to
    /// aggregate per-device plans into a fleet-wide total, see
    /// [`crate::DeviceRegistry::fault_stats`]).
    pub fn merge(&mut self, other: FaultStats) {
        self.passed += other.passed;
        self.injected += other.injected;
    }

    /// Total rolls observed.
    pub fn total(&self) -> u64 {
        self.passed + self.injected
    }
}

struct PlanState {
    /// `(action, probability)` pairs evaluated independently.
    action_probs: Vec<(String, f64)>,
    /// Action names that fail exactly once, then are removed.
    one_shots: Vec<String>,
    /// Every `n`-th invocation of the named action fails (1-based counting).
    every_nth: Vec<(String, u64, u64)>,
    /// When set, every action fails as unreachable.
    down: bool,
    rng: StdRng,
    stats: FaultStats,
}

/// A scriptable fault-injection plan shared by a device.
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// Creates a plan that never injects faults.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// Creates an empty plan with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            state: Mutex::new(PlanState {
                action_probs: Vec::new(),
                one_shots: Vec::new(),
                every_nth: Vec::new(),
                down: false,
                rng: StdRng::seed_from_u64(seed),
                stats: FaultStats::default(),
            }),
        }
    }

    /// Fails invocations of `action` with independent probability `p`.
    pub fn fail_action_with_prob(&self, action: &str, p: f64) {
        self.state
            .lock()
            .action_probs
            .push((action.to_owned(), p.clamp(0.0, 1.0)));
    }

    /// Fails the next invocation of `action`, once.
    pub fn fail_once(&self, action: &str) {
        self.state.lock().one_shots.push(action.to_owned());
    }

    /// Fails every `n`-th invocation of `action`, counting **1-based**:
    /// the n-th, 2n-th, 3n-th… matching invocations fail, so `n = 1` fails
    /// every call and `n = 3` lets two calls through before each failure.
    /// The rule's counter only advances on rolls that reach it (see the
    /// [module docs](self) for the precedence order).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn fail_every_nth(&self, action: &str, n: u64) {
        assert!(n >= 1, "n must be at least 1");
        self.state.lock().every_nth.push((action.to_owned(), n, 0));
    }

    /// Marks the device down (unreachable) or back up.
    pub fn set_down(&self, down: bool) {
        self.state.lock().down = down;
    }

    /// Returns `true` if the device is marked down.
    pub fn is_down(&self) -> bool {
        self.state.lock().down
    }

    /// Clears all scripted failures (the device stays up/down as set).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.action_probs.clear();
        st.one_shots.clear();
        st.every_nth.clear();
    }

    /// Decides whether this invocation of `action` fails. Returns a
    /// description of the injected fault, or `None` to let it pass.
    pub fn roll(&self, action: &str) -> Option<String> {
        let mut st = self.state.lock();
        if st.down {
            st.stats.injected += 1;
            return Some("device down".to_owned());
        }
        if let Some(idx) = st.one_shots.iter().position(|a| a == action) {
            st.one_shots.remove(idx);
            st.stats.injected += 1;
            return Some("scripted one-shot fault".to_owned());
        }
        for i in 0..st.every_nth.len() {
            if st.every_nth[i].0 == action {
                st.every_nth[i].2 += 1;
                let (_, n, count) = st.every_nth[i];
                if count % n == 0 {
                    st.stats.injected += 1;
                    return Some(format!("scripted every-{n}th fault"));
                }
            }
        }
        let probs: Vec<f64> = st
            .action_probs
            .iter()
            .filter(|(a, _)| a == action)
            .map(|(_, p)| *p)
            .collect();
        for p in probs {
            if p > 0.0 && st.rng.gen_bool(p) {
                st.stats.injected += 1;
                return Some(format!("probabilistic fault (p={p})"));
            }
        }
        st.stats.passed += 1;
        None
    }

    /// Snapshot of injection counters.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().stats
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_by_default() {
        let plan = FaultPlan::none();
        assert!((0..100).all(|_| plan.roll("startVM").is_none()));
        assert_eq!(plan.stats().passed, 100);
    }

    #[test]
    fn one_shot_fires_once() {
        let plan = FaultPlan::none();
        plan.fail_once("startVM");
        assert!(plan.roll("stopVM").is_none());
        assert!(plan.roll("startVM").is_some());
        assert!(plan.roll("startVM").is_none());
        assert_eq!(plan.stats().injected, 1);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let plan = FaultPlan::none();
        plan.fail_every_nth("cloneImage", 3);
        let fails: Vec<bool> = (0..9).map(|_| plan.roll("cloneImage").is_some()).collect();
        assert_eq!(
            fails,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn every_nth_counts_one_based() {
        // n = 1 fails every invocation: the 1st call is already "the 1st".
        let plan = FaultPlan::none();
        plan.fail_every_nth("createVM", 1);
        assert!((0..5).all(|_| plan.roll("createVM").is_some()));
        assert_eq!(
            plan.stats(),
            FaultStats {
                passed: 0,
                injected: 5
            }
        );
        // n = 2 passes the 1st and fails the 2nd — not the other way round.
        let plan = FaultPlan::none();
        plan.fail_every_nth("createVM", 2);
        assert!(plan.roll("createVM").is_none());
        assert!(plan.roll("createVM").is_some());
        // Other actions never advance this rule's counter.
        assert!(plan.roll("startVM").is_none());
        assert!(plan.roll("createVM").is_none());
        assert!(plan.roll("createVM").is_some());
    }

    #[test]
    fn every_nth_counter_frozen_by_higher_precedence_rules() {
        let plan = FaultPlan::none();
        plan.fail_every_nth("createVM", 2);
        // A roll swallowed while the device is down must not advance the
        // every-nth counter...
        plan.set_down(true);
        assert!(plan.roll("createVM").is_some());
        plan.set_down(false);
        // ...nor must one consumed by a one-shot.
        plan.fail_once("createVM");
        assert!(plan.roll("createVM").is_some());
        // The every-nth rule still sees this as invocations 1 and 2.
        assert!(plan.roll("createVM").is_none());
        assert!(plan.roll("createVM").is_some());
    }

    #[test]
    fn stats_partition_rolls() {
        let plan = FaultPlan::none();
        plan.fail_every_nth("x", 3);
        for _ in 0..9 {
            let _ = plan.roll("x");
        }
        let _ = plan.roll("y");
        assert_eq!(
            plan.stats(),
            FaultStats {
                passed: 7,
                injected: 3
            }
        );
    }

    #[test]
    fn probability_one_always_fails() {
        let plan = FaultPlan::new(1);
        plan.fail_action_with_prob("createVM", 1.0);
        assert!((0..10).all(|_| plan.roll("createVM").is_some()));
        assert!(plan.roll("removeVM").is_none());
    }

    #[test]
    fn probability_half_is_probabilistic() {
        let plan = FaultPlan::new(42);
        plan.fail_action_with_prob("x", 0.5);
        let injected = (0..1000).filter(|_| plan.roll("x").is_some()).count();
        assert!(injected > 300 && injected < 700, "injected {injected}");
    }

    #[test]
    fn down_device_fails_everything() {
        let plan = FaultPlan::none();
        plan.set_down(true);
        assert!(plan.is_down());
        assert!(plan.roll("anything").is_some());
        plan.set_down(false);
        assert!(plan.roll("anything").is_none());
    }

    #[test]
    fn clear_removes_scripts() {
        let plan = FaultPlan::none();
        plan.fail_once("a");
        plan.fail_every_nth("b", 1);
        plan.fail_action_with_prob("c", 1.0);
        plan.clear();
        assert!(plan.roll("a").is_none());
        assert!(plan.roll("b").is_none());
        assert!(plan.roll("c").is_none());
    }
}

//! Fault injection for simulated devices.
//!
//! The robustness experiments (paper §6.3) "randomly raise exceptions in the
//! last step of VM spawn and migrate"; the volatility machinery (§4) must
//! also cope with devices failing their *undo* actions. A [`FaultPlan`]
//! scripts both: probabilistic failures per action name, one-shot scheduled
//! failures, and a fail-everything switch simulating an unreachable device.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counters describing injected behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Actions allowed through.
    pub passed: u64,
    /// Actions failed by injection.
    pub injected: u64,
}

struct PlanState {
    /// `(action, probability)` pairs evaluated independently.
    action_probs: Vec<(String, f64)>,
    /// Action names that fail exactly once, then are removed.
    one_shots: Vec<String>,
    /// Every `n`-th invocation of the named action fails (1-based counting).
    every_nth: Vec<(String, u64, u64)>,
    /// When set, every action fails as unreachable.
    down: bool,
    rng: StdRng,
    stats: FaultStats,
}

/// A scriptable fault-injection plan shared by a device.
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// Creates a plan that never injects faults.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// Creates an empty plan with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            state: Mutex::new(PlanState {
                action_probs: Vec::new(),
                one_shots: Vec::new(),
                every_nth: Vec::new(),
                down: false,
                rng: StdRng::seed_from_u64(seed),
                stats: FaultStats::default(),
            }),
        }
    }

    /// Fails invocations of `action` with independent probability `p`.
    pub fn fail_action_with_prob(&self, action: &str, p: f64) {
        self.state
            .lock()
            .action_probs
            .push((action.to_owned(), p.clamp(0.0, 1.0)));
    }

    /// Fails the next invocation of `action`, once.
    pub fn fail_once(&self, action: &str) {
        self.state.lock().one_shots.push(action.to_owned());
    }

    /// Fails every `n`-th invocation of `action` (n = 1 fails every call).
    pub fn fail_every_nth(&self, action: &str, n: u64) {
        assert!(n >= 1, "n must be at least 1");
        self.state.lock().every_nth.push((action.to_owned(), n, 0));
    }

    /// Marks the device down (unreachable) or back up.
    pub fn set_down(&self, down: bool) {
        self.state.lock().down = down;
    }

    /// Returns `true` if the device is marked down.
    pub fn is_down(&self) -> bool {
        self.state.lock().down
    }

    /// Clears all scripted failures (the device stays up/down as set).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.action_probs.clear();
        st.one_shots.clear();
        st.every_nth.clear();
    }

    /// Decides whether this invocation of `action` fails. Returns a
    /// description of the injected fault, or `None` to let it pass.
    pub fn roll(&self, action: &str) -> Option<String> {
        let mut st = self.state.lock();
        if st.down {
            st.stats.injected += 1;
            return Some("device down".to_owned());
        }
        if let Some(idx) = st.one_shots.iter().position(|a| a == action) {
            st.one_shots.remove(idx);
            st.stats.injected += 1;
            return Some("scripted one-shot fault".to_owned());
        }
        for i in 0..st.every_nth.len() {
            if st.every_nth[i].0 == action {
                st.every_nth[i].2 += 1;
                let (_, n, count) = st.every_nth[i];
                if count % n == 0 {
                    st.stats.injected += 1;
                    return Some(format!("scripted every-{n}th fault"));
                }
            }
        }
        let probs: Vec<f64> = st
            .action_probs
            .iter()
            .filter(|(a, _)| a == action)
            .map(|(_, p)| *p)
            .collect();
        for p in probs {
            if p > 0.0 && st.rng.gen_bool(p) {
                st.stats.injected += 1;
                return Some(format!("probabilistic fault (p={p})"));
            }
        }
        st.stats.passed += 1;
        None
    }

    /// Snapshot of injection counters.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().stats
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_by_default() {
        let plan = FaultPlan::none();
        assert!((0..100).all(|_| plan.roll("startVM").is_none()));
        assert_eq!(plan.stats().passed, 100);
    }

    #[test]
    fn one_shot_fires_once() {
        let plan = FaultPlan::none();
        plan.fail_once("startVM");
        assert!(plan.roll("stopVM").is_none());
        assert!(plan.roll("startVM").is_some());
        assert!(plan.roll("startVM").is_none());
        assert_eq!(plan.stats().injected, 1);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let plan = FaultPlan::none();
        plan.fail_every_nth("cloneImage", 3);
        let fails: Vec<bool> = (0..9).map(|_| plan.roll("cloneImage").is_some()).collect();
        assert_eq!(
            fails,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn probability_one_always_fails() {
        let plan = FaultPlan::new(1);
        plan.fail_action_with_prob("createVM", 1.0);
        assert!((0..10).all(|_| plan.roll("createVM").is_some()));
        assert!(plan.roll("removeVM").is_none());
    }

    #[test]
    fn probability_half_is_probabilistic() {
        let plan = FaultPlan::new(42);
        plan.fail_action_with_prob("x", 0.5);
        let injected = (0..1000).filter(|_| plan.roll("x").is_some()).count();
        assert!(injected > 300 && injected < 700, "injected {injected}");
    }

    #[test]
    fn down_device_fails_everything() {
        let plan = FaultPlan::none();
        plan.set_down(true);
        assert!(plan.is_down());
        assert!(plan.roll("anything").is_some());
        plan.set_down(false);
        assert!(plan.roll("anything").is_none());
    }

    #[test]
    fn clear_removes_scripts() {
        let plan = FaultPlan::none();
        plan.fail_once("a");
        plan.fail_every_nth("b", 1);
        plan.fail_action_with_prob("c", 1.0);
        plan.clear();
        assert!(plan.roll("a").is_none());
        assert!(plan.roll("b").is_none());
        assert!(plan.roll("c").is_none());
    }
}

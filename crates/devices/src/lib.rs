//! # tropic-devices
//!
//! Simulated physical cloud resources for the TROPIC reproduction,
//! substituting for the paper's ShadowNet testbed (Xen compute servers,
//! GNBD/DRBD storage servers, Juniper routers — §5).
//!
//! Each device implements the [`Device`] trait: it executes named physical
//! actions (the ones appearing in execution logs, paper Table 1), exports
//! its state as a data-model subtree for reconciliation (§4), and carries a
//! [`FaultPlan`] so experiments can inject failures at any step (§6.3) or
//! mutate state out of band (§4).
//!
//! ```
//! use std::sync::Arc;
//! use tropic_devices::{ActionCall, ComputeServer, Device, DeviceRegistry, LatencyModel};
//! use tropic_model::{Node, Path, Tree, Value};
//!
//! let mut frame = Tree::new();
//! frame.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot")).unwrap();
//! let registry = DeviceRegistry::new(frame);
//! let host = Path::parse("/vmRoot/host1").unwrap();
//! registry.register(Arc::new(ComputeServer::new(
//!     host.clone(), "xen", 32_768, LatencyModel::zero(),
//! )));
//! registry.invoke(&ActionCall::new(host, "importImage", vec![Value::from("img")])).unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod api;
pub mod compute;
pub mod error;
pub mod fault;
pub mod latency;
pub mod network;
pub mod registry;
pub mod report;
pub mod storage;

pub use api::{ActionCall, Device, NOOP_ACTION};
pub use compute::{ComputeServer, VmPower};
pub use error::{DeviceError, DeviceResult};
pub use fault::{FaultPlan, FaultStats};
pub use latency::LatencyModel;
pub use network::Router;
pub use registry::DeviceRegistry;
pub use report::{report_channel, ReportLedger, ReportReceiver, ReportSender, StateReport};
pub use storage::StorageServer;

//! Simulated storage servers (the GNBD/DRBD-over-LVM hosts of §5).
//!
//! A storage server holds VM disk images: templates are cloned into
//! per-VM images, which are then exported over the (simulated) network so
//! compute servers can import them — exactly the first two steps of the
//! paper's `spawnVM` execution log (Table 1).

use std::collections::BTreeMap;

use parking_lot::Mutex;
use tropic_model::{Node, Path};

use crate::api::{ActionCall, Device};
use crate::error::{DeviceError, DeviceResult};
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;

#[derive(Clone, Debug)]
struct ImageRec {
    size_mb: i64,
    template: bool,
    exported: bool,
}

#[derive(Debug, Default)]
struct StorageState {
    images: BTreeMap<String, ImageRec>,
}

/// A simulated storage server.
pub struct StorageServer {
    name: String,
    mount: Path,
    capacity_mb: i64,
    state: Mutex<StorageState>,
    faults: FaultPlan,
    latency: LatencyModel,
}

impl StorageServer {
    /// Creates a storage server mounted at `mount` with the given capacity.
    pub fn new(mount: Path, capacity_mb: i64, latency: LatencyModel) -> Self {
        let name = mount.leaf().unwrap_or("storage").to_owned();
        StorageServer {
            name,
            mount,
            capacity_mb,
            state: Mutex::new(StorageState::default()),
            faults: FaultPlan::none(),
            latency,
        }
    }

    /// Installs a template image (done at provisioning time, outside any
    /// transaction).
    pub fn install_template(&self, name: &str, size_mb: i64) {
        self.state.lock().images.insert(
            name.to_owned(),
            ImageRec {
                size_mb,
                template: true,
                exported: false,
            },
        );
    }

    /// Capacity in MB.
    pub fn capacity_mb(&self) -> i64 {
        self.capacity_mb
    }

    /// Space currently used by images, in MB.
    pub fn used_mb(&self) -> i64 {
        self.state.lock().images.values().map(|i| i.size_mb).sum()
    }

    /// Returns `true` if an image exists.
    pub fn has_image(&self, name: &str) -> bool {
        self.state.lock().images.contains_key(name)
    }

    /// Returns `true` if an image is currently exported.
    pub fn is_exported(&self, name: &str) -> bool {
        self.state
            .lock()
            .images
            .get(name)
            .map(|i| i.exported)
            .unwrap_or(false)
    }

    /// Simulates silent image corruption or loss (paper §4 volatility):
    /// the image disappears out of band.
    pub fn oob_lose_image(&self, name: &str) -> bool {
        self.state.lock().images.remove(name).is_some()
    }

    fn do_clone(&self, call: &ActionCall) -> DeviceResult<()> {
        let template = call.arg_str(0)?.to_owned();
        let image = call.arg_str(1)?.to_owned();
        let mut st = self.state.lock();
        let Some(src) = st.images.get(&template) else {
            return Err(DeviceError::NoSuchObject(self.mount.join(&template)));
        };
        if !src.template {
            return Err(DeviceError::InvalidState {
                path: self.mount.join(&template),
                message: "clone source is not a template".into(),
            });
        }
        let size = src.size_mb;
        if st.images.contains_key(&image) {
            return Err(DeviceError::AlreadyExists(self.mount.join(&image)));
        }
        let used: i64 = st.images.values().map(|i| i.size_mb).sum();
        if used + size > self.capacity_mb {
            return Err(DeviceError::InvalidState {
                path: self.mount.clone(),
                message: format!(
                    "insufficient capacity: {used} + {size} > {}",
                    self.capacity_mb
                ),
            });
        }
        st.images.insert(
            image,
            ImageRec {
                size_mb: size,
                template: false,
                exported: false,
            },
        );
        Ok(())
    }

    fn do_remove(&self, call: &ActionCall) -> DeviceResult<()> {
        let image = call.arg_str(0)?;
        let mut st = self.state.lock();
        match st.images.get(image) {
            None => Err(DeviceError::NoSuchObject(self.mount.join(image))),
            Some(rec) if rec.exported => Err(DeviceError::InvalidState {
                path: self.mount.join(image),
                message: "cannot remove an exported image".into(),
            }),
            Some(rec) if rec.template => Err(DeviceError::InvalidState {
                path: self.mount.join(image),
                message: "cannot remove a template".into(),
            }),
            Some(_) => {
                st.images.remove(image);
                Ok(())
            }
        }
    }

    /// Recreates an image record from saved metadata. This is the undo of
    /// `removeImage` (recovering the logical volume from its snapshot), so
    /// transactions that delete images remain fully reversible.
    fn do_restore(&self, call: &ActionCall) -> DeviceResult<()> {
        let image = call.arg_str(0)?.to_owned();
        let size_mb = call.arg_int(1)?;
        let template = call
            .args
            .get(2)
            .and_then(tropic_model::Value::as_bool)
            .unwrap_or(false);
        let exported = call
            .args
            .get(3)
            .and_then(tropic_model::Value::as_bool)
            .unwrap_or(false);
        let mut st = self.state.lock();
        if st.images.contains_key(&image) {
            return Err(DeviceError::AlreadyExists(self.mount.join(&image)));
        }
        let used: i64 = st.images.values().map(|i| i.size_mb).sum();
        if used + size_mb > self.capacity_mb {
            return Err(DeviceError::InvalidState {
                path: self.mount.clone(),
                message: format!(
                    "insufficient capacity: {used} + {size_mb} > {}",
                    self.capacity_mb
                ),
            });
        }
        st.images.insert(
            image,
            ImageRec {
                size_mb,
                template,
                exported,
            },
        );
        Ok(())
    }

    fn do_set_export(&self, call: &ActionCall, exported: bool) -> DeviceResult<()> {
        let image = call.arg_str(0)?;
        let mut st = self.state.lock();
        let rec = st
            .images
            .get_mut(image)
            .ok_or_else(|| DeviceError::NoSuchObject(self.mount.join(image)))?;
        if rec.exported == exported {
            return Err(DeviceError::InvalidState {
                path: self.mount.join(image),
                message: format!(
                    "image already {}",
                    if exported { "exported" } else { "unexported" }
                ),
            });
        }
        rec.exported = exported;
        Ok(())
    }
}

impl Device for StorageServer {
    fn name(&self) -> &str {
        &self.name
    }

    fn mount(&self) -> &Path {
        &self.mount
    }

    fn invoke(&self, call: &ActionCall) -> DeviceResult<()> {
        if call.object != self.mount {
            return Err(DeviceError::NoSuchObject(call.object.clone()));
        }
        self.latency.apply(&call.action);
        if let Some(message) = self.faults.roll(&call.action) {
            return Err(DeviceError::InjectedFault {
                action: call.action.clone(),
                message,
            });
        }
        match call.action.as_str() {
            "cloneImage" => self.do_clone(call),
            "removeImage" => self.do_remove(call),
            "restoreImage" => self.do_restore(call),
            "exportImage" => self.do_set_export(call, true),
            "unexportImage" => self.do_set_export(call, false),
            other => Err(DeviceError::UnknownAction(other.to_owned())),
        }
    }

    fn export_state(&self) -> Node {
        let st = self.state.lock();
        let mut node = Node::new("storageHost")
            .with_attr("capacityMb", self.capacity_mb)
            .with_attr("usedMb", st.images.values().map(|i| i.size_mb).sum::<i64>());
        for (name, rec) in &st.images {
            node.insert_child(
                name.clone(),
                Node::new("image")
                    .with_attr("sizeMb", rec.size_mb)
                    .with_attr("template", rec.template)
                    .with_attr("exported", rec.exported),
            );
        }
        node
    }

    fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tropic_model::Value;

    fn server() -> StorageServer {
        let s = StorageServer::new(
            Path::parse("/storageRoot/s1").unwrap(),
            100_000,
            LatencyModel::zero(),
        );
        s.install_template("template-linux", 8_192);
        s
    }

    fn call(s: &StorageServer, action: &str, args: Vec<Value>) -> DeviceResult<()> {
        s.invoke(&ActionCall::new(s.mount().clone(), action, args))
    }

    #[test]
    fn clone_export_unexport_remove() {
        let s = server();
        call(
            &s,
            "cloneImage",
            vec!["template-linux".into(), "vm1-img".into()],
        )
        .unwrap();
        assert!(s.has_image("vm1-img"));
        assert_eq!(s.used_mb(), 16_384);
        call(&s, "exportImage", vec!["vm1-img".into()]).unwrap();
        assert!(s.is_exported("vm1-img"));
        call(&s, "unexportImage", vec!["vm1-img".into()]).unwrap();
        call(&s, "removeImage", vec!["vm1-img".into()]).unwrap();
        assert!(!s.has_image("vm1-img"));
        assert_eq!(s.used_mb(), 8_192);
    }

    #[test]
    fn clone_guards() {
        let s = server();
        assert!(matches!(
            call(&s, "cloneImage", vec!["ghost".into(), "x".into()]),
            Err(DeviceError::NoSuchObject(_))
        ));
        call(&s, "cloneImage", vec!["template-linux".into(), "a".into()]).unwrap();
        assert!(matches!(
            call(&s, "cloneImage", vec!["template-linux".into(), "a".into()]),
            Err(DeviceError::AlreadyExists(_))
        ));
        // Cloning from a non-template image is rejected.
        assert!(matches!(
            call(&s, "cloneImage", vec!["a".into(), "b".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
    }

    #[test]
    fn capacity_enforced() {
        let s = StorageServer::new(
            Path::parse("/storageRoot/tiny").unwrap(),
            10_000,
            LatencyModel::zero(),
        );
        s.install_template("t", 4_000);
        call(&s, "cloneImage", vec!["t".into(), "a".into()]).unwrap();
        let err = call(&s, "cloneImage", vec!["t".into(), "b".into()]).unwrap_err();
        assert!(err.to_string().contains("insufficient capacity"));
    }

    #[test]
    fn remove_guards() {
        let s = server();
        call(&s, "cloneImage", vec!["template-linux".into(), "a".into()]).unwrap();
        call(&s, "exportImage", vec!["a".into()]).unwrap();
        assert!(matches!(
            call(&s, "removeImage", vec!["a".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
        assert!(matches!(
            call(&s, "removeImage", vec!["template-linux".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
        assert!(matches!(
            call(&s, "removeImage", vec!["ghost".into()]),
            Err(DeviceError::NoSuchObject(_))
        ));
    }

    #[test]
    fn export_transitions_guarded() {
        let s = server();
        call(&s, "cloneImage", vec!["template-linux".into(), "a".into()]).unwrap();
        call(&s, "exportImage", vec!["a".into()]).unwrap();
        assert!(matches!(
            call(&s, "exportImage", vec!["a".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
        call(&s, "unexportImage", vec!["a".into()]).unwrap();
        assert!(matches!(
            call(&s, "unexportImage", vec!["a".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
    }

    #[test]
    fn injected_fault_keeps_state() {
        let s = server();
        s.fault_plan().fail_once("cloneImage");
        assert!(matches!(
            call(&s, "cloneImage", vec!["template-linux".into(), "a".into()]),
            Err(DeviceError::InjectedFault { .. })
        ));
        assert!(!s.has_image("a"));
    }

    #[test]
    fn export_state_shape() {
        let s = server();
        call(&s, "cloneImage", vec!["template-linux".into(), "a".into()]).unwrap();
        call(&s, "exportImage", vec!["a".into()]).unwrap();
        let node = s.export_state();
        assert_eq!(node.entity(), "storageHost");
        assert_eq!(node.attr_int("usedMb"), Some(16_384));
        assert_eq!(node.child("a").unwrap().attr_bool("exported"), Some(true));
        assert_eq!(
            node.child("template-linux").unwrap().attr_bool("template"),
            Some(true)
        );
    }

    #[test]
    fn restore_image_reverses_remove() {
        let s = server();
        call(&s, "cloneImage", vec!["template-linux".into(), "a".into()]).unwrap();
        call(&s, "removeImage", vec!["a".into()]).unwrap();
        call(
            &s,
            "restoreImage",
            vec![
                "a".into(),
                Value::Int(8_192),
                Value::Bool(false),
                Value::Bool(false),
            ],
        )
        .unwrap();
        assert!(s.has_image("a"));
        assert_eq!(s.used_mb(), 16_384);
        // Restoring an existing image is rejected.
        assert!(matches!(
            call(
                &s,
                "restoreImage",
                vec![
                    "a".into(),
                    Value::Int(8_192),
                    Value::Bool(false),
                    Value::Bool(false)
                ],
            ),
            Err(DeviceError::AlreadyExists(_))
        ));
    }

    #[test]
    fn oob_lose_image() {
        let s = server();
        call(&s, "cloneImage", vec!["template-linux".into(), "a".into()]).unwrap();
        assert!(s.oob_lose_image("a"));
        assert!(!s.has_image("a"));
    }
}

//! Simulated compute servers (the Xen hosts of the paper's TCloud, §5).
//!
//! A compute server imports exported VM images, and creates, starts, stops,
//! and removes VMs. Out-of-band hooks simulate the volatility of §4: host
//! reboots that power VMs off behind the controller's back, and operator
//! changes made without going through TROPIC.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::Mutex;
use tropic_model::{Node, Path, Value};

use crate::api::{ActionCall, Device};
use crate::error::{DeviceError, DeviceResult};
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;

/// Power state of a simulated VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmPower {
    /// Defined but not running.
    Stopped,
    /// Running.
    Running,
}

impl VmPower {
    /// The model-attribute string form (`"stopped"`/`"running"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            VmPower::Stopped => "stopped",
            VmPower::Running => "running",
        }
    }
}

#[derive(Clone, Debug)]
struct VmRec {
    image: String,
    mem: i64,
    power: VmPower,
    /// Hypervisor the VM was created for; must match the host's (the VM-type
    /// constraint of §6.2 checks this in the logical layer).
    hypervisor: String,
}

#[derive(Debug, Default)]
struct ComputeState {
    imported: BTreeSet<String>,
    vms: BTreeMap<String, VmRec>,
}

/// A simulated compute server.
pub struct ComputeServer {
    name: String,
    mount: Path,
    hypervisor: String,
    mem_capacity: i64,
    state: Mutex<ComputeState>,
    faults: FaultPlan,
    latency: LatencyModel,
}

impl ComputeServer {
    /// Creates a compute server mounted at `mount`.
    pub fn new(
        mount: Path,
        hypervisor: impl Into<String>,
        mem_capacity: i64,
        latency: LatencyModel,
    ) -> Self {
        let name = mount.leaf().unwrap_or("compute").to_owned();
        ComputeServer {
            name,
            mount,
            hypervisor: hypervisor.into(),
            mem_capacity,
            state: Mutex::new(ComputeState::default()),
            faults: FaultPlan::none(),
            latency,
        }
    }

    /// The hypervisor type (e.g. `"xen"`, `"kvm"`).
    pub fn hypervisor(&self) -> &str {
        &self.hypervisor
    }

    /// Physical memory capacity in MB.
    pub fn mem_capacity(&self) -> i64 {
        self.mem_capacity
    }

    /// Number of VMs currently defined.
    pub fn vm_count(&self) -> usize {
        self.state.lock().vms.len()
    }

    /// Power state of a VM, if it exists.
    pub fn vm_power(&self, name: &str) -> Option<VmPower> {
        self.state.lock().vms.get(name).map(|v| v.power)
    }

    /// Returns `true` if `image` has been imported on this host.
    pub fn has_imported(&self, image: &str) -> bool {
        self.state.lock().imported.contains(image)
    }

    // Out-of-band hooks (paper §4: resource volatility).

    /// Simulates an unexpected host reboot: every running VM is powered off
    /// without TROPIC's knowledge. Returns the names of affected VMs.
    pub fn oob_power_cycle(&self) -> Vec<String> {
        let mut st = self.state.lock();
        let mut affected = Vec::new();
        for (name, vm) in st.vms.iter_mut() {
            if vm.power == VmPower::Running {
                vm.power = VmPower::Stopped;
                affected.push(name.clone());
            }
        }
        affected
    }

    /// Simulates an operator deleting a VM via the device CLI.
    pub fn oob_remove_vm(&self, name: &str) -> bool {
        self.state.lock().vms.remove(name).is_some()
    }

    /// Simulates an operator creating a VM via the device CLI.
    pub fn oob_create_vm(&self, name: &str, image: &str, mem: i64, running: bool) {
        self.state.lock().vms.insert(
            name.to_owned(),
            VmRec {
                image: image.to_owned(),
                mem,
                power: if running {
                    VmPower::Running
                } else {
                    VmPower::Stopped
                },
                hypervisor: self.hypervisor.clone(),
            },
        );
    }

    fn check_object(&self, call: &ActionCall) -> DeviceResult<()> {
        if call.object != self.mount {
            return Err(DeviceError::NoSuchObject(call.object.clone()));
        }
        Ok(())
    }

    fn do_import(&self, call: &ActionCall) -> DeviceResult<()> {
        let image = call.arg_str(0)?;
        let mut st = self.state.lock();
        if !st.imported.insert(image.to_owned()) {
            return Err(DeviceError::InvalidState {
                path: self.mount.clone(),
                message: format!("image {image} already imported"),
            });
        }
        Ok(())
    }

    fn do_unimport(&self, call: &ActionCall) -> DeviceResult<()> {
        let image = call.arg_str(0)?;
        let mut st = self.state.lock();
        if st.vms.values().any(|vm| vm.image == image) {
            return Err(DeviceError::InvalidState {
                path: self.mount.clone(),
                message: format!("image {image} still used by a VM"),
            });
        }
        if !st.imported.remove(image) {
            return Err(DeviceError::InvalidState {
                path: self.mount.clone(),
                message: format!("image {image} not imported"),
            });
        }
        Ok(())
    }

    fn do_create_vm(&self, call: &ActionCall) -> DeviceResult<()> {
        let name = call.arg_str(0)?.to_owned();
        let image = call.arg_str(1)?.to_owned();
        let mem = call.arg_int(2)?;
        let mut st = self.state.lock();
        if st.vms.contains_key(&name) {
            return Err(DeviceError::AlreadyExists(self.mount.join(&name)));
        }
        if !st.imported.contains(&image) {
            return Err(DeviceError::InvalidState {
                path: self.mount.clone(),
                message: format!("image {image} not imported on this host"),
            });
        }
        st.vms.insert(
            name,
            VmRec {
                image,
                mem,
                power: VmPower::Stopped,
                hypervisor: self.hypervisor.clone(),
            },
        );
        Ok(())
    }

    fn do_remove_vm(&self, call: &ActionCall) -> DeviceResult<()> {
        let name = call.arg_str(0)?;
        let mut st = self.state.lock();
        match st.vms.get(name) {
            None => Err(DeviceError::NoSuchObject(self.mount.join(name))),
            Some(vm) if vm.power == VmPower::Running => Err(DeviceError::InvalidState {
                path: self.mount.join(name),
                message: "cannot remove a running VM".into(),
            }),
            Some(_) => {
                st.vms.remove(name);
                Ok(())
            }
        }
    }

    fn do_set_power(&self, call: &ActionCall, target: VmPower) -> DeviceResult<()> {
        let name = call.arg_str(0)?;
        let mut st = self.state.lock();
        let vm = st
            .vms
            .get_mut(name)
            .ok_or_else(|| DeviceError::NoSuchObject(self.mount.join(name)))?;
        if vm.power == target {
            return Err(DeviceError::InvalidState {
                path: self.mount.join(name),
                message: format!("VM already {}", target.as_str()),
            });
        }
        vm.power = target;
        Ok(())
    }
}

impl Device for ComputeServer {
    fn name(&self) -> &str {
        &self.name
    }

    fn mount(&self) -> &Path {
        &self.mount
    }

    fn invoke(&self, call: &ActionCall) -> DeviceResult<()> {
        self.check_object(call)?;
        self.latency.apply(&call.action);
        if let Some(message) = self.faults.roll(&call.action) {
            return Err(DeviceError::InjectedFault {
                action: call.action.clone(),
                message,
            });
        }
        match call.action.as_str() {
            "importImage" => self.do_import(call),
            "unimportImage" => self.do_unimport(call),
            "createVM" => self.do_create_vm(call),
            "removeVM" => self.do_remove_vm(call),
            "startVM" => self.do_set_power(call, VmPower::Running),
            "stopVM" => self.do_set_power(call, VmPower::Stopped),
            other => Err(DeviceError::UnknownAction(other.to_owned())),
        }
    }

    fn export_state(&self) -> Node {
        let st = self.state.lock();
        let mut node = Node::new("vmHost")
            .with_attr("hypervisor", self.hypervisor.as_str())
            .with_attr("memCapacity", self.mem_capacity)
            .with_attr(
                "importedImages",
                Value::List(
                    st.imported
                        .iter()
                        .map(|s| Value::from(s.as_str()))
                        .collect(),
                ),
            );
        for (name, vm) in &st.vms {
            node.insert_child(
                name.clone(),
                Node::new("vm")
                    .with_attr("image", vm.image.as_str())
                    .with_attr("mem", vm.mem)
                    .with_attr("state", vm.power.as_str())
                    .with_attr("hypervisor", vm.hypervisor.as_str()),
            );
        }
        node
    }

    fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> ComputeServer {
        ComputeServer::new(
            Path::parse("/vmRoot/h1").unwrap(),
            "xen",
            32768,
            LatencyModel::zero(),
        )
    }

    fn call(host: &ComputeServer, action: &str, args: Vec<Value>) -> DeviceResult<()> {
        host.invoke(&ActionCall::new(host.mount().clone(), action, args))
    }

    fn spawn_sequence(h: &ComputeServer) {
        call(h, "importImage", vec!["img1".into()]).unwrap();
        call(
            h,
            "createVM",
            vec!["vm1".into(), "img1".into(), Value::Int(2048)],
        )
        .unwrap();
        call(h, "startVM", vec!["vm1".into()]).unwrap();
    }

    #[test]
    fn vm_lifecycle() {
        let h = host();
        spawn_sequence(&h);
        assert_eq!(h.vm_power("vm1"), Some(VmPower::Running));
        call(&h, "stopVM", vec!["vm1".into()]).unwrap();
        assert_eq!(h.vm_power("vm1"), Some(VmPower::Stopped));
        call(&h, "removeVM", vec!["vm1".into()]).unwrap();
        assert_eq!(h.vm_count(), 0);
        call(&h, "unimportImage", vec!["img1".into()]).unwrap();
        assert!(!h.has_imported("img1"));
    }

    #[test]
    fn create_requires_imported_image() {
        let h = host();
        let err = call(
            &h,
            "createVM",
            vec!["vm1".into(), "img1".into(), Value::Int(512)],
        )
        .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidState { .. }));
    }

    #[test]
    fn duplicate_creates_rejected() {
        let h = host();
        call(&h, "importImage", vec!["i".into()]).unwrap();
        assert!(matches!(
            call(&h, "importImage", vec!["i".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
        call(&h, "createVM", vec!["v".into(), "i".into(), Value::Int(1)]).unwrap();
        assert!(matches!(
            call(&h, "createVM", vec!["v".into(), "i".into(), Value::Int(1)]),
            Err(DeviceError::AlreadyExists(_))
        ));
    }

    #[test]
    fn power_transitions_guarded() {
        let h = host();
        spawn_sequence(&h);
        assert!(matches!(
            call(&h, "startVM", vec!["vm1".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
        assert!(matches!(
            call(&h, "removeVM", vec!["vm1".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
        assert!(matches!(
            call(&h, "stopVM", vec!["ghost".into()]),
            Err(DeviceError::NoSuchObject(_))
        ));
    }

    #[test]
    fn unimport_blocked_while_in_use() {
        let h = host();
        spawn_sequence(&h);
        assert!(matches!(
            call(&h, "unimportImage", vec!["img1".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
    }

    #[test]
    fn unknown_action_and_wrong_object() {
        let h = host();
        assert!(matches!(
            call(&h, "frobnicate", vec![]),
            Err(DeviceError::UnknownAction(_))
        ));
        let wrong = ActionCall::new(Path::parse("/vmRoot/other").unwrap(), "startVM", vec![]);
        assert!(matches!(
            h.invoke(&wrong),
            Err(DeviceError::NoSuchObject(_))
        ));
    }

    #[test]
    fn injected_fault_leaves_state_unchanged() {
        let h = host();
        call(&h, "importImage", vec!["i".into()]).unwrap();
        h.fault_plan().fail_once("createVM");
        let err = call(&h, "createVM", vec!["v".into(), "i".into(), Value::Int(1)]).unwrap_err();
        assert!(matches!(err, DeviceError::InjectedFault { .. }));
        assert_eq!(h.vm_count(), 0);
        // Retry succeeds (one-shot).
        call(&h, "createVM", vec!["v".into(), "i".into(), Value::Int(1)]).unwrap();
    }

    #[test]
    fn oob_power_cycle_stops_running_vms() {
        let h = host();
        spawn_sequence(&h);
        let affected = h.oob_power_cycle();
        assert_eq!(affected, vec!["vm1".to_string()]);
        assert_eq!(h.vm_power("vm1"), Some(VmPower::Stopped));
        assert!(h.oob_power_cycle().is_empty());
    }

    #[test]
    fn export_state_reflects_vms() {
        let h = host();
        spawn_sequence(&h);
        let node = h.export_state();
        assert_eq!(node.entity(), "vmHost");
        assert_eq!(node.attr_str("hypervisor"), Some("xen"));
        let vm = node.child("vm1").unwrap();
        assert_eq!(vm.attr_str("state"), Some("running"));
        assert_eq!(vm.attr_int("mem"), Some(2048));
        assert_eq!(
            node.attr("importedImages")
                .unwrap()
                .as_list()
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn oob_create_and_remove() {
        let h = host();
        h.oob_create_vm("rogue", "imgX", 512, true);
        assert_eq!(h.vm_power("rogue"), Some(VmPower::Running));
        assert!(h.oob_remove_vm("rogue"));
        assert!(!h.oob_remove_vm("rogue"));
    }
}

//! The device registry: routes physical actions and assembles the physical
//! data model.
//!
//! Workers resolve every execution-log record's object path to a device
//! through the registry (paper §3.2). Reconciliation asks the registry for
//! the full physical tree — the "frame" of non-device nodes (roots such as
//! `/vmRoot`) plus each device's exported subtree (paper §4).

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::RwLock;
use tropic_model::{Path, Tree};

use crate::api::{ActionCall, Device, NOOP_ACTION};
use crate::error::{DeviceError, DeviceResult};
use crate::fault::FaultStats;
use crate::report::{ReportLedger, ReportSender, StateReport};

/// Routes action calls to devices and exports the physical layer's state.
pub struct DeviceRegistry {
    /// Non-device scaffolding of the data model (e.g. `/vmRoot` nodes).
    frame: RwLock<Tree>,
    devices: RwLock<BTreeMap<Path, Arc<dyn Device>>>,
}

impl DeviceRegistry {
    /// Creates a registry whose physical tree starts from `frame` — the
    /// nodes *above* the device mounts.
    pub fn new(frame: Tree) -> Self {
        DeviceRegistry {
            frame: RwLock::new(frame),
            devices: RwLock::new(BTreeMap::new()),
        }
    }

    /// Registers a device at its mount path.
    pub fn register(&self, device: Arc<dyn Device>) {
        self.devices.write().insert(device.mount().clone(), device);
    }

    /// Removes (decommissions) the device mounted at `mount`.
    pub fn deregister(&self, mount: &Path) -> Option<Arc<dyn Device>> {
        self.devices.write().remove(mount)
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.read().len()
    }

    /// Returns `true` if no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.devices.read().is_empty()
    }

    /// Finds the device owning `object`: the registered mount that equals or
    /// is an ancestor of the path.
    pub fn resolve(&self, object: &Path) -> Option<Arc<dyn Device>> {
        let devices = self.devices.read();
        // Longest matching mount wins (mounts may nest in exotic setups).
        devices
            .iter()
            .filter(|(mount, _)| mount.contains(object))
            .max_by_key(|(mount, _)| mount.depth())
            .map(|(_, d)| Arc::clone(d))
    }

    /// Routes one action call to its device.
    ///
    /// The reserved [`NOOP_ACTION`] succeeds without touching any device —
    /// it is the universal undo of twin-scheduled repairs and must succeed
    /// even when the object's device is down or decommissioned.
    pub fn invoke(&self, call: &ActionCall) -> DeviceResult<()> {
        if call.action == NOOP_ACTION {
            return Ok(());
        }
        let device = self
            .resolve(&call.object)
            .ok_or_else(|| DeviceError::NoSuchObject(call.object.clone()))?;
        device.invoke(call)
    }

    /// Mounts of all registered devices.
    pub fn mounts(&self) -> Vec<Path> {
        self.devices.read().keys().cloned().collect()
    }

    /// Fleet-wide fault-injection counters: the sum of every registered
    /// device's [`FaultPlan`](crate::FaultPlan) counters. The platform
    /// surfaces this through its counter snapshot so operators and the
    /// chaos harness can attribute aborts to injected faults.
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for device in self.devices.read().values() {
            total.merge(device.fault_plan().stats());
        }
        total
    }

    /// Assembles the current physical tree: the frame plus every device's
    /// exported state. Devices whose mount's parent is missing from the
    /// frame are skipped (they were registered without scaffolding).
    pub fn physical_tree(&self) -> Tree {
        let mut tree = self.frame.read().clone();
        for (mount, device) in self.devices.read().iter() {
            let node = device.export_state();
            if tree.exists(mount) {
                let _ = tree.replace(mount, node);
            } else if mount
                .parent()
                .map(|parent| tree.exists(&parent))
                .unwrap_or(false)
            {
                let _ = tree.insert(mount, node);
            }
        }
        tree
    }

    /// Exports the physical state of a single subtree: the device owning
    /// `scope` (or all devices under it) re-exported into a copy of the
    /// frame. Returns `None` when no device covers the scope.
    pub fn physical_subtree(&self, scope: &Path) -> Option<Tree> {
        let tree = self.physical_tree();
        tree.get(scope)?;
        Some(tree)
    }

    /// Publishes a [`StateReport`] for every device whose exported state or
    /// down flag changed since the last call with the same `ledger`.
    ///
    /// This is the reported-state ingestion hook of the digital twin: the
    /// platform's report pump calls it periodically, the `ledger` suppresses
    /// unchanged mounts (quiescent fleets publish nothing), and each
    /// published report carries the per-mount monotonic `seq` the ledger
    /// hands out. Returns the number of reports published.
    pub fn publish_reports(
        &self,
        ledger: &ReportLedger,
        sender: &ReportSender,
        now_ms: u64,
    ) -> usize {
        let mut published = 0;
        for (mount, device) in self.devices.read().iter() {
            let state = device.export_state();
            let down = device.fault_plan().is_down();
            let fingerprint = report_fingerprint(&state, down);
            if let Some(seq) = ledger.advance(mount, fingerprint) {
                sender.send(StateReport {
                    mount: mount.clone(),
                    state,
                    down,
                    seq,
                    at_ms: now_ms,
                });
                published += 1;
            }
        }
        published
    }
}

/// Stable fingerprint of an exported `(state, down)` pair, used by the
/// report ledger to detect change. Hashes the canonical JSON encoding so it
/// only depends on the state's value, not on in-memory layout.
fn report_fingerprint(state: &tropic_model::Node, down: bool) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    match serde_json::to_string(state) {
        Ok(json) => json.hash(&mut hasher),
        Err(_) => "unencodable".hash(&mut hasher),
    }
    down.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeServer;
    use crate::latency::LatencyModel;
    use crate::storage::StorageServer;
    use tropic_model::{Node, Value};

    fn frame() -> Tree {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        t.insert(
            &Path::parse("/storageRoot").unwrap(),
            Node::new("storageRoot"),
        )
        .unwrap();
        t
    }

    fn registry() -> DeviceRegistry {
        let reg = DeviceRegistry::new(frame());
        reg.register(Arc::new(ComputeServer::new(
            Path::parse("/vmRoot/h1").unwrap(),
            "xen",
            32768,
            LatencyModel::zero(),
        )));
        let storage = StorageServer::new(
            Path::parse("/storageRoot/s1").unwrap(),
            100_000,
            LatencyModel::zero(),
        );
        storage.install_template("tmpl", 4096);
        reg.register(Arc::new(storage));
        reg
    }

    #[test]
    fn resolve_by_mount_and_descendant() {
        let reg = registry();
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        assert_eq!(reg.resolve(&h1).unwrap().name(), "h1");
        // A descendant object (a VM under the host) routes to the host.
        let vm = Path::parse("/vmRoot/h1/vm1").unwrap();
        assert_eq!(reg.resolve(&vm).unwrap().name(), "h1");
        assert!(reg.resolve(&Path::parse("/vmRoot/h2").unwrap()).is_none());
    }

    #[test]
    fn invoke_routes_to_device() {
        let reg = registry();
        let s1 = Path::parse("/storageRoot/s1").unwrap();
        reg.invoke(&ActionCall::new(
            s1.clone(),
            "cloneImage",
            vec!["tmpl".into(), "img".into()],
        ))
        .unwrap();
        let err = reg
            .invoke(&ActionCall::new(
                Path::parse("/storageRoot/ghost").unwrap(),
                "cloneImage",
                vec!["tmpl".into(), "img".into()],
            ))
            .unwrap_err();
        assert!(matches!(err, DeviceError::NoSuchObject(_)));
    }

    #[test]
    fn physical_tree_includes_device_state() {
        let reg = registry();
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        reg.invoke(&ActionCall::new(
            h1.clone(),
            "importImage",
            vec!["img".into()],
        ))
        .unwrap();
        reg.invoke(&ActionCall::new(
            h1.clone(),
            "createVM",
            vec!["vm1".into(), "img".into(), Value::Int(1024)],
        ))
        .unwrap();
        let tree = reg.physical_tree();
        assert_eq!(tree.get(&h1).unwrap().entity(), "vmHost");
        assert!(tree.exists(&Path::parse("/vmRoot/h1/vm1").unwrap()));
        assert!(tree.exists(&Path::parse("/storageRoot/s1/tmpl").unwrap()));
    }

    #[test]
    fn deregister_decommissions() {
        let reg = registry();
        assert_eq!(reg.len(), 2);
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        assert!(reg.deregister(&h1).is_some());
        assert_eq!(reg.len(), 1);
        assert!(reg.resolve(&h1).is_none());
        // The physical tree no longer mounts the host.
        assert!(!reg.physical_tree().exists(&h1));
    }

    #[test]
    fn fault_stats_aggregate_across_devices() {
        let reg = registry();
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        let s1 = Path::parse("/storageRoot/s1").unwrap();
        reg.resolve(&h1)
            .unwrap()
            .fault_plan()
            .fail_once("importImage");
        // One injected failure on the compute host, one pass on storage.
        assert!(reg
            .invoke(&ActionCall::new(h1, "importImage", vec!["img".into()]))
            .is_err());
        reg.invoke(&ActionCall::new(
            s1,
            "cloneImage",
            vec!["tmpl".into(), "img2".into()],
        ))
        .unwrap();
        let stats = reg.fault_stats();
        assert_eq!(stats.injected, 1);
        assert_eq!(stats.passed, 1);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn noop_action_bypasses_devices() {
        let reg = registry();
        // Succeeds on a real device without rolling its fault plan...
        reg.resolve(&Path::parse("/vmRoot/h1").unwrap())
            .unwrap()
            .fault_plan()
            .set_down(true);
        reg.invoke(&ActionCall::new(
            Path::parse("/vmRoot/h1").unwrap(),
            NOOP_ACTION,
            vec![],
        ))
        .unwrap();
        // ...and even on objects no device owns.
        reg.invoke(&ActionCall::new(
            Path::parse("/vmRoot/ghost").unwrap(),
            NOOP_ACTION,
            vec![],
        ))
        .unwrap();
        assert_eq!(reg.fault_stats().total(), 0);
    }

    #[test]
    fn publish_reports_dedups_and_tracks_down() {
        use crate::report::{report_channel, ReportLedger};
        let reg = registry();
        let ledger = ReportLedger::new();
        let (tx, rx) = report_channel();
        // First sweep reports every device.
        assert_eq!(reg.publish_reports(&ledger, &tx, 10), 2);
        let first = rx.drain();
        assert_eq!(first.len(), 2);
        assert!(first.iter().all(|r| r.seq == 1 && !r.down));
        // Quiescent fleet: nothing new.
        assert_eq!(reg.publish_reports(&ledger, &tx, 20), 0);
        assert!(rx.drain().is_empty());
        // A fault-driven transition (device down) is itself a report.
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        reg.resolve(&h1).unwrap().fault_plan().set_down(true);
        assert_eq!(reg.publish_reports(&ledger, &tx, 30), 1);
        let down = rx.drain();
        assert_eq!(down.len(), 1);
        assert_eq!(down[0].mount, h1);
        assert!(down[0].down);
        assert_eq!(down[0].seq, 2);
        assert_eq!(down[0].at_ms, 30);
        // Out-of-band state change is detected too.
        reg.resolve(&h1).unwrap().fault_plan().set_down(false);
        reg.invoke(&ActionCall::new(
            h1.clone(),
            "importImage",
            vec!["img".into()],
        ))
        .unwrap();
        assert_eq!(reg.publish_reports(&ledger, &tx, 40), 1);
        let changed = rx.drain();
        assert_eq!(changed[0].seq, 3);
        assert!(!changed[0].down);
    }

    #[test]
    fn physical_subtree_scoped() {
        let reg = registry();
        let scope = Path::parse("/storageRoot").unwrap();
        let sub = reg.physical_subtree(&scope).unwrap();
        assert!(sub.exists(&Path::parse("/storageRoot/s1").unwrap()));
        assert!(reg
            .physical_subtree(&Path::parse("/unknown").unwrap())
            .is_none());
    }
}

//! Asynchronous reported-state publishing: the device side of the
//! digital-twin pipeline.
//!
//! TROPIC's reconciliation (paper §4) compares the logical layer against
//! physical state pulled on demand. The twin subsystem inverts the flow:
//! devices *push* [`StateReport`]s — their exported subtree plus their
//! reachability (the fault plan's down flag) — through a report channel.
//! A platform-side pump drains the channel and persists each report in the
//! coordination store's `twin/` subtree, where the controller's reconciler
//! diffs it against desired state. Reports are versioned with a per-mount
//! monotonic `seq` so consumers can skip unchanged state cheaply.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use tropic_model::{Node, Path};

/// One device's asynchronously reported state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StateReport {
    /// The device's mount path in the data model.
    pub mount: Path,
    /// The exported physical subtree rooted at the mount.
    pub state: Node,
    /// `true` when the device is unreachable (its fault plan marks it
    /// down). The state then reflects the last exportable view.
    pub down: bool,
    /// Per-mount monotonic version: bumped every time the exported state
    /// or the down flag changes. Consumers skip reports whose `seq` they
    /// have already processed.
    pub seq: u64,
    /// Publication timestamp (platform clock, ms).
    pub at_ms: u64,
}

/// Sending half of a report channel, cloneable across publisher threads.
#[derive(Clone)]
pub struct ReportSender {
    tx: Sender<StateReport>,
}

impl ReportSender {
    /// Publishes one report. Errors (receiver dropped) are swallowed:
    /// reporting is best-effort by design, the reconciler re-reads
    /// persisted state.
    pub fn send(&self, report: StateReport) {
        let _ = self.tx.send(report);
    }
}

/// Receiving half of a report channel.
pub struct ReportReceiver {
    rx: Receiver<StateReport>,
}

impl ReportReceiver {
    /// Drains every report currently queued, in publication order.
    pub fn drain(&self) -> Vec<StateReport> {
        let mut out = Vec::new();
        while let Ok(r) = self.rx.try_recv() {
            out.push(r);
        }
        out
    }
}

/// Creates a report channel: devices (via
/// [`DeviceRegistry::publish_reports`](crate::DeviceRegistry::publish_reports))
/// push into the [`ReportSender`], the twin pump drains the
/// [`ReportReceiver`].
pub fn report_channel() -> (ReportSender, ReportReceiver) {
    let (tx, rx) = channel();
    (ReportSender { tx }, ReportReceiver { rx })
}

/// Publisher-side dedup state: remembers each mount's last published state
/// fingerprint and hands out the monotonic `seq`, so quiescent devices cost
/// no channel traffic and no coordination-store writes.
#[derive(Default)]
pub struct ReportLedger {
    state: Mutex<HashMap<Path, (u64, u64)>>,
}

impl ReportLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decides whether a freshly exported `(state, down)` pair for `mount`
    /// differs from the last published one. Returns the `seq` to stamp on
    /// the report when it changed, `None` when unchanged.
    pub fn advance(&self, mount: &Path, fingerprint: u64) -> Option<u64> {
        let mut state = self.state.lock();
        match state.get_mut(mount) {
            Some((last_fp, seq)) if *last_fp == fingerprint => {
                let _ = seq;
                None
            }
            Some((last_fp, seq)) => {
                *last_fp = fingerprint;
                *seq += 1;
                Some(*seq)
            }
            None => {
                state.insert(mount.clone(), (fingerprint, 1));
                Some(1)
            }
        }
    }

    /// Forgets a mount (device deregistered).
    pub fn forget(&self, mount: &Path) {
        self.state.lock().remove(mount);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = report_channel();
        for i in 1..=3u64 {
            tx.send(StateReport {
                mount: Path::parse("/vmRoot/h1").unwrap(),
                state: Node::new("vmHost"),
                down: false,
                seq: i,
                at_ms: i * 10,
            });
        }
        let got = rx.drain();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[2].seq, 3);
        assert!(rx.drain().is_empty());
    }

    #[test]
    fn sender_survives_dropped_receiver() {
        let (tx, rx) = report_channel();
        drop(rx);
        tx.send(StateReport {
            mount: Path::parse("/x").unwrap(),
            state: Node::new("n"),
            down: false,
            seq: 1,
            at_ms: 0,
        });
    }

    #[test]
    fn ledger_skips_unchanged_and_bumps_seq() {
        let ledger = ReportLedger::new();
        let m = Path::parse("/vmRoot/h1").unwrap();
        assert_eq!(ledger.advance(&m, 7), Some(1));
        assert_eq!(ledger.advance(&m, 7), None);
        assert_eq!(ledger.advance(&m, 8), Some(2));
        assert_eq!(ledger.advance(&m, 7), Some(3));
        ledger.forget(&m);
        assert_eq!(ledger.advance(&m, 7), Some(1));
    }

    #[test]
    fn report_roundtrips_as_json() {
        let rep = StateReport {
            mount: Path::parse("/vmRoot/h1").unwrap(),
            state: Node::new("vmHost"),
            down: true,
            seq: 4,
            at_ms: 99,
        };
        let json = serde_json::to_vec(&rep).unwrap();
        let back: StateReport = serde_json::from_slice(&json).unwrap();
        assert_eq!(back.mount, rep.mount);
        assert!(back.down);
        assert_eq!(back.seq, 4);
    }
}

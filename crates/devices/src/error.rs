//! Device-layer errors.

use std::fmt;

use tropic_model::Path;

/// Errors raised by simulated physical devices.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The device has no object at the given path.
    NoSuchObject(Path),
    /// An object already exists where one would be created.
    AlreadyExists(Path),
    /// The action name is not supported by this device.
    UnknownAction(String),
    /// An action argument was missing or malformed.
    BadArgument {
        /// The action being invoked.
        action: String,
        /// Description of the problem.
        message: String,
    },
    /// The object is in the wrong state for the action (e.g. starting a VM
    /// that is already running).
    InvalidState {
        /// Path of the object.
        path: Path,
        /// Description of the problem.
        message: String,
    },
    /// An injected fault: the action failed mid-flight (paper §6.3 injects
    /// exactly these).
    InjectedFault {
        /// The action that failed.
        action: String,
        /// Injection context.
        message: String,
    },
    /// The device is unreachable (crashed or powered off).
    Unreachable(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NoSuchObject(p) => write!(f, "no such object: {p}"),
            DeviceError::AlreadyExists(p) => write!(f, "object already exists: {p}"),
            DeviceError::UnknownAction(a) => write!(f, "unknown action: {a}"),
            DeviceError::BadArgument { action, message } => {
                write!(f, "bad argument to {action}: {message}")
            }
            DeviceError::InvalidState { path, message } => {
                write!(f, "invalid state at {path}: {message}")
            }
            DeviceError::InjectedFault { action, message } => {
                write!(f, "injected fault in {action}: {message}")
            }
            DeviceError::Unreachable(name) => write!(f, "device unreachable: {name}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Convenience alias for device results.
pub type DeviceResult<T> = Result<T, DeviceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let p = Path::parse("/vmRoot/h1/vm1").unwrap();
        assert!(DeviceError::NoSuchObject(p.clone())
            .to_string()
            .contains("vm1"));
        assert!(DeviceError::InjectedFault {
            action: "startVM".into(),
            message: "boom".into()
        }
        .to_string()
        .contains("startVM"));
        assert!(DeviceError::Unreachable("h1".into())
            .to_string()
            .contains("h1"));
    }
}

//! Simulated network devices (the Juniper routers with VLANs of §5).
//!
//! The paper's `spawnVM` description includes setting up VLANs, software
//! bridges, and firewalls for inter-VM communication. The [`Router`] models
//! the programmable switch layer: VLANs are created and removed, and VM
//! ports attach to them.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::Mutex;
use tropic_model::{Node, Path, Value};

use crate::api::{ActionCall, Device};
use crate::error::{DeviceError, DeviceResult};
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;

#[derive(Debug, Default)]
struct RouterState {
    /// VLAN id → attached ports.
    vlans: BTreeMap<i64, BTreeSet<String>>,
}

/// A simulated router/switch with VLAN support.
pub struct Router {
    name: String,
    mount: Path,
    max_vlans: usize,
    state: Mutex<RouterState>,
    faults: FaultPlan,
    latency: LatencyModel,
}

impl Router {
    /// Creates a router mounted at `mount` supporting up to `max_vlans`
    /// VLANs (hardware VLAN tables are finite; 4094 is the 802.1Q limit).
    pub fn new(mount: Path, max_vlans: usize, latency: LatencyModel) -> Self {
        let name = mount.leaf().unwrap_or("router").to_owned();
        Router {
            name,
            mount,
            max_vlans,
            state: Mutex::new(RouterState::default()),
            faults: FaultPlan::none(),
            latency,
        }
    }

    /// Number of configured VLANs.
    pub fn vlan_count(&self) -> usize {
        self.state.lock().vlans.len()
    }

    /// Returns `true` if the VLAN exists.
    pub fn has_vlan(&self, id: i64) -> bool {
        self.state.lock().vlans.contains_key(&id)
    }

    /// Ports attached to a VLAN.
    pub fn ports_of(&self, id: i64) -> Vec<String> {
        self.state
            .lock()
            .vlans
            .get(&id)
            .map(|ports| ports.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Simulates an operator wiping VLAN config out of band.
    pub fn oob_clear_vlans(&self) -> usize {
        let mut st = self.state.lock();
        let n = st.vlans.len();
        st.vlans.clear();
        n
    }

    fn do_create_vlan(&self, call: &ActionCall) -> DeviceResult<()> {
        let id = call.arg_int(0)?;
        if !(1..=4094).contains(&id) {
            return Err(DeviceError::BadArgument {
                action: call.action.clone(),
                message: format!("VLAN id {id} out of 802.1Q range"),
            });
        }
        let mut st = self.state.lock();
        if st.vlans.contains_key(&id) {
            return Err(DeviceError::AlreadyExists(
                self.mount.join(&format!("vlan{id}")),
            ));
        }
        if st.vlans.len() >= self.max_vlans {
            return Err(DeviceError::InvalidState {
                path: self.mount.clone(),
                message: format!("VLAN table full ({} entries)", self.max_vlans),
            });
        }
        st.vlans.insert(id, BTreeSet::new());
        Ok(())
    }

    fn do_remove_vlan(&self, call: &ActionCall) -> DeviceResult<()> {
        let id = call.arg_int(0)?;
        let mut st = self.state.lock();
        match st.vlans.get(&id) {
            None => Err(DeviceError::NoSuchObject(
                self.mount.join(&format!("vlan{id}")),
            )),
            Some(ports) if !ports.is_empty() => Err(DeviceError::InvalidState {
                path: self.mount.join(&format!("vlan{id}")),
                message: format!("{} ports still attached", ports.len()),
            }),
            Some(_) => {
                st.vlans.remove(&id);
                Ok(())
            }
        }
    }

    fn do_attach(&self, call: &ActionCall) -> DeviceResult<()> {
        let id = call.arg_int(0)?;
        let port = call.arg_str(1)?.to_owned();
        let mut st = self.state.lock();
        let ports = st
            .vlans
            .get_mut(&id)
            .ok_or_else(|| DeviceError::NoSuchObject(self.mount.join(&format!("vlan{id}"))))?;
        if !ports.insert(port.clone()) {
            return Err(DeviceError::InvalidState {
                path: self.mount.join(&format!("vlan{id}")),
                message: format!("port {port} already attached"),
            });
        }
        Ok(())
    }

    fn do_detach(&self, call: &ActionCall) -> DeviceResult<()> {
        let id = call.arg_int(0)?;
        let port = call.arg_str(1)?;
        let mut st = self.state.lock();
        let ports = st
            .vlans
            .get_mut(&id)
            .ok_or_else(|| DeviceError::NoSuchObject(self.mount.join(&format!("vlan{id}"))))?;
        if !ports.remove(port) {
            return Err(DeviceError::InvalidState {
                path: self.mount.join(&format!("vlan{id}")),
                message: format!("port {port} not attached"),
            });
        }
        Ok(())
    }
}

impl Device for Router {
    fn name(&self) -> &str {
        &self.name
    }

    fn mount(&self) -> &Path {
        &self.mount
    }

    fn invoke(&self, call: &ActionCall) -> DeviceResult<()> {
        if call.object != self.mount {
            return Err(DeviceError::NoSuchObject(call.object.clone()));
        }
        self.latency.apply(&call.action);
        if let Some(message) = self.faults.roll(&call.action) {
            return Err(DeviceError::InjectedFault {
                action: call.action.clone(),
                message,
            });
        }
        match call.action.as_str() {
            "createVlan" => self.do_create_vlan(call),
            "removeVlan" => self.do_remove_vlan(call),
            "attachPort" => self.do_attach(call),
            "detachPort" => self.do_detach(call),
            other => Err(DeviceError::UnknownAction(other.to_owned())),
        }
    }

    fn export_state(&self) -> Node {
        let st = self.state.lock();
        let mut node = Node::new("router").with_attr("maxVlans", self.max_vlans);
        for (id, ports) in &st.vlans {
            node.insert_child(
                format!("vlan{id}"),
                Node::new("vlan").with_attr("id", *id).with_attr(
                    "ports",
                    Value::List(ports.iter().map(|p| Value::from(p.as_str())).collect()),
                ),
            );
        }
        node
    }

    fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        Router::new(Path::parse("/netRoot/r1").unwrap(), 8, LatencyModel::zero())
    }

    fn call(r: &Router, action: &str, args: Vec<Value>) -> DeviceResult<()> {
        r.invoke(&ActionCall::new(r.mount().clone(), action, args))
    }

    #[test]
    fn vlan_lifecycle() {
        let r = router();
        call(&r, "createVlan", vec![Value::Int(100)]).unwrap();
        assert!(r.has_vlan(100));
        call(&r, "attachPort", vec![Value::Int(100), "vm1-eth0".into()]).unwrap();
        assert_eq!(r.ports_of(100), vec!["vm1-eth0".to_string()]);
        call(&r, "detachPort", vec![Value::Int(100), "vm1-eth0".into()]).unwrap();
        call(&r, "removeVlan", vec![Value::Int(100)]).unwrap();
        assert!(!r.has_vlan(100));
    }

    #[test]
    fn remove_blocked_with_ports() {
        let r = router();
        call(&r, "createVlan", vec![Value::Int(5)]).unwrap();
        call(&r, "attachPort", vec![Value::Int(5), "p".into()]).unwrap();
        assert!(matches!(
            call(&r, "removeVlan", vec![Value::Int(5)]),
            Err(DeviceError::InvalidState { .. })
        ));
    }

    #[test]
    fn vlan_id_range_enforced() {
        let r = router();
        assert!(matches!(
            call(&r, "createVlan", vec![Value::Int(0)]),
            Err(DeviceError::BadArgument { .. })
        ));
        assert!(matches!(
            call(&r, "createVlan", vec![Value::Int(4095)]),
            Err(DeviceError::BadArgument { .. })
        ));
    }

    #[test]
    fn vlan_table_capacity() {
        let r = Router::new(Path::parse("/netRoot/r1").unwrap(), 2, LatencyModel::zero());
        call(&r, "createVlan", vec![Value::Int(1)]).unwrap();
        call(&r, "createVlan", vec![Value::Int(2)]).unwrap();
        assert!(matches!(
            call(&r, "createVlan", vec![Value::Int(3)]),
            Err(DeviceError::InvalidState { .. })
        ));
    }

    #[test]
    fn duplicate_attach_rejected() {
        let r = router();
        call(&r, "createVlan", vec![Value::Int(7)]).unwrap();
        call(&r, "attachPort", vec![Value::Int(7), "p".into()]).unwrap();
        assert!(matches!(
            call(&r, "attachPort", vec![Value::Int(7), "p".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
        assert!(matches!(
            call(&r, "detachPort", vec![Value::Int(7), "ghost".into()]),
            Err(DeviceError::InvalidState { .. })
        ));
    }

    #[test]
    fn export_state_shape() {
        let r = router();
        call(&r, "createVlan", vec![Value::Int(9)]).unwrap();
        call(&r, "attachPort", vec![Value::Int(9), "p1".into()]).unwrap();
        let node = r.export_state();
        assert_eq!(node.entity(), "router");
        let vlan = node.child("vlan9").unwrap();
        assert_eq!(vlan.attr_int("id"), Some(9));
        assert_eq!(vlan.attr("ports").unwrap().as_list().unwrap().len(), 1);
    }

    #[test]
    fn oob_clear() {
        let r = router();
        call(&r, "createVlan", vec![Value::Int(1)]).unwrap();
        call(&r, "createVlan", vec![Value::Int(2)]).unwrap();
        assert_eq!(r.oob_clear_vlans(), 2);
        assert_eq!(r.vlan_count(), 0);
    }
}

//! Per-action latency models for simulated devices.
//!
//! Physical orchestration actions are slow — cloning a VM image takes orders
//! of magnitude longer than flipping a VLAN. The latency model lets the
//! examples and benches reproduce that asymmetry (and lets unit tests turn
//! it off entirely).

use std::collections::BTreeMap;
use std::time::Duration;

/// Maps action names to simulated execution times.
#[derive(Clone, Debug, Default)]
pub struct LatencyModel {
    default: Duration,
    per_action: BTreeMap<String, Duration>,
}

impl LatencyModel {
    /// A model in which every action completes instantly.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A model with a uniform per-action latency.
    pub fn uniform(d: Duration) -> Self {
        LatencyModel {
            default: d,
            per_action: BTreeMap::new(),
        }
    }

    /// Overrides the latency of one action.
    pub fn with_action(mut self, action: &str, d: Duration) -> Self {
        self.per_action.insert(action.to_owned(), d);
        self
    }

    /// A rough model of the TCloud testbed: image operations dominate, VM
    /// lifecycle operations are quick, scaled down ~100× from realistic
    /// values so examples finish promptly.
    pub fn tcloud_scaled() -> Self {
        LatencyModel::uniform(Duration::from_millis(1))
            .with_action("cloneImage", Duration::from_millis(40))
            .with_action("exportImage", Duration::from_millis(5))
            .with_action("importImage", Duration::from_millis(5))
            .with_action("createVM", Duration::from_millis(10))
            .with_action("startVM", Duration::from_millis(20))
            .with_action("stopVM", Duration::from_millis(10))
    }

    /// The simulated duration of `action`.
    pub fn delay_for(&self, action: &str) -> Duration {
        self.per_action.get(action).copied().unwrap_or(self.default)
    }

    /// Sleeps for the action's simulated duration (no-op at zero).
    pub fn apply(&self, action: &str) {
        let d = self.delay_for(action);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_instant() {
        let m = LatencyModel::zero();
        assert_eq!(m.delay_for("anything"), Duration::ZERO);
    }

    #[test]
    fn per_action_overrides_default() {
        let m = LatencyModel::uniform(Duration::from_millis(2))
            .with_action("cloneImage", Duration::from_millis(50));
        assert_eq!(m.delay_for("cloneImage"), Duration::from_millis(50));
        assert_eq!(m.delay_for("startVM"), Duration::from_millis(2));
    }

    #[test]
    fn tcloud_model_ranks_clone_slowest() {
        let m = LatencyModel::tcloud_scaled();
        assert!(m.delay_for("cloneImage") > m.delay_for("startVM"));
        assert!(m.delay_for("startVM") > m.delay_for("exportImage"));
    }

    #[test]
    fn apply_sleeps() {
        let m = LatencyModel::uniform(Duration::from_millis(10));
        let start = std::time::Instant::now();
        m.apply("x");
        assert!(start.elapsed() >= Duration::from_millis(9));
    }
}

//! Chaos/stress driver: open-loop load with a concurrent fault schedule,
//! per-lane latency CDFs, and a zero-acknowledged-loss assertion.
//!
//! Three modes (first CLI argument, default `run`):
//!
//! * `smoke` — the short deterministic run `ci.sh --chaos-smoke` gates on:
//!   a durable 3-controller platform executing against simulated devices
//!   while the schedule kills the leader mid-round and storms the compute
//!   fleet, a couple of clients riding the RPC socket; then a full
//!   power-loss restart through a **torn WAL tail** and a second load
//!   phase on the recovered platform. Exits non-zero on any acknowledged
//!   transaction lost, in either phase.
//! * `bench` — a fixed-shape run that appends per-lane p50/p99 and
//!   `acked_lost` rows to `TROPIC_BENCH_JSON` in the parser-compatible
//!   bench format (latencies carried as nanoseconds in `mean_ns`), for the
//!   `BENCH_chaos.json` regression gate in `ci.sh --bench-snapshot`.
//! * `run` — a knob-driven run for operators (see
//!   `docs/STRESS_TESTING.md`), printing the report JSON to stdout.
//!
//! Knobs (all modes): `TROPIC_CHAOS_SEED`, `TROPIC_CHAOS_DURATION_MS`,
//! `TROPIC_CHAOS_RATE` (txn/s), `TROPIC_CHAOS_CLIENTS`,
//! `TROPIC_CHAOS_RPC_CLIENTS`, `TROPIC_CHAOS_POOL_VMS`. The report lands
//! at `TROPIC_CHAOS_REPORT` (default `CHAOS_report.json` in smoke mode,
//! stdout otherwise).

use std::io::Write;
use std::time::Duration;

use tropic_bench::{env_f64, env_usize};
use tropic_coord::{CoordConfig, DurabilityOptions, SyncPolicy, TempDir};
use tropic_core::{ExecMode, PlatformConfig, Tropic, TxnRequest, TxnState};
use tropic_devices::LatencyModel;
use tropic_tcloud::TopologySpec;
use tropic_workload::chaos::{run_chaos, tear_wal_tails, ChaosReport, ChaosSpec, StormSpec};

fn spec_from_env(seed: u64, duration_ms: u64) -> ChaosSpec {
    ChaosSpec {
        seed: env_usize("TROPIC_CHAOS_SEED", seed as usize) as u64,
        duration_ms: env_usize("TROPIC_CHAOS_DURATION_MS", duration_ms as usize) as u64,
        arrival_per_sec: env_f64("TROPIC_CHAOS_RATE", 40.0),
        clients: env_usize("TROPIC_CHAOS_CLIENTS", 4),
        rpc_clients: env_usize("TROPIC_CHAOS_RPC_CLIENTS", 0),
        pool_vms: env_usize("TROPIC_CHAOS_POOL_VMS", 6),
        ..Default::default()
    }
}

fn topology() -> TopologySpec {
    TopologySpec {
        compute_hosts: 8,
        storage_hosts: 2,
        routers: 0,
        storage_capacity_mb: 100_000_000,
        ..Default::default()
    }
}

fn platform_config(data_dir: Option<&std::path::Path>) -> PlatformConfig {
    let mut config = PlatformConfig {
        controllers: 3,
        workers: 2,
        checkpoint_every: 0,
        coord: CoordConfig {
            // Aggressive failure detection so a leader kill resolves well
            // inside the smoke budget (the §6.4 sweep shows recovery ≈
            // session timeout + a small constant).
            session_timeout_ms: 500,
            tick_ms: 25,
            durability: if data_dir.is_some() {
                DurabilityOptions {
                    sync_policy: SyncPolicy::EveryBatch,
                    snapshot_every_ops: 64,
                    ..DurabilityOptions::default()
                }
            } else {
                DurabilityOptions::default()
            },
            ..CoordConfig::default()
        },
        ..Default::default()
    };
    if let Some(dir) = data_dir {
        config = config.with_data_dir(dir);
    }
    config
}

fn print_summary(report: &ChaosReport) {
    println!(
        "chaos: {} submitted, {} committed, {} aborted, {} failed, {} lost \
         ({} faults injected, {} leader kills, wall {} ms)",
        report.submitted,
        report.committed,
        report.aborted,
        report.failed,
        report.acked_lost,
        report.faults.injected,
        report.faults.leader_kills,
        report.wall_ms
    );
    println!("| lane | submitted | committed | aborted | p50 ms | p99 ms | abort rate |");
    println!("|------|----------:|----------:|--------:|-------:|-------:|-----------:|");
    for lane in &report.lanes {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.3} |",
            lane.lane,
            lane.submitted,
            lane.committed,
            lane.aborted + lane.failed,
            lane.committed_latency.p50_ms,
            lane.committed_latency.p99_ms,
            lane.abort_rate
        );
    }
}

fn write_report(report: &ChaosReport, default_path: Option<&str>) {
    let path = std::env::var("TROPIC_CHAOS_REPORT")
        .ok()
        .or_else(|| default_path.map(str::to_owned));
    match path {
        Some(path) => {
            std::fs::write(&path, report.to_json()).expect("write chaos report");
            println!("report written to {path}");
        }
        None => println!("{}", report.to_json()),
    }
}

/// Appends parser-compatible bench rows: per-lane p50/p99 (nanoseconds in
/// `mean_ns`, committed count in `iterations`) plus the acked-loss count.
fn emit_bench_rows(report: &ChaosReport) {
    let Some(path) = std::env::var_os("TROPIC_BENCH_JSON") else {
        return;
    };
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open TROPIC_BENCH_JSON");
    for lane in &report.lanes {
        let stats = &lane.committed_latency;
        for (metric, ms) in [("p50", stats.p50_ms), ("p99", stats.p99_ms)] {
            writeln!(
                file,
                "{{\"name\":\"chaos/{}_{}\",\"mean_ns\":{},\"iterations\":{}}}",
                metric,
                lane.lane,
                ms * 1_000_000,
                stats.count
            )
            .expect("append bench row");
        }
    }
    writeln!(
        file,
        "{{\"name\":\"chaos/acked_lost\",\"mean_ns\":{},\"iterations\":{}}}",
        report.acked_lost, report.submitted
    )
    .expect("append bench row");
}

/// The CI smoke: load + leader kill + device storm + RPC clients, then a
/// torn-WAL-tail restart, asserting zero acknowledged loss throughout.
fn smoke() {
    let tmp = TempDir::new("tropic-chaos-smoke");
    let topo = topology();
    let devices = topo.build_devices(&LatencyModel::zero());
    let config = platform_config(Some(tmp.path()));
    let platform = Tropic::start(
        config.clone(),
        topo.service(),
        ExecMode::Physical(std::sync::Arc::clone(&devices.registry)),
    );
    let rpc = platform.serve_rpc().expect("rpc frontend");
    let addr = rpc.addr().to_string();

    let mut spec = spec_from_env(42, 2_500);
    spec.rpc_clients = env_usize("TROPIC_CHAOS_RPC_CLIENTS", 2);
    spec.rpc_addr = Some(addr);
    spec.faults = StormSpec {
        seed: spec.seed,
        duration_ms: spec.duration_ms,
        compute_hosts: topo.compute_hosts,
        leader_kills: 1,
        leader_restart_after_ms: Some(800),
        down_bursts: 1,
        down_burst_ms: 300,
        every_nth: vec![("createVM".into(), 5)],
        one_shots: vec!["migrateVM".into()],
    }
    .generate();

    println!(
        "phase 1: open-loop load ({} ms @ {}/s, {} clients, {} over RPC) + fault storm",
        spec.duration_ms, spec.arrival_per_sec, spec.clients, spec.rpc_clients
    );
    let report = run_chaos(&platform, &topo, Some(&devices), &spec);
    print_summary(&report);
    for event in &report.faults.events {
        println!(
            "  fault @{:>5} ms: {}",
            event.applied_at_ms, event.description
        );
    }
    assert!(report.submitted > 0, "no load was submitted");
    assert!(report.committed > 0, "nothing committed under chaos");
    assert_eq!(
        report.faults.leader_kills, 1,
        "the leader kill never landed"
    );
    assert!(
        report.faults.injected > 0,
        "the device storm never injected a fault"
    );
    assert_eq!(
        report.acked_lost, 0,
        "acknowledged transactions lost under chaos"
    );
    write_report(&report, Some("CHAOS_report.json"));

    // Acknowledge a marker batch, then power-loss the platform and tear
    // the WAL tails before recovering: the torn bytes must be truncated
    // away without losing anything acknowledged.
    let client = platform.client();
    let mut acknowledged = Vec::new();
    for i in 0..6 {
        let outcome = client
            .submit_request(TxnRequest::new("spawnVM").args(topo.spawn_args(
                &format!("marker{i}"),
                i,
                1_024,
            )))
            .expect("marker submit")
            .wait_timeout(Duration::from_secs(60))
            .expect("marker txn");
        assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
        acknowledged.push(outcome.id);
    }
    rpc.stop();
    platform.shutdown();

    let torn = tear_wal_tails(tmp.path(), b"\xde\xad\xbe\xefgarbage-torn-tail").expect("tear");
    println!("\nphase 2: tore {torn} WAL tails; recovering from disk");
    assert!(torn > 0, "no WAL segments found to tear");

    let devices2 = topo.build_devices(&LatencyModel::zero());
    let platform = Tropic::recover(
        config,
        topo.service(),
        ExecMode::Physical(std::sync::Arc::clone(&devices2.registry)),
    );
    let client = platform.client();
    let mut lost = 0;
    for id in &acknowledged {
        match client.txn_record(*id).expect("coord") {
            Some(rec) if rec.state == TxnState::Committed => {}
            other => {
                lost += 1;
                println!("  LOST acknowledged txn {id}: {other:?}");
            }
        }
    }
    assert_eq!(lost, 0, "torn-tail recovery lost acknowledged transactions");

    // The recovered platform must still take load.
    let outcome = client
        .submit_request(TxnRequest::new("spawnVM").args(topo.spawn_args("post-recovery", 0, 1_024)))
        .expect("post-recovery submit")
        .wait_timeout(Duration::from_secs(60))
        .expect("post-recovery txn");
    assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
    platform.shutdown();
    println!(
        "post-recovery: {}/{} acknowledged records intact, new load accepted",
        acknowledged.len(),
        acknowledged.len()
    );
    println!("\nchaos smoke passed.");
}

/// Fixed-shape run for the `BENCH_chaos.json` p99 regression gate.
fn bench() {
    let topo = topology();
    let devices = topo.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        platform_config(None),
        topo.service(),
        ExecMode::Physical(std::sync::Arc::clone(&devices.registry)),
    );
    let mut spec = spec_from_env(7, 4_000);
    spec.arrival_per_sec = env_f64("TROPIC_CHAOS_RATE", 60.0);
    spec.clients = env_usize("TROPIC_CHAOS_CLIENTS", 6);
    spec.faults = StormSpec {
        seed: spec.seed,
        duration_ms: spec.duration_ms,
        compute_hosts: topo.compute_hosts,
        leader_kills: 1,
        leader_restart_after_ms: Some(1_000),
        down_bursts: 0,
        down_burst_ms: 0,
        every_nth: vec![("createVM".into(), 9)],
        one_shots: vec![],
    }
    .generate();

    let report = run_chaos(&platform, &topo, Some(&devices), &spec);
    platform.shutdown();
    print_summary(&report);
    for lane in &report.lanes {
        assert!(
            lane.committed > 0,
            "lane {} saw no committed traffic — bench shape too small",
            lane.lane
        );
    }
    assert_eq!(report.acked_lost, 0, "acknowledged transactions lost");
    emit_bench_rows(&report);
    write_report(&report, None);
}

/// Knob-driven operator run (no assertions): report JSON to stdout or
/// `TROPIC_CHAOS_REPORT`.
fn run() {
    let topo = topology();
    let devices = topo.build_devices(&LatencyModel::zero());
    let platform = Tropic::start(
        platform_config(None),
        topo.service(),
        ExecMode::Physical(std::sync::Arc::clone(&devices.registry)),
    );
    let mut spec = spec_from_env(42, 5_000);
    spec.faults = StormSpec {
        seed: spec.seed,
        duration_ms: spec.duration_ms,
        compute_hosts: topo.compute_hosts,
        ..Default::default()
    }
    .generate();
    let report = run_chaos(&platform, &topo, Some(&devices), &spec);
    platform.shutdown();
    print_summary(&report);
    write_report(&report, None);
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("smoke") => smoke(),
        Some("bench") => bench(),
        Some("run") | None => run(),
        Some(other) => {
            eprintln!("unknown mode {other:?}: expected smoke | bench | run");
            std::process::exit(2);
        }
    }
}

//! Regenerates **Figure 5** of the paper: the CDF of transaction latency
//! under the 1×–5× EC2 workloads.
//!
//! Paper observations to reproduce: median latency below one second for
//! every scale, 1× nearly negligible, and the 4×/5× curves developing a
//! heavy tail because the workload burst exceeds the platform's
//! (coordination-bound) throughput ceiling.
//!
//! Knobs: `TROPIC_EC2_DURATION_S` (default 45), `TROPIC_EC2_HOSTS`
//! (default 1000), `TROPIC_WRITE_LAT_US` (default 1500).

use std::time::Duration;

use tropic_bench::{env_f64, env_usize, run_ec2_scale, short_ec2_trace};
use tropic_tcloud::TopologySpec;

fn main() {
    let duration_s = env_usize("TROPIC_EC2_DURATION_S", 45);
    let hosts = env_usize("TROPIC_EC2_HOSTS", 1_000);
    let write_lat = Duration::from_micros(env_f64("TROPIC_WRITE_LAT_US", 1_500.0) as u64);
    let spec = TopologySpec {
        compute_hosts: hosts,
        storage_hosts: (hosts / 4).max(1),
        routers: 0,
        host_mem_mb: 16_384,
        storage_capacity_mb: 1_000_000_000,
        ..Default::default()
    };
    let trace = short_ec2_trace(duration_s);
    println!(
        "Figure 5: CDF of transaction latency, EC2 workload 1x-5x \
         ({hosts} hosts, {duration_s}s compressed trace)"
    );
    println!();
    println!("| scale | txns | p10 (ms) | median (ms) | p90 (ms) | p99 (ms) | max (ms) |");
    println!("|------:|-----:|---------:|------------:|---------:|---------:|---------:|");
    let mut medians = Vec::new();
    let mut p99s = Vec::new();
    for scale in 1..=5u32 {
        let run = run_ec2_scale(&spec, &trace, scale, write_lat, 10_000);
        let l = &run.latency;
        println!(
            "| {}x | {} | {} | {} | {} | {} | {} |",
            scale,
            l.len(),
            l.percentile(10.0),
            l.median(),
            l.percentile(90.0),
            l.percentile(99.0),
            l.max(),
        );
        medians.push(l.median());
        p99s.push(l.percentile(99.0));
    }
    println!();
    println!(
        "paper: median < 1 s at every scale; 1x negligible; 4x and 5x grow \
         a heavy tail from the burst at 0.8 of the trace."
    );
    println!(
        "reproduced: medians {:?} ms; p99 tail ratio 5x/1x = {:.1}",
        medians,
        if p99s[0] > 0 {
            p99s[4] as f64 / p99s[0] as f64
        } else {
            f64::NAN
        }
    );
}

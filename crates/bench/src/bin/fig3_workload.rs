//! Regenerates **Figure 3** of the paper: VMs launched per second over the
//! 1-hour EC2 trace (8,417 total, mean 2.34/s, peak 14/s at 0.8 h).
//!
//! Prints the per-minute series (60 buckets) with a sparkline, plus the
//! summary statistics compared against the paper's published numbers.

use tropic_workload::{sparkline, Ec2TraceSpec};

fn main() {
    let trace = Ec2TraceSpec::default().generate();
    let buckets = trace.bucketed(60);
    let per_min_rates: Vec<f64> = buckets.iter().map(|&b| b as f64 / 60.0).collect();

    println!("Figure 3: VMs launched per second (EC2 workload, 1 hour)");
    println!();
    println!("| minute | launches | mean rate (/s) |");
    println!("|-------:|---------:|---------------:|");
    for (i, &b) in buckets.iter().enumerate() {
        if i % 5 == 0 || per_min_rates[i] > 6.0 {
            println!("| {:>6} | {:>8} | {:>14.2} |", i, b, per_min_rates[i]);
        }
    }
    println!();
    println!("shape: {}", sparkline(&per_min_rates));
    println!();
    let (peak, at) = trace.peak();
    println!("| statistic | paper | reproduced |");
    println!("|-----------|------:|-----------:|");
    println!("| total spawns (1 h) | 8417 | {} |", trace.total());
    println!("| mean rate (/s) | 2.34 | {:.2} |", trace.mean_rate());
    println!("| peak rate (/s) | 14 | {peak} |");
    println!("| peak position (h) | 0.8 | {:.2} |", at as f64 / 3_600.0);
}

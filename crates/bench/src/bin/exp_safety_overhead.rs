//! Regenerates the **§6.2 safety experiment**: the logical-layer overhead
//! of enforcing the VM-type and VM-memory constraints under the hosting
//! workload. The paper reports this below 10 ms per transaction.
//!
//! Method: simulate every hosting-workload transaction twice against
//! identical topologies — once with TCloud's constraint set, once with an
//! empty one — timing the logical execution. The difference isolates
//! constraint checking.

use std::time::Instant;

use tropic_core::{simulate, LockManager, TxnRecord};
use tropic_model::{ConstraintSet, Value};
use tropic_tcloud::{actions, constraints, procs, TopologySpec};
use tropic_workload::{HostingOp, HostingSpec, LatencyStats};

fn run(with_constraints: bool, ops: &[HostingOp], spec: &TopologySpec) -> LatencyStats {
    let mut tree = spec.build_tree();
    let action_registry = actions::all();
    let constraint_set = if with_constraints {
        constraints::all()
    } else {
        ConstraintSet::new()
    };
    let proc_registry = procs::all();
    let mut locks = LockManager::new();
    let mut times_us = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let (name, args) = match op {
            HostingOp::Spawn { vm, host } => ("spawnVM", spec.spawn_args(vm, *host, 2_048)),
            HostingOp::Start { vm, host } => (
                "startVM",
                vec![
                    Value::from(TopologySpec::host_path(*host).to_string()),
                    Value::from(vm.as_str()),
                ],
            ),
            HostingOp::Stop { vm, host } => (
                "stopVM",
                vec![
                    Value::from(TopologySpec::host_path(*host).to_string()),
                    Value::from(vm.as_str()),
                ],
            ),
            HostingOp::Migrate { vm, src, dst } => (
                "migrateVM",
                vec![
                    Value::from(TopologySpec::host_path(*src).to_string()),
                    Value::from(TopologySpec::host_path(*dst).to_string()),
                    Value::from(vm.as_str()),
                ],
            ),
        };
        let proc_ = proc_registry.get(name).expect("registered procedure");
        let mut rec = TxnRecord::new(i as u64 + 1, name, args, 0);
        let t0 = Instant::now();
        let _ = simulate(
            &mut rec,
            proc_.as_ref(),
            &mut tree,
            &action_registry,
            &constraint_set,
            &mut locks,
        );
        times_us.push(t0.elapsed().as_micros() as u64);
        // Sequential execution: release as if committed immediately.
        locks.release_all(i as u64 + 1);
    }
    LatencyStats::new(times_us)
}

fn main() {
    let ops = HostingSpec {
        operations: 2_000,
        hosts: 64,
        slots_per_host: 8,
        ..Default::default()
    }
    .generate();
    let spec = TopologySpec {
        compute_hosts: 64,
        storage_hosts: 16,
        routers: 0,
        storage_capacity_mb: 100_000_000,
        ..Default::default()
    };
    println!("Safety experiment (paper §6.2): constraint-checking overhead");
    println!("hosting workload, {} operations, 64 hosts", ops.len());
    println!();
    let with = run(true, &ops, &spec);
    let without = run(false, &ops, &spec);
    println!("| configuration | median (us) | p99 (us) | max (us) |");
    println!("|---------------|------------:|---------:|---------:|");
    println!(
        "| constraints ON (vm-type, vm-memory, storage, vlan) | {} | {} | {} |",
        with.median(),
        with.percentile(99.0),
        with.max()
    );
    println!(
        "| constraints OFF | {} | {} | {} |",
        without.median(),
        without.percentile(99.0),
        without.max()
    );
    let overhead_us = with.mean() - without.mean();
    println!();
    println!(
        "mean per-transaction constraint overhead: {:.1} us ({:.3} ms)",
        overhead_us,
        overhead_us / 1_000.0
    );
    println!("paper: logical-layer constraint checking below 10 ms per transaction.");
    assert!(
        with.percentile(99.0) < 10_000,
        "p99 logical execution should stay below the paper's 10 ms bound"
    );
}

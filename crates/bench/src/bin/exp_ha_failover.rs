//! Regenerates the **§6.4 high-availability experiment**: recovery time
//! after a leader-controller crash, under the hosting workload, with no
//! transaction lost.
//!
//! The paper measures recovery within 12.5 s, dominated by ZooKeeper's
//! failure-detection time (the session heartbeat interval), and suggests
//! more aggressive detection shrinks it. We sweep the session timeout and
//! show recovery ≈ timeout + a small constant (election + state restore),
//! which extrapolates to the paper's number at its ~10 s ZooKeeper timeout.

use std::time::Duration;

use tropic_coord::CoordConfig;
use tropic_core::{ExecMode, PlatformConfig, Priority, Tropic, TxnRequest, TxnState};
use tropic_tcloud::TopologySpec;

fn run_once(session_timeout_ms: u64) -> (u64, usize, usize) {
    let spec = TopologySpec {
        compute_hosts: 16,
        storage_hosts: 4,
        routers: 0,
        storage_capacity_mb: 100_000_000,
        ..Default::default()
    };
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 3,
            workers: 1,
            coord: CoordConfig {
                session_timeout_ms,
                tick_ms: (session_timeout_ms / 10).max(5),
                ..CoordConfig::default()
            },
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    );
    let client = platform.client();

    // Warm-up workload under the first leader.
    for i in 0..8 {
        let o = client
            .submit_request(TxnRequest::new("spawnVM").args(spec.spawn_args(
                &format!("pre{i}"),
                i % 16,
                2_048,
            )))
            .expect("warmup submit")
            .wait_timeout(Duration::from_secs(60))
            .expect("warmup txn");
        assert_eq!(o.state, TxnState::Committed);
    }

    // Crash the leader, keep submitting during the outage. Failover work is
    // latency-sensitive, so ride the high-priority lane.
    let crash_at = platform.clock().now_ms();
    platform.crash_leader().expect("a leader to crash");
    let handles: Vec<_> = (0..8)
        .map(|i| {
            client
                .submit_request(
                    TxnRequest::new("spawnVM")
                        .args(spec.spawn_args(&format!("post{i}"), i % 16, 2_048))
                        .priority(Priority::High),
                )
                .expect("submit during outage")
        })
        .collect();
    let submitted = handles.len();
    let mut completed = 0;
    for handle in handles {
        let o = handle
            .wait_timeout(Duration::from_secs(120))
            .expect("completion");
        assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
        completed += 1;
    }
    let recovery_ms = platform
        .metrics()
        .events()
        .iter()
        .filter(|e| e.kind == "recovery-complete" && e.at_ms >= crash_at)
        .map(|e| e.at_ms - crash_at)
        .min()
        .expect("a recovery event");
    platform.shutdown();
    (recovery_ms, submitted, completed)
}

fn main() {
    println!("High-availability experiment (paper §6.4): controller failover");
    println!();
    println!("| session timeout (ms) | recovery time (ms) | txns during outage | lost |");
    println!("|---------------------:|-------------------:|-------------------:|-----:|");
    let mut rows = Vec::new();
    for timeout in [250u64, 500, 1_000, 2_000] {
        let (recovery_ms, submitted, completed) = run_once(timeout);
        println!(
            "| {timeout} | {recovery_ms} | {submitted} | {} |",
            submitted - completed
        );
        rows.push((timeout, recovery_ms));
    }
    println!();
    // Recovery ≈ detection + constant: fit the constant.
    let overheads: Vec<f64> = rows.iter().map(|&(t, r)| r as f64 - t as f64).collect();
    let mean_overhead = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!(
        "recovery - timeout (election + state restore): {:?} ms, mean {:.0} ms",
        overheads
            .iter()
            .map(|o| o.round() as i64)
            .collect::<Vec<_>>(),
        mean_overhead
    );
    println!(
        "extrapolated to the paper's ~10 s ZooKeeper failure detection: \
         ~{:.1} s (paper measured 12.5 s, dominated by detection)",
        (10_000.0 + mean_overhead) / 1_000.0
    );
    println!("paper: no transaction submitted during recovery is lost — reproduced above.");
}

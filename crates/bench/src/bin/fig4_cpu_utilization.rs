//! Regenerates **Figure 4** of the paper: controller CPU utilization under
//! the 1×–5× EC2 workloads.
//!
//! The paper's observations to reproduce: utilization is synchronized with
//! the workload (burst at 0.8 of the duration), rises linearly with the
//! scale factor, and stays well below saturation even at 5× (the paper
//! measured 54 % peak; our absolute numbers differ — simulated substrate —
//! but the linear scaling and the burst shape must hold).
//!
//! Knobs: `TROPIC_EC2_DURATION_S` (default 45), `TROPIC_EC2_HOSTS`
//! (default 1000; the paper's full scale is 12500), `TROPIC_WRITE_LAT_US`
//! (default 1500 — emulated ZooKeeper write latency in µs), and
//! `TROPIC_DURABLE_DIR` (run each scale with a durable coordination store
//! under that directory, populating the durability counter table).

use std::time::Duration;

use tropic_bench::{env_f64, env_usize, run_ec2_scale, short_ec2_trace};
use tropic_tcloud::TopologySpec;
use tropic_workload::sparkline;

fn main() {
    let duration_s = env_usize("TROPIC_EC2_DURATION_S", 45);
    let hosts = env_usize("TROPIC_EC2_HOSTS", 1_000);
    let write_lat = Duration::from_micros(env_f64("TROPIC_WRITE_LAT_US", 1_500.0) as u64);
    let spec = TopologySpec {
        compute_hosts: hosts,
        storage_hosts: (hosts / 4).max(1),
        routers: 0,
        host_mem_mb: 16_384,
        storage_capacity_mb: 1_000_000_000,
        ..Default::default()
    };
    let trace = short_ec2_trace(duration_s);
    println!(
        "Figure 4: controller CPU utilization, EC2 workload 1x-5x \
         ({hosts} hosts, {}s compressed trace, {}us coord write latency)",
        duration_s,
        write_lat.as_micros()
    );
    println!();

    let bucket_ms = (duration_s as u64 * 1_000 / 12).max(500);
    let mut peaks = Vec::new();
    let mut durability = Vec::new();
    for scale in 1..=5u32 {
        let run = run_ec2_scale(&spec, &trace, scale, write_lat, bucket_ms);
        let peak = run.cpu_buckets.iter().cloned().fold(0.0f64, f64::max);
        let mean = if run.cpu_buckets.is_empty() {
            0.0
        } else {
            run.cpu_buckets.iter().sum::<f64>() / run.cpu_buckets.len() as f64
        };
        println!(
            "{scale}x EC2: {} txns, committed {}, util {} peak {:5.2}% mean {:5.2}%",
            run.report.submitted,
            run.report.committed,
            sparkline(&run.cpu_buckets),
            peak,
            mean,
        );
        peaks.push(peak);
        durability.push(run.ensemble);
    }
    println!();
    println!("| scale | peak controller utilization (%) | vs 1x |");
    println!("|------:|--------------------------------:|------:|");
    for (i, p) in peaks.iter().enumerate() {
        println!(
            "| {}x | {:.2} | {:.2} |",
            i + 1,
            p,
            if peaks[0] > 0.0 { p / peaks[0] } else { 0.0 }
        );
    }
    println!();
    println!("| scale | committed writes | snapshots | segments rotated | bytes fsynced |");
    println!("|------:|-----------------:|----------:|-----------------:|--------------:|");
    for (i, e) in durability.iter().enumerate() {
        println!(
            "| {}x | {} | {} | {} | {} |",
            i + 1,
            e.committed,
            e.snapshots_written,
            e.segments_rotated,
            e.bytes_fsynced
        );
    }
    if std::env::var_os("TROPIC_DURABLE_DIR").is_none() {
        println!(
            "(in-memory coordination store; set TROPIC_DURABLE_DIR to run \
             with the durability layer and populate these counters)"
        );
    }
    println!();
    println!(
        "paper: utilization synchronized with the workload burst, scaling \
         linearly 1x-5x, peak 54% at 5x (never saturating)."
    );
}

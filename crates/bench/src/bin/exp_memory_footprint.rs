//! Regenerates the **§6.1 memory-footprint claim**: the controller's memory
//! is dominated by the quantity of managed resources (the logical data
//! model), not by the active workload; the paper's controller sat at a
//! stable ~5.4 % of 32 GB and extrapolated to a 2-million-VM ceiling.

use tropic_tcloud::TopologySpec;

fn tree_size(hosts: usize, vms_per_host: usize) -> (usize, usize, f64) {
    let spec = TopologySpec {
        compute_hosts: hosts,
        storage_hosts: (hosts / 4).max(1),
        routers: 0,
        host_mem_mb: (vms_per_host as i64) * 2_048,
        storage_capacity_mb: 1_000_000_000,
        ..Default::default()
    };
    let mut tree = spec.build_tree();
    // Populate every VM slot, as a fully-loaded cloud would be.
    for h in 0..hosts {
        let host_path = TopologySpec::host_path(h);
        for v in 0..vms_per_host {
            let vm = tropic_model::Node::new("vm")
                .with_attr("image", format!("vm{h}x{v}-img"))
                .with_attr("mem", 2_048i64)
                .with_attr("state", "running")
                .with_attr("hypervisor", "xen");
            tree.insert(&host_path.join(&format!("vm{v}")), vm)
                .expect("slot free");
        }
    }
    let nodes = tree.node_count();
    let bytes = tree.approx_size();
    (nodes, bytes, bytes as f64 / (1024.0 * 1024.0))
}

fn main() {
    println!("Memory-footprint experiment (paper §6.1)");
    println!();
    println!("| compute hosts | VMs | model nodes | model size (MiB) | bytes/VM |");
    println!("|--------------:|----:|------------:|-----------------:|---------:|");
    let mut per_vm = Vec::new();
    for hosts in [125usize, 1_250, 12_500] {
        let vms = hosts * 8;
        let (nodes, bytes, mib) = tree_size(hosts, 8);
        println!("| {hosts} | {vms} | {nodes} | {mib:.1} | {} |", bytes / vms);
        per_vm.push(bytes as f64 / vms as f64);
    }
    println!();
    // Paper: with their hardware the max manageable scale was 2M VMs in
    // 32 GB. Project ours from the measured per-VM cost (with the paper's
    // observed ~10x overhead of a Python object model over raw bytes, our
    // Rust model is leaner; report our own ceiling).
    let bytes_per_vm = per_vm.last().copied().unwrap_or(500.0);
    let ceiling = (32.0 * 1024.0 * 1024.0 * 1024.0) / (bytes_per_vm * 1.5);
    println!(
        "measured model cost: {:.0} bytes/VM; projected 32 GB ceiling \
         (x1.5 for runtime overhead): {:.1} M VMs",
        bytes_per_vm,
        ceiling / 1.0e6
    );
    println!(
        "paper: footprint stable vs workload, dominated by resource count; \
         2 M-VM ceiling at 32 GB."
    );
    println!();
    println!(
        "workload-independence: the numbers above depend only on the tree \
         contents; replaying any trace leaves the node count unchanged \
         except for the VMs it creates."
    );
}

//! Regenerates **Table 1** of the paper: the execution log of `spawnVM`,
//! with the same resource object paths (`/storageRoot/storageHost`,
//! `/vmRoot/vmHost`), the five actions, and their derived undo actions.

use tropic_core::{format_execution_log, simulate, LockManager, LogicalOutcome, TxnRecord};
use tropic_model::{Node, Path, Tree, Value};
use tropic_tcloud::{actions, constraints, procs};

fn main() {
    // Build the minimal data model of Table 1: one storage host holding the
    // template, one VM host.
    let mut tree = Tree::new();
    tree.insert(
        &Path::parse("/storageRoot").unwrap(),
        Node::new("storageRoot"),
    )
    .unwrap();
    tree.insert(
        &Path::parse("/storageRoot/storageHost").unwrap(),
        Node::new("storageHost")
            .with_attr("capacityMb", 100_000i64)
            .with_attr("usedMb", 8_192i64),
    )
    .unwrap();
    tree.insert(
        &Path::parse("/storageRoot/storageHost/imageTemplate").unwrap(),
        Node::new("image")
            .with_attr("sizeMb", 8_192i64)
            .with_attr("template", true)
            .with_attr("exported", false),
    )
    .unwrap();
    tree.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
        .unwrap();
    tree.insert(
        &Path::parse("/vmRoot/vmHost").unwrap(),
        Node::new("vmHost")
            .with_attr("hypervisor", "xen")
            .with_attr("memCapacity", 32_768i64)
            .with_attr("importedImages", Vec::<String>::new()),
    )
    .unwrap();

    let args = vec![
        Value::from("vmName"),
        Value::from("imageTemplate"),
        Value::Int(2_048),
        Value::from("/storageRoot/storageHost"),
        Value::from("/vmRoot/vmHost"),
    ];
    let mut rec = TxnRecord::new(1, "spawnVM", args, 0);
    let action_registry = actions::all();
    let constraint_set = constraints::all();
    let mut locks = LockManager::new();
    let outcome = simulate(
        &mut rec,
        procs::spawn_vm().as_ref(),
        &mut tree,
        &action_registry,
        &constraint_set,
        &mut locks,
    );
    assert_eq!(
        outcome,
        LogicalOutcome::Runnable,
        "spawnVM must simulate cleanly"
    );

    println!("Table 1: execution log for spawnVM (paper §3.1.2)");
    println!();
    print!("{}", format_execution_log(&rec.log));
    println!();
    println!(
        "paper row 1: /storageRoot/storageHost cloneImage [imageTemplate, vmImage] \
         undo removeImage [vmImage]"
    );
    println!(
        "(our image argument is derived as `<vmName>-img`; the action/undo \
         structure matches the paper's five rows)"
    );
}

//! Reconciler MTTR driver: drift-to-converged latency at fleet scale.
//!
//! Boots a twin-enabled platform over a simulated fleet, waits for the
//! reconciler to observe every mount in sync, injects rogue-VM drift on a
//! spread of hosts, and measures the per-resource detection-to-convergence
//! latency (the MTTR samples the metrics pipeline records when a drift
//! episode closes). The paper's repair/reload primitives (§4) run on
//! operator demand; this bin measures their continuous, autonomous
//! counterpart at 1k and 16k resources.
//!
//! Two modes (first CLI argument, default `run`):
//!
//! * `bench` — fixed-shape runs at each size in `TROPIC_RECONCILE_SIZES`
//!   (default `1000,16000`), appending `reconcile/mttr_p50_<size>` /
//!   `reconcile/mttr_p99_<size>` / `reconcile/baseline_sync_<size>` rows
//!   to `TROPIC_BENCH_JSON` in the parser-compatible bench format
//!   (latencies carried as nanoseconds in `mean_ns`), for the
//!   `BENCH_reconcile.json` MTTR gate in `ci.sh --bench-snapshot`.
//! * `run` — a knob-driven run for operators, printing per-size summaries.
//!
//! Knobs: `TROPIC_RECONCILE_SIZES` (comma-separated host counts),
//! `TROPIC_RECONCILE_DRIFTS` (drifted hosts per run, default 32),
//! `TROPIC_RECONCILE_INTERVAL_MS` (reconcile tick, default 50),
//! `TROPIC_RECONCILE_REPORT_MS` (report pump period, default 25),
//! `TROPIC_RECONCILE_TIMEOUT_S` (per-phase deadline, default 180).

use std::io::Write;
use std::time::{Duration, Instant};

use tropic_bench::env_usize;
use tropic_core::{ExecMode, PlatformConfig, Tropic, TwinConfig, TwinPhase};
use tropic_devices::LatencyModel;
use tropic_tcloud::TopologySpec;

/// One size's outcome: how long the fleet took to reach full baseline
/// sync, and the MTTR distribution over the injected drift episodes.
struct SizeReport {
    hosts: usize,
    drifts: usize,
    baseline_sync_ms: u64,
    mttr_ms: Vec<u64>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn size_label(hosts: usize) -> String {
    if hosts.is_multiple_of(1000) && hosts >= 1000 {
        format!("{}k", hosts / 1000)
    } else {
        hosts.to_string()
    }
}

fn twin_from_env() -> TwinConfig {
    TwinConfig {
        interval_ms: env_usize("TROPIC_RECONCILE_INTERVAL_MS", 50) as u64,
        report_interval_ms: env_usize("TROPIC_RECONCILE_REPORT_MS", 25) as u64,
        ..TwinConfig::enabled()
    }
}

/// Boots a twin-enabled platform over `hosts` compute servers, waits for
/// full baseline sync, injects `drifts` rogue VMs, and collects the MTTR
/// samples the reconciler records as each episode converges.
fn measure(hosts: usize, drifts: usize, timeout: Duration) -> SizeReport {
    let topo = TopologySpec {
        compute_hosts: hosts,
        storage_hosts: 1,
        routers: 0,
        storage_capacity_mb: 100_000_000,
        ..Default::default()
    };
    let devices = topo.build_devices(&LatencyModel::zero());
    let config = PlatformConfig {
        controllers: 1,
        workers: 2,
        checkpoint_every: 0,
        twin: twin_from_env(),
        ..Default::default()
    };
    let platform = Tropic::start(
        config,
        topo.service(),
        ExecMode::Physical(std::sync::Arc::clone(&devices.registry)),
    );
    let twin = platform.subscribe_twin();

    // Baseline: the reconciler publishes one InSync event per mount the
    // first time it observes the mount matching desired state. All
    // devices (computes + storage) must check in before drift injection,
    // so the measured episodes start from a quiescent, fully-scanned
    // fleet.
    let mounts = hosts + topo.storage_hosts;
    let started = Instant::now();
    let mut in_sync = 0usize;
    while in_sync < mounts {
        assert!(
            started.elapsed() < timeout,
            "baseline sync stalled at {in_sync}/{mounts} mounts after {:?}",
            timeout
        );
        for event in twin.drain() {
            if event.phase == TwinPhase::InSync {
                in_sync += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let baseline_sync_ms = started.elapsed().as_millis() as u64;

    // Inject rogue VMs on an even spread of hosts: out-of-band creations
    // the logical tree knows nothing about, exactly the volatile-resource
    // drift of paper §4. Stopped rogues also exercise the best-effort
    // repair path (the planned stopVM fails its precondition; the
    // removeVM that follows must still land).
    let stride = (hosts / drifts).max(1);
    let mut injected = 0usize;
    for i in 0..drifts {
        let host = (i * stride) % hosts;
        devices.computes[host].oob_create_vm(&format!("rogue{i}"), "rogue-img", 128, i % 2 == 0);
        injected += 1;
    }

    let before = platform.counters().drift_repaired;
    let waited = Instant::now();
    while platform.counters().drift_repaired < before + injected as u64 {
        assert!(
            waited.elapsed() < timeout,
            "convergence stalled: {}/{} episodes repaired after {:?}",
            platform.counters().drift_repaired - before,
            injected,
            timeout
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut mttr_ms = platform.metrics().convergence_samples();
    mttr_ms.sort_unstable();
    platform.shutdown();
    SizeReport {
        hosts,
        drifts: injected,
        baseline_sync_ms,
        mttr_ms,
    }
}

fn print_summary(report: &SizeReport) {
    println!(
        "reconcile @ {} hosts: baseline sync {} ms; {} drift episodes, \
         MTTR p50 {} ms, p99 {} ms, max {} ms",
        report.hosts,
        report.baseline_sync_ms,
        report.drifts,
        percentile(&report.mttr_ms, 0.50),
        percentile(&report.mttr_ms, 0.99),
        report.mttr_ms.last().copied().unwrap_or(0),
    );
}

/// Appends parser-compatible bench rows: MTTR p50/p99 and the baseline
/// full-fleet sync time (nanoseconds in `mean_ns`, sample count in
/// `iterations`).
fn emit_bench_rows(report: &SizeReport) {
    let Some(path) = std::env::var_os("TROPIC_BENCH_JSON") else {
        return;
    };
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open TROPIC_BENCH_JSON");
    let label = size_label(report.hosts);
    for (metric, ms) in [
        ("mttr_p50", percentile(&report.mttr_ms, 0.50)),
        ("mttr_p99", percentile(&report.mttr_ms, 0.99)),
        ("baseline_sync", report.baseline_sync_ms),
    ] {
        writeln!(
            file,
            "{{\"name\":\"reconcile/{}_{}\",\"mean_ns\":{},\"iterations\":{}}}",
            metric,
            label,
            ms * 1_000_000,
            report.mttr_ms.len()
        )
        .expect("append bench row");
    }
}

fn sizes_from_env() -> Vec<usize> {
    std::env::var("TROPIC_RECONCILE_SIZES")
        .unwrap_or_else(|_| "1000,16000".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n: &usize| n > 0)
        .collect()
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    if !matches!(mode.as_str(), "bench" | "run") {
        eprintln!("unknown mode {mode:?}: expected bench | run");
        std::process::exit(2);
    }
    let drifts = env_usize("TROPIC_RECONCILE_DRIFTS", 32);
    let timeout = Duration::from_secs(env_usize("TROPIC_RECONCILE_TIMEOUT_S", 180) as u64);
    for hosts in sizes_from_env() {
        let report = measure(hosts, drifts.min(hosts), timeout);
        print_summary(&report);
        if mode == "bench" {
            assert!(
                !report.mttr_ms.is_empty(),
                "no MTTR samples recorded at {hosts} hosts"
            );
            emit_bench_rows(&report);
        }
    }
}

//! Regenerates the **§6.1 scalability claim**: transaction throughput stays
//! constant as the quantity of managed resources grows, because the
//! dominant costs (coordination writes, lock operations) are independent of
//! data-model size.
//!
//! Knob: `TROPIC_THRU_TXNS` (default 300 transactions per point).

use std::time::Duration;

use tropic_bench::env_usize;
use tropic_coord::CoordConfig;
use tropic_core::{ExecMode, PlatformConfig, Tropic};
use tropic_tcloud::TopologySpec;
use tropic_workload::{replay_ec2, Ec2Trace};

fn main() {
    let txns = env_usize("TROPIC_THRU_TXNS", 300);
    println!("Throughput-vs-scale experiment (paper §6.1)");
    println!("{txns} spawn transactions submitted back-to-back per deployment size");
    println!();
    println!("| compute hosts | managed VMs capacity | model nodes | throughput (txn/s) |");
    println!("|--------------:|---------------------:|------------:|-------------------:|");
    let mut rates = Vec::new();
    for hosts in [100usize, 400, 1_600, 6_400, 12_500] {
        let spec = TopologySpec {
            compute_hosts: hosts,
            storage_hosts: (hosts / 4).max(1),
            routers: 0,
            host_mem_mb: 16_384,
            storage_capacity_mb: 1_000_000_000,
            ..Default::default()
        };
        let nodes = spec.build_tree().node_count();
        let platform = Tropic::start(
            PlatformConfig {
                controllers: 1,
                workers: 1,
                coord: CoordConfig::default(),
                checkpoint_every: 0,
                ..Default::default()
            },
            spec.service(),
            ExecMode::LogicalOnly,
        );
        // Warm up: absorb the one-time leader bootstrap (initial-tree
        // checkpoint) so the timed burst measures steady-state service rate.
        let warmup = Ec2Trace::from_counts(vec![20]);
        let _ = replay_ec2(
            &platform,
            &spec,
            &warmup,
            1_000.0,
            2_048,
            Duration::from_secs(120),
        );
        // All transactions in one burst: measures the service rate.
        let trace = Ec2Trace::from_counts(vec![txns as u32]);
        let report = replay_ec2(
            &platform,
            &spec,
            &trace,
            1_000.0,
            2_048,
            Duration::from_secs(600),
        );
        let rate = report.committed as f64 / (report.wall_ms as f64 / 1_000.0);
        println!(
            "| {hosts} | {} | {nodes} | {rate:.1} |",
            hosts * (16_384 / 2_048)
        );
        rates.push(rate);
        platform.shutdown();
    }
    println!();
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    let max = rates.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "throughput spread across a 125x resource-scale range: {:.1}x (paper: constant)",
        max / min
    );
}

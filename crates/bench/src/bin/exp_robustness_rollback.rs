//! Regenerates the **§6.3 robustness experiment**: the logical-layer cost
//! of rolling back transactions whose physical execution fails — the paper
//! injects exceptions in the last step of VM spawn and migrate and reports
//! the logical rollback completing in under 9 ms per transaction.
//!
//! Method: run the hosting workload against real simulated devices with the
//! last spawn/migrate step failing every N-th invocation, and measure both
//! the end-to-end abort handling and the isolated `rollback_logical` cost.

use std::time::{Duration, Instant};

use tropic_core::{
    rollback_logical, simulate, ExecMode, LockManager, LogicalOutcome, PlatformConfig, Tropic,
    TxnRecord, TxnState,
};
use tropic_devices::{Device, LatencyModel};
use tropic_tcloud::{actions, constraints, procs, TopologySpec};
use tropic_workload::{replay_hosting, HostingSpec, LatencyStats};

fn main() {
    // Part 1: isolated logical-rollback cost, the paper's headline metric.
    let spec = TopologySpec {
        compute_hosts: 16,
        storage_hosts: 4,
        routers: 0,
        storage_capacity_mb: 100_000_000,
        ..Default::default()
    };
    let action_registry = actions::all();
    let constraint_set = constraints::all();
    let mut tree = spec.build_tree();
    let mut locks = LockManager::new();
    let mut rollback_us = Vec::new();
    for i in 0..500u64 {
        let host = (i % 16) as usize;
        let mut rec = TxnRecord::new(
            i + 1,
            "spawnVM",
            spec.spawn_args(&format!("rb{i}"), host, 2_048),
            0,
        );
        let outcome = simulate(
            &mut rec,
            procs::spawn_vm().as_ref(),
            &mut tree,
            &action_registry,
            &constraint_set,
            &mut locks,
        );
        assert_eq!(outcome, LogicalOutcome::Runnable);
        // Physical execution "failed": roll the logical layer back.
        let t0 = Instant::now();
        rollback_logical(&rec.log, &mut tree, &action_registry).expect("undo chain");
        rollback_us.push(t0.elapsed().as_micros() as u64);
        locks.release_all(i + 1);
    }
    let iso = LatencyStats::new(rollback_us);
    println!("Robustness experiment (paper §6.3): rollback overhead");
    println!();
    println!("isolated logical rollback of a 5-action spawnVM log (500 runs):");
    println!(
        "  median {} us, p99 {} us, max {} us  (paper bound: < 9 ms)",
        iso.median(),
        iso.percentile(99.0),
        iso.max()
    );
    assert!(
        iso.percentile(99.0) < 9_000,
        "p99 must stay below the paper's 9 ms"
    );

    // Part 2: end-to-end error handling with faults injected in the last
    // step of spawn and migrate (the paper's two error scenarios).
    let devices = spec.build_devices(&LatencyModel::zero());
    for compute in &devices.computes {
        // startVM is the final action of both spawnVM and (running) migrate.
        compute.fault_plan().fail_every_nth("startVM", 4);
    }
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 2,
            ..Default::default()
        },
        spec.service(),
        ExecMode::Physical(devices.registry.clone()),
    );
    let ops = HostingSpec {
        operations: 300,
        hosts: 16,
        slots_per_host: 8,
        ..Default::default()
    }
    .generate();
    let report = replay_hosting(
        &platform,
        &spec,
        &ops,
        Duration::ZERO,
        2_048,
        Duration::from_secs(300),
    );
    let samples = platform.metrics().samples();
    let aborted: Vec<u64> = samples
        .iter()
        .filter(|s| s.state == TxnState::Aborted)
        .map(|s| s.latency_ms())
        .collect();
    let aborted_stats = LatencyStats::new(aborted);
    println!();
    println!(
        "end-to-end with every 4th startVM failing: {} submitted, {} committed, {} aborted, {} failed",
        report.submitted, report.committed, report.aborted, report.failed
    );
    println!(
        "aborted-transaction end-to-end latency: median {} ms, p99 {} ms",
        aborted_stats.median(),
        aborted_stats.percentile(99.0)
    );
    println!();
    println!(
        "paper: TROPIC handles transaction errors and rollback efficiently; \
         logical-layer operations complete in < 9 ms per transaction."
    );
    platform.shutdown();
}

//! Shared harness for the TROPIC evaluation experiments (paper §6).
//!
//! Each `src/bin/*` binary regenerates one table or figure; this library
//! holds the common machinery: a performance-tuned platform, the
//! EC2-workload runner with CPU-utilization sampling (Figures 4 and 5),
//! and table formatting.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tropic_coord::{CoordConfig, EnsembleStats};
use tropic_core::{ExecMode, Metrics, PlatformConfig, Tropic};
use tropic_tcloud::TopologySpec;
use tropic_workload::{replay_ec2, Ec2Trace, Ec2TraceSpec, LatencyStats, ReplayReport};

/// Environment-variable override helper for experiment knobs.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Environment-variable override helper (f64).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The shortened EC2 trace used by the performance experiments: same rates
/// as the paper's 1-hour trace (mean 2.34/s, peak 14/s at 80 % of the
/// duration), compressed in *duration* so rates — and therefore the
/// load-to-capacity ratio — are preserved.
pub fn short_ec2_trace(duration_s: usize) -> Ec2Trace {
    Ec2TraceSpec {
        duration_s,
        burst_center_s: duration_s as f64 * 0.8,
        burst_sigma_s: (duration_s as f64 / 60.0).max(2.0),
        ..Default::default()
    }
    .generate()
}

/// Platform configuration mirroring the paper's performance setup (§6.1):
/// logical-only mode, three controllers, and a coordination write latency
/// emulating ZooKeeper's logging I/O — the measured dominant overhead.
pub fn perf_platform(spec: &TopologySpec, write_latency: Duration) -> Tropic {
    perf_platform_at(spec, write_latency, None)
}

/// [`perf_platform`] with an optional durability directory: when given, the
/// coordination store write-ahead-logs and snapshots there, so the run also
/// measures the durability layer's overhead and its counters are live.
pub fn perf_platform_at(
    spec: &TopologySpec,
    write_latency: Duration,
    data_dir: Option<std::path::PathBuf>,
) -> Tropic {
    Tropic::start(
        PlatformConfig {
            controllers: 3,
            workers: 1,
            coord: CoordConfig {
                write_latency,
                data_dir,
                ..CoordConfig::default()
            },
            // Checkpoints off during measurement; bootstrap still runs once.
            checkpoint_every: 0,
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    )
}

/// Result of one EC2-scale run.
pub struct PerfRun {
    /// Which multiple of the EC2 workload ran (1–5).
    pub scale: u32,
    /// Replay summary.
    pub report: ReplayReport,
    /// Controller-busy utilization (%) per sampling bucket.
    pub cpu_buckets: Vec<f64>,
    /// Latency distribution of finalized transactions.
    pub latency: LatencyStats,
    /// Lock-conflict defers observed.
    pub defers: u64,
    /// Coordination-ensemble counters at the end of the run, including the
    /// durability surface (snapshots written, segments rotated, bytes
    /// fsynced) — live when `TROPIC_DURABLE_DIR` is set.
    pub ensemble: EnsembleStats,
}

/// Runs the EC2 workload at `scale`× against a fresh platform, sampling
/// controller busy time every `bucket_ms` (Figure 4's series) and
/// collecting per-transaction latencies (Figure 5's CDF).
///
/// When `TROPIC_DURABLE_DIR` is set, each run persists its coordination
/// state under `<dir>/scale-<n>`, exercising the durability layer.
pub fn run_ec2_scale(
    spec: &TopologySpec,
    trace: &Ec2Trace,
    scale: u32,
    write_latency: Duration,
    bucket_ms: u64,
) -> PerfRun {
    let data_dir = std::env::var_os("TROPIC_DURABLE_DIR")
        .map(|d| std::path::PathBuf::from(d).join(format!("scale-{scale}")));
    let platform = perf_platform_at(spec, write_latency, data_dir);
    let scaled = trace.scaled(scale);

    // Background sampler: cumulative busy time per wall-clock bucket.
    let metrics: Metrics = platform.metrics().clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let sampler = std::thread::spawn(move || {
        let mut samples: Vec<(u64, f64)> = vec![(0, 0.0)];
        let start = std::time::Instant::now();
        while !stop2.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(bucket_ms.min(100)));
            let at = start.elapsed().as_millis() as u64;
            if at / bucket_ms > samples.last().map(|s| s.0 / bucket_ms).unwrap_or(0) {
                samples.push((at, metrics.busy().as_secs_f64() * 1_000.0));
            }
        }
        samples
    });

    let report = replay_ec2(
        &platform,
        spec,
        &scaled,
        1.0,
        2_048,
        Duration::from_secs(600),
    );
    stop.store(true, Ordering::SeqCst);
    let samples = sampler.join().expect("sampler thread");
    let cpu_buckets = tropic_workload::utilization_series(&samples);

    let latency = LatencyStats::new(
        platform
            .metrics()
            .samples()
            .iter()
            .map(|s| s.latency_ms())
            .collect(),
    );
    let defers = platform.metrics().counters().defers;
    let ensemble = platform.coord().ensemble_stats();
    platform.shutdown();
    PerfRun {
        scale,
        report,
        cpu_buckets,
        latency,
        defers,
        ensemble,
    }
}

/// Prints a Markdown-ish table row with `|` separators.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_trace_preserves_rates() {
        let t = short_ec2_trace(120);
        assert_eq!(t.duration_s(), 120);
        let mean = t.mean_rate();
        assert!((1.9..=2.8).contains(&mean), "mean {mean}");
        let (peak, at) = t.peak();
        assert!((12..=16).contains(&peak), "peak {peak}");
        assert!((0.7..=0.9).contains(&(at as f64 / 120.0)), "peak at {at}");
    }

    #[test]
    fn env_helpers_default() {
        assert_eq!(env_usize("TROPIC_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_f64("TROPIC_DOES_NOT_EXIST", 1.5), 1.5);
    }

    #[test]
    fn tiny_perf_run_completes() {
        let spec = TopologySpec {
            compute_hosts: 32,
            storage_hosts: 8,
            routers: 0,
            ..Default::default()
        };
        let trace = Ec2Trace::from_counts(vec![3, 3, 3]);
        let run = run_ec2_scale(&spec, &trace, 1, Duration::ZERO, 500);
        assert_eq!(run.report.submitted, 9);
        assert_eq!(run.report.committed, 9);
        assert!(!run.latency.is_empty());
    }
}

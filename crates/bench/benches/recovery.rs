//! Criterion bench: crash-recovery wall time for the coordination store.
//!
//! Three recovery strategies over the same committed history:
//!
//! * `snapshot_suffix`  — load the latest fuzzy snapshot, replay only the
//!   write-ahead-log suffix after it (the durability layer's default).
//! * `full_log_replay`  — no snapshots ever taken; recovery decodes and
//!   re-applies every record since the beginning of time.
//! * `cold_resync`      — the full replacement-node story: a replica with
//!   an empty disk joins, so one iteration covers wiping its directory,
//!   recovering the leader from disk, the snapshot transfer, and persisting
//!   the transferred state on the new node. Compare against
//!   `snapshot_suffix` (the leader-recovery share) to isolate the transfer.
//!
//! `ci.sh --bench-snapshot` records all three in `BENCH_recovery.json` and
//! gates on `full_log_replay / snapshot_suffix >= 2` — the point of
//! checkpointing is that recovery does not scale with history length.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bytes::Bytes;
use tropic_coord::{DurabilityOptions, Ensemble, Op, SyncPolicy, TempDir};
use tropic_model::Path;

/// Distinct znodes touched by the workload.
const NODES: usize = 256;
/// Overwrites layered on top (history length >> live-state size).
const SETS: usize = 4_096;

fn opts(snapshot_every_ops: u64) -> DurabilityOptions {
    DurabilityOptions {
        // Periodic sync keeps history *population* fast; recovery cost is
        // unaffected (it reads, it does not fsync).
        sync_policy: SyncPolicy::Periodic { every_ops: 512 },
        snapshot_every_ops,
        snapshot_max_wal_bytes: 0,
        segment_max_bytes: 1 << 20,
        ..DurabilityOptions::default()
    }
}

fn node_path(i: usize) -> Path {
    Path::parse(&format!("/n{i}")).expect("valid path")
}

fn populate(e: &mut Ensemble) {
    for i in 0..NODES {
        e.submit(Op::Create {
            path: node_path(i),
            data: Bytes::from_static(b"initial"),
            ephemeral_owner: None,
            sequential: false,
        })
        .0
        .expect("create");
    }
    for i in 0..SETS {
        e.submit(Op::SetData {
            path: node_path(i % NODES),
            data: Bytes::copy_from_slice(format!("value-{i:08}").as_bytes()),
            expected_version: None,
        })
        .0
        .expect("set");
    }
}

/// Builds a replica directory holding the standard history under the given
/// snapshot cadence (0 = full-log mode, no snapshot ever written).
fn build_history(snapshot_every_ops: u64) -> TempDir {
    let tmp = TempDir::new("tropic-bench-recovery");
    let mut e = Ensemble::with_durability(1, 1, tmp.path(), opts(snapshot_every_ops))
        .expect("durable ensemble");
    populate(&mut e);
    tmp
}

fn bench(c: &mut Criterion) {
    let with_snapshots = build_history(512);
    let without_snapshots = build_history(0);

    let mut group = c.benchmark_group("recovery");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));

    group.bench_function("snapshot_suffix", |b| {
        b.iter(|| {
            let e = Ensemble::recover(1, 1, with_snapshots.path(), opts(512)).expect("recover");
            black_box(e.replica_last_zxid(0));
        })
    });

    group.bench_function("full_log_replay", |b| {
        b.iter(|| {
            let e = Ensemble::recover(1, 1, without_snapshots.path(), opts(0)).expect("recover");
            black_box(e.replica_last_zxid(0));
        })
    });

    // A fresh node (wiped disk) joining the recovered leader: its state
    // arrives as one snapshot transfer, persisted locally before it
    // serves. Deliberately end-to-end — the wipe and the leader's own
    // recovery are part of the replacement-node cost being reported; the
    // snapshot_suffix number above is the leader-recovery share of it.
    group.bench_function("cold_resync", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(with_snapshots.path().join("replica-1"));
            let e = Ensemble::recover(2, 1, with_snapshots.path(), opts(512)).expect("recover");
            assert_eq!(e.stats().snapshot_syncs, 1);
            black_box(e.replica_last_zxid(1));
        })
    });

    group.finish();
    // Drop the fresh-node directory so the suffix bench's TempDir cleanup
    // sees exactly what it created.
    let _ = std::fs::remove_dir_all(with_snapshots.path().join("replica-1"));
}

criterion_group!(benches, bench);
criterion_main!(benches);

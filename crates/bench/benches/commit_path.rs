//! Criterion macro-bench: the end-to-end transaction commit path through
//! the whole platform (submit → logical execution → phyQ → worker →
//! result → cleanup), in logical-only mode — the per-transaction cost
//! underlying the Figure 4/5 runs.
//!
//! Two variants measure the group-commit payoff under a modeled
//! coordination-log write latency (the ZooKeeper I/O the paper identifies
//! as the dominant per-transaction overhead, §6.1):
//!
//! * `per_record`  — every controller/worker state transition is its own
//!   quorum write (the pre-group-commit commit path).
//! * `group_commit` — each scheduling round flushes as one atomic multi.
//!
//! `ci.sh --bench-snapshot` records both means in `BENCH_commit_path.json`
//! and gates on their ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tropic_coord::CoordConfig;
use tropic_core::{ExecMode, PlatformConfig, Tropic, TxnState};
use tropic_tcloud::TopologySpec;

/// Simulated replicated-log write latency (a disk-era ZooKeeper forced log
/// write, §6.1). Every quorum write pays it; group commit amortizes it
/// across a whole round.
const WRITE_LATENCY: Duration = Duration::from_millis(1);

fn spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 64,
        storage_hosts: 16,
        routers: 0,
        storage_capacity_mb: 1_000_000_000,
        host_mem_mb: 1_000_000,
        ..Default::default()
    }
}

fn platform(group_commit: bool) -> Tropic {
    Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            checkpoint_every: 0,
            group_commit,
            coord: CoordConfig {
                write_latency: WRITE_LATENCY,
                ..CoordConfig::default()
            },
            ..Default::default()
        },
        spec().service(),
        ExecMode::LogicalOnly,
    )
}

fn bench_variant(c: &mut Criterion, name: &str, group_commit: bool) {
    let spec = spec();
    let platform = platform(group_commit);
    let client = platform.client();

    let mut group = c.benchmark_group("commit_path");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(8));
    let mut i = 0u64;
    // Spawn + destroy per iteration keeps resource usage flat no matter how
    // many iterations criterion decides to run.
    group.bench_function(name, |b| {
        b.iter(|| {
            let host = (i % 64) as usize;
            let vm = format!("cp{i}");
            let outcome = client
                .submit_request(
                    tropic_core::TxnRequest::new("spawnVM").args(spec.spawn_args(&vm, host, 2_048)),
                )
                .unwrap()
                .wait_timeout(Duration::from_secs(60))
                .unwrap();
            assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
            let outcome = client
                .submit_request(
                    tropic_core::TxnRequest::new("destroyVM")
                        .arg(TopologySpec::host_path(host).to_string())
                        .arg(vm.as_str())
                        .arg(TopologySpec::storage_path(host / 4).to_string()),
                )
                .unwrap()
                .wait_timeout(Duration::from_secs(60))
                .unwrap();
            assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
            i += 1;
        })
    });
    group.finish();
    platform.shutdown();
}

fn bench(c: &mut Criterion) {
    // The baseline first, so a snapshot always has the "before" number.
    bench_variant(c, "per_record", false);
    bench_variant(c, "group_commit", true);
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion macro-bench: the end-to-end transaction commit path through
//! the whole platform (submit → logical execution → phyQ → worker →
//! result → cleanup), in logical-only mode — the per-transaction cost
//! underlying the Figure 4/5 runs.
//!
//! Two variants measure the group-commit payoff under a modeled
//! coordination-log write latency (the ZooKeeper I/O the paper identifies
//! as the dominant per-transaction overhead, §6.1):
//!
//! * `per_record`  — every controller/worker state transition is its own
//!   quorum write (the pre-group-commit commit path).
//! * `group_commit` — each scheduling round flushes as one atomic multi.
//!
//! Every variant drives a pipelined window of `WINDOW` concurrent
//! transactions per wave (spawns, then destroys), because group commit's
//! payoff is amortizing the round flush across the transactions sharing
//! it — a single submit→wait pair caps the apparent speedup at the
//! per-txn write count and mostly measures scheduling-round alignment.
//!
//! Four more run the *real* durability layer (replica WALs on disk, a
//! modeled per-fsync device latency) across a store-size dimension, so the
//! numbers expose both delta-snapshot proportionality and the pipelined
//! group-fsync payoff:
//!
//! * `serial_fsync_1k` / `serial_fsync_16k`       — `SyncPolicy::EveryBatch`:
//!   each replica's fsync blocks the commit path in turn.
//! * `pipelined_fsync_1k` / `pipelined_fsync_16k` — `SyncPolicy::Pipelined`:
//!   per-replica sync threads overlap fsyncs across replicas and batches.
//!
//! `ci.sh --bench-snapshot` records the modeled-latency means in
//! `BENCH_commit_path.json` and gates on their ratio; the durable-variant
//! means feed `BENCH_snapshot.json`, gated on
//! `serial_fsync_16k / pipelined_fsync_16k`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tropic_coord::{CoordConfig, DurabilityOptions, Op, SyncPolicy, TempDir};
use tropic_core::{ExecMode, PlatformConfig, Tropic, TxnState};
use tropic_model::Path;
use tropic_tcloud::TopologySpec;

/// Simulated replicated-log write latency (a disk-era ZooKeeper forced log
/// write, §6.1). Every quorum write pays it; group commit amortizes it
/// across a whole round.
const WRITE_LATENCY: Duration = Duration::from_millis(2);

/// Concurrent transactions in flight per wave. Group commit's payoff is
/// amortization *across* transactions sharing a scheduling round, so the
/// bench drives a pipelined window rather than one lonely txn — a single
/// submit→wait pair mostly measured round alignment and capped the
/// apparent speedup near the per-txn write count.
const WINDOW: u64 = 8;

/// Modeled device flush for the durable variants (an enterprise-SSD-class
/// fsync). The serial policy pays it once per replica per batch, in
/// sequence; the pipelined policy overlaps those flushes.
const FSYNC_LATENCY: Duration = Duration::from_micros(400);

fn spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 64,
        storage_hosts: 16,
        routers: 0,
        storage_capacity_mb: 1_000_000_000,
        host_mem_mb: 1_000_000,
        ..Default::default()
    }
}

fn platform(group_commit: bool) -> Tropic {
    Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            checkpoint_every: 0,
            group_commit,
            coord: CoordConfig {
                write_latency: WRITE_LATENCY,
                ..CoordConfig::default()
            },
            ..Default::default()
        },
        spec().service(),
        ExecMode::LogicalOnly,
    )
}

fn durable_platform(dir: &std::path::Path, sync_policy: SyncPolicy) -> Tropic {
    Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            checkpoint_every: 0,
            group_commit: true,
            coord: CoordConfig {
                durability: DurabilityOptions {
                    sync_policy,
                    // Frequent snapshots keep the snapshot encoder on the
                    // measured path, so store size shows up honestly.
                    snapshot_every_ops: 256,
                    snapshot_max_wal_bytes: 0,
                    ..DurabilityOptions::default()
                },
                ..CoordConfig::default()
            },
            ..Default::default()
        }
        .with_data_dir(dir),
        spec().service(),
        ExecMode::LogicalOnly,
    )
}

/// Grows the coordination store to `nodes` filler znodes (batched multis,
/// fsync latency still zero), so snapshots taken during measurement
/// serialize a store of the intended size.
fn populate_filler(platform: &Tropic, nodes: usize) {
    let client = platform.coord().connect("bench-filler");
    let root = Path::parse("/filler").expect("valid path");
    client.create_all(&root).expect("filler root");
    for chunk in (0..nodes).collect::<Vec<_>>().chunks(512) {
        let ops = chunk
            .iter()
            .map(|i| Op::Create {
                path: root.join(&format!("n{i}")),
                data: b"filler"[..].into(),
                ephemeral_owner: None,
                sequential: false,
            })
            .collect();
        client.multi(ops).expect("filler batch");
    }
}

fn run_commit_loop(c: &mut Criterion, name: &str, platform: &Tropic) {
    let spec = spec();
    let client = platform.client();
    let mut group = c.benchmark_group("commit_path");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(8));
    let mut i = 0u64;
    // A wave of WINDOW spawns (distinct hosts, so no lock conflicts), wait
    // for all, then the matching destroy wave. Spawn + destroy per iteration
    // keeps resource usage flat no matter how many iterations criterion
    // decides to run.
    group.bench_function(name, |b| {
        b.iter(|| {
            let base = i;
            let handles: Vec<_> = (base..base + WINDOW)
                .map(|n| {
                    let host = (n % 64) as usize;
                    client
                        .submit_request(
                            tropic_core::TxnRequest::new("spawnVM").args(spec.spawn_args(
                                &format!("cp{n}"),
                                host,
                                2_048,
                            )),
                        )
                        .unwrap()
                })
                .collect();
            for h in handles {
                let outcome = h.wait_timeout(Duration::from_secs(60)).unwrap();
                assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
            }
            let handles: Vec<_> = (base..base + WINDOW)
                .map(|n| {
                    let host = (n % 64) as usize;
                    client
                        .submit_request(
                            tropic_core::TxnRequest::new("destroyVM")
                                .arg(TopologySpec::host_path(host).to_string())
                                .arg(format!("cp{n}"))
                                .arg(TopologySpec::storage_path(host / 4).to_string()),
                        )
                        .unwrap()
                })
                .collect();
            for h in handles {
                let outcome = h.wait_timeout(Duration::from_secs(60)).unwrap();
                assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
            }
            i += WINDOW;
        })
    });
    group.finish();
}

fn bench_variant(c: &mut Criterion, name: &str, group_commit: bool) {
    let platform = platform(group_commit);
    run_commit_loop(c, name, &platform);
    platform.shutdown();
}

fn bench_durable_variant(
    c: &mut Criterion,
    name: &str,
    sync_policy: SyncPolicy,
    store_nodes: usize,
) {
    let tmp = TempDir::new("tropic-bench-commit-durable");
    let platform = durable_platform(tmp.path(), sync_policy);
    populate_filler(&platform, store_nodes);
    // Population ran at device speed zero; measurement models the flush.
    platform.coord().set_simulated_fsync_latency(FSYNC_LATENCY);
    run_commit_loop(c, name, &platform);
    platform.shutdown();
}

fn bench(c: &mut Criterion) {
    // The baseline first, so a snapshot always has the "before" number.
    bench_variant(c, "per_record", false);
    bench_variant(c, "group_commit", true);
    bench_durable_variant(c, "serial_fsync_1k", SyncPolicy::EveryBatch, 1_024);
    bench_durable_variant(
        c,
        "pipelined_fsync_1k",
        SyncPolicy::Pipelined { depth: 4 },
        1_024,
    );
    bench_durable_variant(c, "serial_fsync_16k", SyncPolicy::EveryBatch, 16_384);
    bench_durable_variant(
        c,
        "pipelined_fsync_16k",
        SyncPolicy::Pipelined { depth: 4 },
        16_384,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);

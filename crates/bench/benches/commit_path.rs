//! Criterion macro-bench: the end-to-end transaction commit path through
//! the whole platform (submit → logical execution → phyQ → worker →
//! result → cleanup), in logical-only mode — the per-transaction cost
//! underlying the Figure 4/5 runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tropic_core::{ExecMode, PlatformConfig, Tropic, TxnState};
use tropic_tcloud::TopologySpec;

fn bench(c: &mut Criterion) {
    let spec = TopologySpec {
        compute_hosts: 64,
        storage_hosts: 16,
        routers: 0,
        storage_capacity_mb: 1_000_000_000,
        host_mem_mb: 1_000_000,
        ..Default::default()
    };
    let platform = Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            checkpoint_every: 0,
            ..Default::default()
        },
        spec.service(),
        ExecMode::LogicalOnly,
    );
    let client = platform.client();

    let mut group = c.benchmark_group("commit_path");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(8));
    let mut i = 0u64;
    // Spawn + destroy per iteration keeps resource usage flat no matter how
    // many iterations criterion decides to run.
    group.bench_function("spawn_destroy_round_trip", |b| {
        b.iter(|| {
            let host = (i % 64) as usize;
            let vm = format!("cp{i}");
            let outcome = client
                .submit_and_wait(
                    "spawnVM",
                    spec.spawn_args(&vm, host, 2_048),
                    Duration::from_secs(60),
                )
                .unwrap();
            assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
            let outcome = client
                .submit_and_wait(
                    "destroyVM",
                    vec![
                        tropic_model::Value::from(TopologySpec::host_path(host).to_string()),
                        tropic_model::Value::from(vm.as_str()),
                        tropic_model::Value::from(TopologySpec::storage_path(host / 4).to_string()),
                    ],
                    Duration::from_secs(60),
                )
                .unwrap();
            assert_eq!(outcome.state, TxnState::Committed, "{:?}", outcome.error);
            i += 1;
        })
    });
    group.finish();
    platform.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion micro-bench: logical-layer simulation of TCloud procedures —
//! the CPU component of Figure 4, and (with constraints on vs off) the
//! §6.2 constraint-checking overhead as a micro-measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tropic_core::{rollback_logical, simulate, LockManager, LogicalOutcome, TxnRecord};
use tropic_model::ConstraintSet;
use tropic_tcloud::{actions, constraints, procs, TopologySpec};

fn bench(c: &mut Criterion) {
    let spec = TopologySpec {
        compute_hosts: 1_000,
        storage_hosts: 250,
        routers: 0,
        storage_capacity_mb: 1_000_000_000,
        ..Default::default()
    };
    let action_registry = actions::all();
    let full_constraints = constraints::all();
    let no_constraints = ConstraintSet::new();
    let spawn = procs::spawn_vm();

    let mut group = c.benchmark_group("logical_simulation");
    group.sample_size(20);

    for (label, cons) in [
        ("with_constraints", &full_constraints),
        ("no_constraints", &no_constraints),
    ] {
        group.bench_function(format!("spawn_vm_simulate_{label}"), |b| {
            let mut tree = spec.build_tree();
            let mut locks = LockManager::new();
            let mut i = 0u64;
            b.iter(|| {
                let host = (i % 1_000) as usize;
                let mut rec = TxnRecord::new(
                    i + 1,
                    "spawnVM",
                    spec.spawn_args(&format!("b{i}"), host, 2_048),
                    0,
                );
                let outcome = simulate(
                    &mut rec,
                    spawn.as_ref(),
                    &mut tree,
                    &action_registry,
                    cons,
                    &mut locks,
                );
                assert_eq!(outcome, LogicalOutcome::Runnable);
                // Undo immediately so the tree does not grow across samples.
                rollback_logical(&rec.log, &mut tree, &action_registry).unwrap();
                locks.release_all(i + 1);
                i += 1;
                black_box(&rec.log);
            })
        });
    }

    group.bench_function("rollback_logical_spawn_log", |b| {
        let mut tree = spec.build_tree();
        let mut locks = LockManager::new();
        let mut rec = TxnRecord::new(1, "spawnVM", spec.spawn_args("rb", 0, 2_048), 0);
        simulate(
            &mut rec,
            spawn.as_ref(),
            &mut tree,
            &action_registry,
            &full_constraints,
            &mut locks,
        );
        let log = rec.log.clone();
        // Benchmark the undo+redo pair to keep the state stable.
        b.iter(|| {
            rollback_logical(&log, &mut tree, &action_registry).unwrap();
            for r in &log {
                action_registry
                    .get(&r.action)
                    .unwrap()
                    .apply_logical(&mut tree, &r.object, &r.args)
                    .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

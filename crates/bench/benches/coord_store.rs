//! Criterion micro-bench: coordination-service operations — the paper
//! identifies ZooKeeper I/O (not logical simulation) as TROPIC's dominant
//! per-transaction overhead (§6.1); these numbers quantify our substitute.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tropic_coord::{CoordConfig, CoordService, CreateMode, DistributedQueue, Op};
use tropic_model::Path;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("coord_store");
    group.sample_size(30);

    group.bench_function("quorum_create_delete", |b| {
        let svc = CoordService::start(CoordConfig::default());
        let client = svc.connect("bench");
        let base = Path::parse("/bench").unwrap();
        client.create_all(&base).unwrap();
        let p = base.join("node");
        b.iter(|| {
            client
                .create(&p, &b"payload"[..], CreateMode::Persistent)
                .unwrap();
            client.delete(&p, None).unwrap();
        })
    });

    group.bench_function("quorum_set_data_1kb", |b| {
        let svc = CoordService::start(CoordConfig::default());
        let client = svc.connect("bench");
        let p = Path::parse("/blob").unwrap();
        client
            .create(&p, vec![0u8; 1024], CreateMode::Persistent)
            .unwrap();
        let payload = vec![7u8; 1024];
        b.iter(|| {
            client.set_data(&p, payload.clone(), None).unwrap();
        })
    });

    group.bench_function("read_get_data", |b| {
        let svc = CoordService::start(CoordConfig::default());
        let client = svc.connect("bench");
        let p = Path::parse("/r").unwrap();
        client
            .create(&p, &b"x"[..], CreateMode::Persistent)
            .unwrap();
        b.iter(|| black_box(client.get_data(&p).unwrap().is_some()))
    });

    group.bench_function("queue_enqueue_dequeue", |b| {
        let svc = CoordService::start(CoordConfig::default());
        let client = svc.connect("bench");
        let q = DistributedQueue::new(&client, Path::parse("/q").unwrap()).unwrap();
        b.iter(|| {
            q.enqueue(&b"item"[..]).unwrap();
            black_box(q.try_dequeue().unwrap());
        })
    });

    // 16 sets issued one write at a time vs. as one atomic multi — the raw
    // broadcast-amortization the controller's group commit builds on. Both
    // variants share one setup so the comparison can never skew.
    fn seeded_paths() -> (CoordService, tropic_coord::CoordClient, Vec<Path>) {
        let svc = CoordService::start(CoordConfig::default());
        let client = svc.connect("bench");
        let paths: Vec<Path> = (0..16)
            .map(|i| {
                let p = Path::parse(&format!("/n{i}")).unwrap();
                client
                    .create(&p, &b"0"[..], CreateMode::Persistent)
                    .unwrap();
                p
            })
            .collect();
        (svc, client, paths)
    }

    group.bench_function("set_16_per_record", |b| {
        let (_svc, client, paths) = seeded_paths();
        b.iter(|| {
            for p in &paths {
                client.set_data(p, &b"x"[..], None).unwrap();
            }
        })
    });

    group.bench_function("set_16_multi", |b| {
        let (_svc, client, paths) = seeded_paths();
        b.iter(|| {
            let ops: Vec<Op> = paths
                .iter()
                .map(|p| Op::SetData {
                    path: p.clone(),
                    data: bytes::Bytes::from_static(b"x"),
                    expected_version: None,
                })
                .collect();
            client.multi(ops).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench: snapshot cost proportionality — the tentpole claim
//! that a delta snapshot scales with *dirty state*, not store size.
//!
//! Over a 16k-znode store with 5% of the nodes dirtied since the last
//! checkpoint:
//!
//! * `full_write`  — encode + atomically persist the entire store
//!   (`snapshot::write`), the pre-delta behavior at every checkpoint.
//! * `delta_write` — encode + persist only the dirty paths
//!   (`snapshot::write_delta`), what the durability layer now emits when
//!   the dirty set is small and the chain has room.
//! * `chain_load`  — recovery's `snapshot::load_chain` over
//!   `full + delta`, the read-side cost of chaining.
//!
//! Besides the timings, the bench appends two byte-count lines to
//! `TROPIC_BENCH_JSON` (`snapshot/full_bytes`, `snapshot/delta_bytes`,
//! sizes in the `mean_ns` field): `ci.sh --bench-snapshot` gates their
//! ratio under `TROPIC_BENCH_MAX_DELTA_RATIO` — a delta at 5%-dirty must
//! cost ≤ 25% of a full rewrite, with slack for per-record framing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::io::Write as _;
use std::time::Duration;

use tropic_coord::{snapshot, Op, TempDir, ZnodeStore};
use tropic_model::Path;

/// Store size: the "larger store" dimension from the commit-path bench.
const NODES: usize = 16_384;
/// Fraction of the store dirtied between checkpoints, in percent.
const DIRTY_PCT: usize = 5;

fn node_path(i: usize) -> Path {
    Path::parse(&format!("/n{i}")).expect("valid path")
}

/// A populated store, its zxid high-water mark untouched since creation.
fn populated() -> (ZnodeStore, u64) {
    let mut store = ZnodeStore::new();
    let mut zxid = 0u64;
    for i in 0..NODES {
        zxid += 1;
        store
            .apply(
                zxid,
                &Op::Create {
                    path: node_path(i),
                    data: b"initial-value-of-a-realistic-size"[..].into(),
                    ephemeral_owner: None,
                    sequential: false,
                },
            )
            .0
            .expect("create");
    }
    (store, zxid)
}

/// Appends a parser-compatible JSON line carrying a byte count in the
/// `mean_ns` field (the snapshot gate reads it back as a size).
fn record_bytes(name: &str, bytes: u64) {
    let Some(path) = std::env::var_os("TROPIC_BENCH_JSON") else {
        return;
    };
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            file,
            "{{\"name\":\"snapshot/{name}\",\"mean_ns\":{bytes},\"iterations\":1}}"
        );
    }
}

fn bench(c: &mut Criterion) {
    let (mut store, base_zxid) = populated();
    store.clear_dirty();
    let base_store = store.clone();
    // Dirty 5% of the store the way a checkpoint interval would: data
    // overwrites on a spread of existing nodes.
    let mut zxid = base_zxid;
    for i in 0..(NODES * DIRTY_PCT / 100) {
        zxid += 1;
        store
            .apply(
                zxid,
                &Op::SetData {
                    path: node_path(i * (100 / DIRTY_PCT)),
                    data: b"dirty-overwrite-of-a-similar-size"[..].into(),
                    expected_version: None,
                },
            )
            .0
            .expect("set");
    }
    let records = store.delta_records();

    let full_dir = TempDir::new("tropic-bench-snap-full");
    let delta_dir = TempDir::new("tropic-bench-snap-delta");
    let chain_dir = TempDir::new("tropic-bench-snap-chain");

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));

    let mut full_bytes = 0u64;
    group.bench_function("full_write", |b| {
        b.iter(|| {
            full_bytes = snapshot::write(full_dir.path(), zxid, &store).expect("full write");
            black_box(full_bytes)
        })
    });

    let mut delta_bytes = 0u64;
    group.bench_function("delta_write", |b| {
        b.iter(|| {
            delta_bytes = snapshot::write_delta(delta_dir.path(), base_zxid, zxid, &records)
                .expect("delta write");
            black_box(delta_bytes)
        })
    });

    // Recovery's view: a full at the base and one delta chained onto it.
    snapshot::write(chain_dir.path(), base_zxid, &base_store).expect("chain base");
    snapshot::write_delta(chain_dir.path(), base_zxid, zxid, &records).expect("chain delta");
    group.bench_function("chain_load", |b| {
        b.iter(|| {
            let chain = snapshot::load_chain(chain_dir.path());
            assert!(!chain.newer_corrupt);
            black_box(chain.chain_len)
        })
    });

    group.finish();
    record_bytes("full_bytes", full_bytes);
    record_bytes("delta_bytes", delta_bytes);
}

criterion_group!(benches, bench);
criterion_main!(benches);

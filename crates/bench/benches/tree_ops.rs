//! Criterion micro-bench: data-model tree operations (lookup, attribute
//! write, diff) at a ~10k-node scale — the per-action costs inside logical
//! simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tropic_model::{Node, Path, Tree};

fn build_tree(hosts: usize, vms: usize) -> Tree {
    let mut t = Tree::new();
    t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
        .unwrap();
    for h in 0..hosts {
        let hp = Path::parse(&format!("/vmRoot/host{h}")).unwrap();
        t.insert(
            &hp,
            Node::new("vmHost")
                .with_attr("memCapacity", 32_768i64)
                .with_attr("hypervisor", "xen"),
        )
        .unwrap();
        for v in 0..vms {
            t.insert(
                &hp.join(&format!("vm{v}")),
                Node::new("vm")
                    .with_attr("mem", 2_048i64)
                    .with_attr("state", "running"),
            )
            .unwrap();
        }
    }
    t
}

fn bench(c: &mut Criterion) {
    let tree = build_tree(1_000, 8);
    let deep = Path::parse("/vmRoot/host512/vm3").unwrap();
    let mut group = c.benchmark_group("tree_ops");
    group.sample_size(30);

    group.bench_function("get_deep_path_9k_nodes", |b| {
        b.iter(|| black_box(tree.get(black_box(&deep)).is_some()))
    });

    group.bench_function("set_attr", |b| {
        let mut t = tree.clone();
        b.iter(|| {
            t.set_attr(black_box(&deep), "state", "stopped").unwrap();
        })
    });

    group.bench_function("insert_remove_vm", |b| {
        let mut t = tree.clone();
        let p = Path::parse("/vmRoot/host0/vmx").unwrap();
        b.iter(|| {
            t.insert(&p, Node::new("vm").with_attr("mem", 1i64))
                .unwrap();
            t.remove(&p).unwrap();
        })
    });

    group.bench_function("diff_identical_9k_nodes", |b| {
        let other = tree.clone();
        b.iter(|| black_box(tree.diff(&other, &Path::root()).len()))
    });

    group.bench_function("diff_scoped_one_host", |b| {
        let mut other = tree.clone();
        other.set_attr(&deep, "state", "stopped").unwrap();
        let scope = Path::parse("/vmRoot/host512").unwrap();
        b.iter(|| black_box(tree.diff(&other, &scope).len()))
    });

    group.bench_function("snapshot_1k_hosts", |b| {
        b.iter(|| black_box(tree.to_snapshot().unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion micro-bench: multi-granularity lock manager — the paper notes
//! locking overhead is one of the constant per-transaction costs that keep
//! throughput independent of deployment scale (§6.1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tropic_core::{with_intentions, LockManager, LockMode};
use tropic_model::Path;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_manager");
    group.sample_size(30);

    let paths: Vec<Path> = (0..1_000)
        .map(|i| Path::parse(&format!("/vmRoot/host{i}/vm1")).unwrap())
        .collect();

    group.bench_function("acquire_release_write_with_intentions", |b| {
        let mut lm = LockManager::new();
        let mut i = 0usize;
        b.iter(|| {
            let reqs = with_intentions(&paths[i % paths.len()], LockMode::W);
            lm.try_acquire(1, black_box(&reqs)).unwrap();
            lm.release_all(1);
            i += 1;
        })
    });

    group.bench_function("conflict_detection_under_contention", |b| {
        let mut lm = LockManager::new();
        // 500 outstanding writers on distinct hosts.
        for (txn, path) in paths.iter().take(500).enumerate() {
            lm.try_acquire(txn as u64 + 10, &with_intentions(path, LockMode::W))
                .unwrap();
        }
        let contended = with_intentions(&paths[250], LockMode::W);
        b.iter(|| {
            let result = lm.try_acquire(9_999, black_box(&contended));
            black_box(result.is_err());
        })
    });

    group.bench_function("spawn_lock_footprint", |b| {
        // The lock set a spawnVM acquires: W on storage + W on host + the
        // constraint R locks, with intentions.
        let storage = Path::parse("/storageRoot/storage17").unwrap();
        let host = Path::parse("/vmRoot/host70").unwrap();
        let mut lm = LockManager::new();
        b.iter(|| {
            let mut reqs = with_intentions(&storage, LockMode::W);
            reqs.extend(with_intentions(&storage, LockMode::R));
            reqs.extend(with_intentions(&host, LockMode::W));
            reqs.extend(with_intentions(&host, LockMode::R));
            lm.try_acquire(1, black_box(&reqs)).unwrap();
            lm.release_all(1);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

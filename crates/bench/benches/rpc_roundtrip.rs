//! Criterion macro-bench: the submit→outcome round trip through the
//! network RPC frontend versus the linked-in client.
//!
//! Three variants quantify what the socket costs on the commit path:
//!
//! * `in_process`    — `TropicClient` submit + wait (the PR 4 baseline).
//! * `over_socket`   — the same transaction through `RemoteClient`: two
//!   framed envelopes per call (submit, then a server-side blocking wait).
//! * `batch_socket`  — a 16-request `submit_batch` over the socket, waits
//!   amortized; per-*transaction* time, the throughput shape.
//!
//! `ci.sh --bench-snapshot` records the means in `BENCH_rpc.json` and
//! gates `over_socket / in_process` under
//! `TROPIC_BENCH_MAX_RPC_OVERHEAD` (default 3×): the frontend may tax the
//! round trip, but never by more than the configured multiple.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tropic_core::{ExecMode, PlatformConfig, RemoteClient, Tropic, TxnRequest, TxnState};
use tropic_tcloud::TopologySpec;

const BATCH: usize = 16;

fn spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 64,
        storage_hosts: 16,
        routers: 0,
        storage_capacity_mb: 1_000_000_000,
        host_mem_mb: 1_000_000,
        ..Default::default()
    }
}

fn platform() -> Tropic {
    Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            checkpoint_every: 0,
            ..Default::default()
        },
        spec().service(),
        ExecMode::LogicalOnly,
    )
}

fn spawn_destroy_roundtrip(
    submit_wait: &mut dyn FnMut(TxnRequest) -> TxnState,
    spec: &TopologySpec,
    i: u64,
) {
    let host = (i % 64) as usize;
    let vm = format!("rpc{i}");
    let state = submit_wait(TxnRequest::new("spawnVM").args(spec.spawn_args(&vm, host, 2_048)));
    assert_eq!(state, TxnState::Committed);
    let state = submit_wait(
        TxnRequest::new("destroyVM")
            .arg(TopologySpec::host_path(host).to_string())
            .arg(vm.as_str())
            .arg(TopologySpec::storage_path(host / 4).to_string()),
    );
    assert_eq!(state, TxnState::Committed);
}

fn bench(c: &mut Criterion) {
    let spec = spec();
    let platform = platform();
    let server = platform.serve_rpc().expect("bind loopback");
    let local = platform.client();
    let remote = RemoteClient::connect(server.addr()).expect("connect");

    let mut group = c.benchmark_group("rpc_roundtrip");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(8));

    // Baseline first, so a snapshot always has the "before" number.
    let mut i = 0u64;
    group.bench_function("in_process", |b| {
        b.iter(|| {
            let mut submit_wait = |req: TxnRequest| {
                local
                    .submit_request(req)
                    .unwrap()
                    .wait_timeout(Duration::from_secs(60))
                    .unwrap()
                    .state
            };
            spawn_destroy_roundtrip(&mut submit_wait, &spec, i);
            i += 1;
        })
    });

    let mut j = 1_000_000u64;
    group.bench_function("over_socket", |b| {
        b.iter(|| {
            let mut submit_wait = |req: TxnRequest| {
                remote
                    .submit_request(req)
                    .unwrap()
                    .wait_timeout(Duration::from_secs(60))
                    .unwrap()
                    .state
            };
            spawn_destroy_roundtrip(&mut submit_wait, &spec, j);
            j += 1;
        })
    });

    // Batched submit: one atomic enqueue for BATCH spawns, then waits.
    // Reported per transaction so the number is comparable above.
    let mut k = 2_000_000u64;
    group.bench_function("batch_socket", |b| {
        b.iter(|| {
            let reqs: Vec<TxnRequest> = (0..BATCH as u64)
                .map(|n| {
                    let host = ((k + n) % 64) as usize;
                    TxnRequest::new("spawnVM").args(spec.spawn_args(
                        &format!("rpcb{}", k + n),
                        host,
                        2_048,
                    ))
                })
                .collect();
            let handles = remote.submit_batch(reqs).unwrap();
            let destroys: Vec<TxnRequest> = (0..BATCH as u64)
                .map(|n| {
                    let host = ((k + n) % 64) as usize;
                    TxnRequest::new("destroyVM")
                        .arg(TopologySpec::host_path(host).to_string())
                        .arg(format!("rpcb{}", k + n))
                        .arg(TopologySpec::storage_path(host / 4).to_string())
                })
                .collect();
            for h in &handles {
                let o = h.wait_timeout(Duration::from_secs(60)).unwrap();
                assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
            }
            let handles = remote.submit_batch(destroys).unwrap();
            for h in &handles {
                let o = h.wait_timeout(Duration::from_secs(60)).unwrap();
                assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
            }
            k += BATCH as u64;
        })
    });

    group.finish();
    server.stop();
    platform.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion macro-bench: the submit→outcome round trip through the
//! network RPC frontend versus the linked-in client.
//!
//! Three variants quantify what the socket costs on the commit path:
//!
//! * `in_process`    — `TropicClient` submits + waits (the PR 4 baseline).
//! * `over_socket`   — the same transactions through `RemoteClient`: two
//!   framed envelopes per call (submit, then a server-side blocking wait).
//! * `batch_socket`  — a 16-request `submit_batch` over the socket, one
//!   atomic enqueue per batch; the throughput shape.
//!
//! Both `in_process` and `over_socket` drive an *identical* pipelined
//! window: submit `WINDOW` spawns, wait for all, submit `WINDOW` destroys,
//! wait for all. A single submit→wait pair per iteration measured mostly
//! controller scheduling-round alignment (the txn idles in `inputQ` until
//! the next round fires), which once inverted the two numbers and made the
//! overhead gate vacuous; the window amortizes that quantization equally
//! on both sides, so the difference between the two means is the per-txn
//! transport cost and nothing else.
//!
//! A fourth variant measures the reactor's scale-out claim directly:
//!
//! * `concurrent_connections` — `TROPIC_BENCH_MIN_CONNS` (default 1 000)
//!   idle streaming subscriptions are opened and **held live** on the one
//!   event loop, then the ping round trip is timed under that load. The
//!   held count is appended to the `TROPIC_BENCH_JSON` stream as the
//!   `rpc_roundtrip/live_connections` row.
//!
//! `ci.sh --bench-snapshot` records the means in `BENCH_rpc.json` (per
//! transaction: 2×`WINDOW` txns per iteration for the first two variants,
//! 2×`BATCH` for the third), gates `over_socket / in_process` under
//! `TROPIC_BENCH_MAX_RPC_OVERHEAD`, and gates the held connection count
//! at `TROPIC_BENCH_MIN_CONNS`: the frontend may tax the round trip, but
//! never by more than the configured multiple, and it must genuinely
//! sustain the configured connection fan-in.

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use tropic_coord::{write_frame, FrameReader};
use tropic_core::rpc::{decode_response, encode_request, RpcRequest, RpcResponse};
use tropic_core::{ExecMode, PlatformConfig, RemoteClient, Tropic, TxnRequest, TxnState};
use tropic_tcloud::TopologySpec;

const BATCH: usize = 16;
/// In-flight submissions per wave in the `in_process`/`over_socket`
/// drivers. Keep `ci.sh`'s `pipeline_txns` (= 2×WINDOW) in step.
const WINDOW: usize = 8;

fn spec() -> TopologySpec {
    TopologySpec {
        compute_hosts: 64,
        storage_hosts: 16,
        routers: 0,
        storage_capacity_mb: 1_000_000_000,
        host_mem_mb: 1_000_000,
        ..Default::default()
    }
}

fn platform() -> Tropic {
    Tropic::start(
        PlatformConfig {
            controllers: 1,
            workers: 1,
            checkpoint_every: 0,
            ..Default::default()
        },
        spec().service(),
        ExecMode::LogicalOnly,
    )
}

fn spawn_request(spec: &TopologySpec, i: u64) -> TxnRequest {
    let host = (i % 64) as usize;
    TxnRequest::new("spawnVM").args(spec.spawn_args(&format!("rpc{i}"), host, 2_048))
}

fn destroy_request(i: u64) -> TxnRequest {
    let host = (i % 64) as usize;
    TxnRequest::new("destroyVM")
        .arg(TopologySpec::host_path(host).to_string())
        .arg(format!("rpc{i}"))
        .arg(TopologySpec::storage_path(host / 4).to_string())
}

/// Opens `n` raw streaming subscriptions (socket + `Subscribe` handshake,
/// no client-side threads) and returns them; they stay attached to the
/// server's event loop for as long as the vec lives.
fn hold_subscriptions(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        let mut stream = TcpStream::connect(addr).expect("connect subscription");
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("read timeout");
        write_frame(
            &mut stream,
            &encode_request(RpcRequest::Subscribe).expect("encode"),
        )
        .expect("send Subscribe");
        let mut reader = FrameReader::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match reader.read_from(&mut stream, 4 << 20) {
                Ok(Some(payload)) => match decode_response(&payload).expect("v1 response") {
                    RpcResponse::Subscribed => break,
                    other => panic!("conn {i}: unexpected {other:?}"),
                },
                Ok(None) => assert!(
                    std::time::Instant::now() < deadline,
                    "conn {i}: no Subscribed ack within 10s"
                ),
                Err(e) => panic!("conn {i}: {e}"),
            }
        }
        held.push(stream);
    }
    held
}

/// Appends the held-connection count to the `TROPIC_BENCH_JSON` stream in
/// the same one-line shape the criterion shim emits, so `ci.sh` can gate
/// on it without a second output channel.
fn record_live_connections(held: usize) {
    let Some(path) = std::env::var_os("TROPIC_BENCH_JSON") else {
        return;
    };
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(
            f,
            "{{\"name\":\"rpc_roundtrip/live_connections\",\"mean_ns\":{held},\"iterations\":{held}}}"
        );
    }
}

/// One pipelined wave: submit every request (each its own submit call on
/// the driver under test), then wait every outcome to Committed.
fn run_wave<H>(
    submit: &mut impl FnMut(TxnRequest) -> H,
    wait: &mut impl FnMut(H) -> TxnState,
    reqs: Vec<TxnRequest>,
) {
    let handles: Vec<H> = reqs.into_iter().map(&mut *submit).collect();
    for h in handles {
        assert_eq!(wait(h), TxnState::Committed);
    }
}

fn bench(c: &mut Criterion) {
    let spec = spec();
    let platform = platform();
    let server = platform.serve_rpc().expect("bind loopback");
    let local = platform.client();
    let remote = RemoteClient::connect(server.addr()).expect("connect");

    let mut group = c.benchmark_group("rpc_roundtrip");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(8));

    // Baseline first, so a snapshot always has the "before" number.
    let mut i = 0u64;
    group.bench_function("in_process", |b| {
        b.iter(|| {
            let mut submit = |req: TxnRequest| local.submit_request(req).unwrap();
            let mut wait =
                |h: tropic_core::TxnHandle| h.wait_timeout(Duration::from_secs(60)).unwrap().state;
            let base = i;
            run_wave(
                &mut submit,
                &mut wait,
                (0..WINDOW as u64)
                    .map(|n| spawn_request(&spec, base + n))
                    .collect(),
            );
            run_wave(
                &mut submit,
                &mut wait,
                (0..WINDOW as u64)
                    .map(|n| destroy_request(base + n))
                    .collect(),
            );
            i += WINDOW as u64;
        })
    });

    let mut j = 1_000_000u64;
    group.bench_function("over_socket", |b| {
        b.iter(|| {
            let mut submit = |req: TxnRequest| remote.submit_request(req).unwrap();
            let mut wait = |h: tropic_core::RemoteHandle<'_>| {
                h.wait_timeout(Duration::from_secs(60)).unwrap().state
            };
            let base = j;
            run_wave(
                &mut submit,
                &mut wait,
                (0..WINDOW as u64)
                    .map(|n| spawn_request(&spec, base + n))
                    .collect(),
            );
            run_wave(
                &mut submit,
                &mut wait,
                (0..WINDOW as u64)
                    .map(|n| destroy_request(base + n))
                    .collect(),
            );
            j += WINDOW as u64;
        })
    });

    // Batched submit: one atomic enqueue for BATCH spawns, then waits.
    let mut k = 2_000_000u64;
    group.bench_function("batch_socket", |b| {
        b.iter(|| {
            let reqs: Vec<TxnRequest> = (0..BATCH as u64)
                .map(|n| spawn_request(&spec, k + n))
                .collect();
            let handles = remote.submit_batch(reqs).unwrap();
            for h in &handles {
                let o = h.wait_timeout(Duration::from_secs(60)).unwrap();
                assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
            }
            let destroys: Vec<TxnRequest> =
                (0..BATCH as u64).map(|n| destroy_request(k + n)).collect();
            let handles = remote.submit_batch(destroys).unwrap();
            for h in &handles {
                let o = h.wait_timeout(Duration::from_secs(60)).unwrap();
                assert_eq!(o.state, TxnState::Committed, "{:?}", o.error);
            }
            k += BATCH as u64;
        })
    });

    // Scale-out dimension: the same ping round trip, but with a large
    // idle subscription set attached to the one event loop. Under the
    // old thread-per-connection server this many streams meant this many
    // threads; the reactor must hold them as file descriptors only and
    // keep the request path interactive.
    let min_conns: usize = std::env::var("TROPIC_BENCH_MIN_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let held = hold_subscriptions(server.addr(), min_conns);
    group.bench_function("concurrent_connections", |b| {
        b.iter(|| {
            remote.ping().expect("ping under connection load");
        })
    });
    record_live_connections(held.len());
    drop(held);

    group.finish();
    server.stop();
    platform.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);

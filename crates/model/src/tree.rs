//! The logical data model tree: path-addressed operations, diffing, and
//! snapshots.
//!
//! The controller keeps one [`Tree`] as the logical layer (paper §2.2); each
//! worker-side device exports its state as a subtree of the same shape so the
//! two layers can be compared during reconciliation (paper §4).

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, ModelResult};
use crate::node::Node;
use crate::path::Path;
use crate::value::Value;

/// A hierarchical data model instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    root: Node,
}

/// One difference between two trees, produced by [`Tree::diff`].
///
/// Diffs drive the `repair` reconciliation mechanism: each entry is matched
/// against repair rules that emit corrective physical actions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DiffEntry {
    /// A node present in `other` but absent in `self`.
    NodeAdded {
        /// Path of the node.
        path: Path,
        /// Entity type of the added node.
        entity: String,
    },
    /// A node present in `self` but absent in `other`.
    NodeRemoved {
        /// Path of the node.
        path: Path,
        /// Entity type of the removed node.
        entity: String,
    },
    /// A node present in both trees but with different entity types.
    EntityChanged {
        /// Path of the node.
        path: Path,
        /// Entity type in `self`.
        left: String,
        /// Entity type in `other`.
        right: String,
    },
    /// An attribute differing between the two trees.
    AttrChanged {
        /// Path of the node holding the attribute.
        path: Path,
        /// Attribute name.
        attr: String,
        /// Value in `self` (`None` = absent).
        left: Option<Value>,
        /// Value in `other` (`None` = absent).
        right: Option<Value>,
    },
}

impl DiffEntry {
    /// The path this difference applies to.
    pub fn path(&self) -> &Path {
        match self {
            DiffEntry::NodeAdded { path, .. }
            | DiffEntry::NodeRemoved { path, .. }
            | DiffEntry::EntityChanged { path, .. }
            | DiffEntry::AttrChanged { path, .. } => path,
        }
    }
}

impl Default for Tree {
    fn default() -> Self {
        Tree::new()
    }
}

impl Tree {
    /// Creates an empty tree whose root is an entity of type `"root"`.
    pub fn new() -> Self {
        Tree {
            root: Node::new("root"),
        }
    }

    /// Creates a tree from an existing root node.
    pub fn from_root(root: Node) -> Self {
        Tree { root }
    }

    /// Immutable access to the root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Looks up the node at `path`.
    pub fn get(&self, path: &Path) -> Option<&Node> {
        let mut cur = &self.root;
        for seg in path.segments() {
            cur = cur.child(seg)?;
        }
        Some(cur)
    }

    /// Looks up the node at `path` mutably.
    pub fn get_mut(&mut self, path: &Path) -> Option<&mut Node> {
        let mut cur = &mut self.root;
        for seg in path.segments() {
            cur = cur.child_mut(seg)?;
        }
        Some(cur)
    }

    /// Returns `true` if a node exists at `path`.
    pub fn exists(&self, path: &Path) -> bool {
        self.get(path).is_some()
    }

    /// Looks up a node, returning a [`ModelError::NoSuchPath`] when absent.
    pub fn require(&self, path: &Path) -> ModelResult<&Node> {
        self.get(path)
            .ok_or_else(|| ModelError::NoSuchPath(path.clone()))
    }

    /// Looks up a node mutably, returning an error when absent.
    pub fn require_mut(&mut self, path: &Path) -> ModelResult<&mut Node> {
        if self.get(path).is_none() {
            return Err(ModelError::NoSuchPath(path.clone()));
        }
        Ok(self.get_mut(path).expect("checked above"))
    }

    /// Inserts `node` at `path`. The parent must exist and the slot must be
    /// free; inserting at the root is rejected.
    pub fn insert(&mut self, path: &Path, node: Node) -> ModelResult<()> {
        let name = path.leaf().ok_or(ModelError::RootImmutable)?.to_owned();
        let parent_path = path.parent().expect("non-root path has a parent");
        let parent = self
            .get_mut(&parent_path)
            .ok_or(ModelError::ParentMissing(path.clone()))?;
        if parent.has_child(&name) {
            return Err(ModelError::DuplicateNode(path.clone()));
        }
        parent.insert_child(name, node);
        Ok(())
    }

    /// Removes and returns the node at `path`. Removing the root is rejected.
    pub fn remove(&mut self, path: &Path) -> ModelResult<Node> {
        let name = path.leaf().ok_or(ModelError::RootImmutable)?.to_owned();
        let parent_path = path.parent().expect("non-root path has a parent");
        let parent = self
            .get_mut(&parent_path)
            .ok_or_else(|| ModelError::NoSuchPath(path.clone()))?;
        parent
            .remove_child(&name)
            .ok_or_else(|| ModelError::NoSuchPath(path.clone()))
    }

    /// Replaces the subtree at `path` with `node`, returning the old subtree.
    /// Replacing the root is allowed and swaps the whole tree; this is how
    /// `reload` installs freshly-retrieved device state.
    pub fn replace(&mut self, path: &Path, node: Node) -> ModelResult<Node> {
        if path.is_root() {
            return Ok(std::mem::replace(&mut self.root, node));
        }
        let target = self
            .get_mut(path)
            .ok_or_else(|| ModelError::NoSuchPath(path.clone()))?;
        Ok(std::mem::replace(target, node))
    }

    /// Reads an attribute at a path.
    pub fn attr(&self, path: &Path, key: &str) -> Option<&Value> {
        self.get(path).and_then(|n| n.attr(key))
    }

    /// Reads a required integer attribute.
    pub fn attr_int(&self, path: &Path, key: &str) -> ModelResult<i64> {
        self.require(path)?
            .attr_int(key)
            .ok_or_else(|| ModelError::AttrType {
                path: path.clone(),
                attr: key.to_owned(),
                expected: "int",
            })
    }

    /// Reads a required string attribute.
    pub fn attr_str(&self, path: &Path, key: &str) -> ModelResult<String> {
        self.require(path)?
            .attr_str(key)
            .map(str::to_owned)
            .ok_or_else(|| ModelError::AttrType {
                path: path.clone(),
                attr: key.to_owned(),
                expected: "str",
            })
    }

    /// Sets an attribute at `path`, returning the previous value.
    pub fn set_attr(
        &mut self,
        path: &Path,
        key: impl Into<String>,
        value: impl Into<Value>,
    ) -> ModelResult<Option<Value>> {
        Ok(self.require_mut(path)?.set_attr(key, value))
    }

    /// Removes an attribute at `path`, returning the previous value.
    pub fn remove_attr(&mut self, path: &Path, key: &str) -> ModelResult<Option<Value>> {
        Ok(self.require_mut(path)?.remove_attr(key))
    }

    /// Names of the children of the node at `path`.
    pub fn children_of(&self, path: &Path) -> ModelResult<Vec<String>> {
        Ok(self
            .require(path)?
            .children()
            .map(|(name, _)| name.to_owned())
            .collect())
    }

    /// Total node count of the tree.
    pub fn node_count(&self) -> usize {
        self.root.subtree_size()
    }

    /// Approximate memory footprint in bytes (§6.1 experiment).
    pub fn approx_size(&self) -> usize {
        self.root.approx_size()
    }

    /// Depth-first, pre-order traversal of `(path, node)` pairs.
    pub fn walk(&self) -> Vec<(Path, &Node)> {
        let mut out = Vec::new();
        Self::walk_rec(Path::root(), &self.root, &mut out);
        out
    }

    fn walk_rec<'a>(path: Path, node: &'a Node, out: &mut Vec<(Path, &'a Node)>) {
        out.push((path.clone(), node));
        for (name, child) in node.children() {
            Self::walk_rec(path.join(name), child, out);
        }
    }

    /// Paths of all nodes whose entity type is `entity`.
    pub fn find_entity(&self, entity: &str) -> Vec<Path> {
        self.walk()
            .into_iter()
            .filter(|(_, n)| n.entity() == entity)
            .map(|(p, _)| p)
            .collect()
    }

    /// Marks (or clears) the inconsistency flag on a node (paper §4). The
    /// flag denies transactions on the node and its whole subtree — see
    /// [`Tree::is_inconsistent`].
    pub fn mark_inconsistent(&mut self, path: &Path, flag: bool) -> ModelResult<()> {
        self.require_mut(path)?.set_inconsistent(flag);
        Ok(())
    }

    /// Returns `true` if the node at `path` or any ancestor is marked
    /// inconsistent. Missing paths are treated as consistent.
    pub fn is_inconsistent(&self, path: &Path) -> bool {
        let mut cur = &self.root;
        if cur.is_inconsistent() {
            return true;
        }
        for seg in path.segments() {
            match cur.child(seg) {
                Some(child) => {
                    cur = child;
                    if cur.is_inconsistent() {
                        return true;
                    }
                }
                None => return false,
            }
        }
        false
    }

    /// Serializes the tree to a JSON snapshot for checkpointing into the
    /// coordination store.
    pub fn to_snapshot(&self) -> ModelResult<String> {
        serde_json::to_string(&self.root).map_err(|e| ModelError::Serde(e.to_string()))
    }

    /// Restores a tree from a snapshot produced by [`Tree::to_snapshot`].
    pub fn from_snapshot(snapshot: &str) -> ModelResult<Tree> {
        let root: Node =
            serde_json::from_str(snapshot).map_err(|e| ModelError::Serde(e.to_string()))?;
        Ok(Tree { root })
    }

    /// Structural diff between `self` (e.g. the physical layer) and `other`
    /// (e.g. the logical layer), scoped to the subtree at `scope`.
    ///
    /// Reported relative to `self`: `NodeAdded` means the node exists only in
    /// `other`, `NodeRemoved` only in `self`.
    pub fn diff(&self, other: &Tree, scope: &Path) -> Vec<DiffEntry> {
        let mut out = Vec::new();
        match (self.get(scope), other.get(scope)) {
            (Some(a), Some(b)) => Self::diff_rec(scope.clone(), a, b, &mut out),
            (Some(a), None) => out.push(DiffEntry::NodeRemoved {
                path: scope.clone(),
                entity: a.entity().to_owned(),
            }),
            (None, Some(b)) => out.push(DiffEntry::NodeAdded {
                path: scope.clone(),
                entity: b.entity().to_owned(),
            }),
            (None, None) => {}
        }
        out
    }

    fn diff_rec(path: Path, left: &Node, right: &Node, out: &mut Vec<DiffEntry>) {
        if left.entity() != right.entity() {
            out.push(DiffEntry::EntityChanged {
                path: path.clone(),
                left: left.entity().to_owned(),
                right: right.entity().to_owned(),
            });
            // Entity mismatch makes attribute comparison meaningless; the
            // node pair is still descended so child drift is reported.
        }
        for (key, lv) in left.attrs() {
            match right.attr(key) {
                Some(rv) if rv == lv => {}
                rv => out.push(DiffEntry::AttrChanged {
                    path: path.clone(),
                    attr: key.to_owned(),
                    left: Some(lv.clone()),
                    right: rv.cloned(),
                }),
            }
        }
        for (key, rv) in right.attrs() {
            if left.attr(key).is_none() {
                out.push(DiffEntry::AttrChanged {
                    path: path.clone(),
                    attr: key.to_owned(),
                    left: None,
                    right: Some(rv.clone()),
                });
            }
        }
        for (name, lchild) in left.children() {
            match right.child(name) {
                Some(rchild) => Self::diff_rec(path.join(name), lchild, rchild, out),
                None => out.push(DiffEntry::NodeRemoved {
                    path: path.join(name),
                    entity: lchild.entity().to_owned(),
                }),
            }
        }
        for (name, rchild) in right.children() {
            if left.child(name).is_none() {
                out.push(DiffEntry::NodeAdded {
                    path: path.join(name),
                    entity: rchild.entity().to_owned(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        t.insert(
            &Path::parse("/vmRoot/host1").unwrap(),
            Node::new("vmHost").with_attr("memCapacity", 32768i64),
        )
        .unwrap();
        t.insert(
            &Path::parse("/vmRoot/host1/vm1").unwrap(),
            Node::new("vm")
                .with_attr("state", "running")
                .with_attr("mem", 2048i64),
        )
        .unwrap();
        t
    }

    #[test]
    fn insert_get_remove() {
        let mut t = sample();
        let p = Path::parse("/vmRoot/host1/vm1").unwrap();
        assert!(t.exists(&p));
        assert_eq!(t.get(&p).unwrap().attr_str("state"), Some("running"));
        let removed = t.remove(&p).unwrap();
        assert_eq!(removed.attr_int("mem"), Some(2048));
        assert!(!t.exists(&p));
        assert!(matches!(t.remove(&p), Err(ModelError::NoSuchPath(_))));
    }

    #[test]
    fn insert_requires_parent() {
        let mut t = Tree::new();
        let deep = Path::parse("/a/b").unwrap();
        assert!(matches!(
            t.insert(&deep, Node::new("x")),
            Err(ModelError::ParentMissing(_))
        ));
    }

    #[test]
    fn insert_rejects_duplicate_and_root() {
        let mut t = sample();
        assert!(matches!(
            t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot")),
            Err(ModelError::DuplicateNode(_))
        ));
        assert!(matches!(
            t.insert(&Path::root(), Node::new("root")),
            Err(ModelError::RootImmutable)
        ));
    }

    #[test]
    fn attr_ops() {
        let mut t = sample();
        let p = Path::parse("/vmRoot/host1/vm1").unwrap();
        assert_eq!(t.attr_int(&p, "mem").unwrap(), 2048);
        assert_eq!(t.attr_str(&p, "state").unwrap(), "running");
        assert!(t.attr_int(&p, "state").is_err());
        assert!(t.attr_int(&p, "absent").is_err());
        let old = t.set_attr(&p, "state", "stopped").unwrap();
        assert_eq!(old, Some(Value::Str("running".into())));
        assert_eq!(t.attr_str(&p, "state").unwrap(), "stopped");
        assert_eq!(t.remove_attr(&p, "mem").unwrap(), Some(Value::Int(2048)));
    }

    #[test]
    fn walk_and_find() {
        let t = sample();
        let walked = t.walk();
        assert_eq!(walked.len(), 4);
        assert_eq!(walked[0].0, Path::root());
        let vms = t.find_entity("vm");
        assert_eq!(vms, vec![Path::parse("/vmRoot/host1/vm1").unwrap()]);
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn replace_subtree_and_root() {
        let mut t = sample();
        let p = Path::parse("/vmRoot/host1").unwrap();
        let old = t.replace(&p, Node::new("vmHost")).unwrap();
        assert_eq!(old.child_count(), 1);
        assert_eq!(t.get(&p).unwrap().child_count(), 0);
        let old_root = t.replace(&Path::root(), Node::new("root")).unwrap();
        assert!(old_root.has_child("vmRoot"));
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn inconsistency_propagates_to_descendants() {
        let mut t = sample();
        let host = Path::parse("/vmRoot/host1").unwrap();
        let vm = Path::parse("/vmRoot/host1/vm1").unwrap();
        assert!(!t.is_inconsistent(&vm));
        t.mark_inconsistent(&host, true).unwrap();
        assert!(t.is_inconsistent(&host));
        assert!(t.is_inconsistent(&vm));
        assert!(!t.is_inconsistent(&Path::parse("/vmRoot").unwrap()));
        t.mark_inconsistent(&host, false).unwrap();
        assert!(!t.is_inconsistent(&vm));
    }

    #[test]
    fn snapshot_roundtrip() {
        let t = sample();
        let snap = t.to_snapshot().unwrap();
        let back = Tree::from_snapshot(&snap).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn diff_identical_is_empty() {
        let t = sample();
        assert!(t.diff(&t.clone(), &Path::root()).is_empty());
    }

    #[test]
    fn diff_detects_attr_change() {
        let a = sample();
        let mut b = sample();
        let vm = Path::parse("/vmRoot/host1/vm1").unwrap();
        b.set_attr(&vm, "state", "stopped").unwrap();
        let d = a.diff(&b, &Path::root());
        assert_eq!(d.len(), 1);
        match &d[0] {
            DiffEntry::AttrChanged {
                path,
                attr,
                left,
                right,
            } => {
                assert_eq!(path, &vm);
                assert_eq!(attr, "state");
                assert_eq!(left.as_ref().unwrap().as_str(), Some("running"));
                assert_eq!(right.as_ref().unwrap().as_str(), Some("stopped"));
            }
            other => panic!("unexpected diff entry {other:?}"),
        }
    }

    #[test]
    fn diff_detects_added_and_removed_nodes() {
        let a = sample();
        let mut b = sample();
        let vm2 = Path::parse("/vmRoot/host1/vm2").unwrap();
        b.insert(&vm2, Node::new("vm")).unwrap();
        b.remove(&Path::parse("/vmRoot/host1/vm1").unwrap())
            .unwrap();
        let d = a.diff(&b, &Path::root());
        assert_eq!(d.len(), 2);
        assert!(d
            .iter()
            .any(|e| matches!(e, DiffEntry::NodeAdded { path, .. } if path == &vm2)));
        assert!(d.iter().any(
            |e| matches!(e, DiffEntry::NodeRemoved { path, .. } if path.leaf() == Some("vm1"))
        ));
    }

    #[test]
    fn diff_scoped() {
        let a = sample();
        let mut b = sample();
        b.set_attr(&Path::parse("/vmRoot/host1").unwrap(), "x", 1i64)
            .unwrap();
        // Outside the scope nothing is reported.
        let storage_scope = Path::parse("/storageRoot").unwrap();
        assert!(a.diff(&b, &storage_scope).is_empty());
        let host_scope = Path::parse("/vmRoot/host1").unwrap();
        assert_eq!(a.diff(&b, &host_scope).len(), 1);
    }

    #[test]
    fn diff_detects_entity_change() {
        let a = sample();
        let mut b = sample();
        let host = Path::parse("/vmRoot/host1").unwrap();
        let mut replacement = Node::new("storageHost").with_attr("memCapacity", 32768i64);
        replacement.insert_child(
            "vm1",
            Node::new("vm")
                .with_attr("state", "running")
                .with_attr("mem", 2048i64),
        );
        b.replace(&host, replacement).unwrap();
        let d = a.diff(&b, &Path::root());
        assert_eq!(d.len(), 1);
        assert!(matches!(&d[0], DiffEntry::EntityChanged { .. }));
    }

    #[test]
    fn approx_size_positive_and_monotone() {
        let small = Tree::new().approx_size();
        let big = sample().approx_size();
        assert!(big > small);
    }
}

//! Entity schemas: the typed skeleton of the semi-structured data model.
//!
//! Each tree node is an instance of an *entity* (paper §2.2). An
//! [`EntitySchema`] declares the attributes an entity carries and which
//! entity types may appear as its children. A [`SchemaRegistry`] validates
//! whole trees, which TROPIC uses when loading topologies and when `reload`
//! installs device state into the logical layer.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, ModelResult};
use crate::path::Path;
use crate::tree::Tree;
use crate::value::Value;

/// The declared type of an attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrType {
    /// Boolean attribute.
    Bool,
    /// Integer attribute.
    Int,
    /// Float attribute (integers are accepted and widened).
    Float,
    /// String attribute.
    Str,
    /// List attribute.
    List,
    /// Map attribute.
    Map,
    /// Any value type accepted.
    Any,
}

impl AttrType {
    /// Returns `true` if `value` conforms to this attribute type.
    pub fn admits(&self, value: &Value) -> bool {
        match self {
            AttrType::Bool => matches!(value, Value::Bool(_)),
            AttrType::Int => matches!(value, Value::Int(_)),
            AttrType::Float => matches!(value, Value::Float(_) | Value::Int(_)),
            AttrType::Str => matches!(value, Value::Str(_)),
            AttrType::List => matches!(value, Value::List(_)),
            AttrType::Map => matches!(value, Value::Map(_)),
            AttrType::Any => true,
        }
    }
}

/// Declaration of a single attribute within an entity schema.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttrSchema {
    /// Attribute value type.
    pub ty: AttrType,
    /// Whether the attribute must be present on every instance.
    pub required: bool,
    /// Default value applied by [`SchemaRegistry::apply_defaults`].
    pub default: Option<Value>,
}

/// Schema for one entity type.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EntitySchema {
    name: String,
    attrs: BTreeMap<String, AttrSchema>,
    child_entities: Vec<String>,
    description: String,
}

impl EntitySchema {
    /// Creates an empty schema for entity type `name`.
    pub fn new(name: impl Into<String>) -> Self {
        EntitySchema {
            name: name.into(),
            attrs: BTreeMap::new(),
            child_entities: Vec::new(),
            description: String::new(),
        }
    }

    /// Adds a human-readable description.
    pub fn describe(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }

    /// Declares a required attribute.
    pub fn required(mut self, name: impl Into<String>, ty: AttrType) -> Self {
        self.attrs.insert(
            name.into(),
            AttrSchema {
                ty,
                required: true,
                default: None,
            },
        );
        self
    }

    /// Declares an optional attribute.
    pub fn optional(mut self, name: impl Into<String>, ty: AttrType) -> Self {
        self.attrs.insert(
            name.into(),
            AttrSchema {
                ty,
                required: false,
                default: None,
            },
        );
        self
    }

    /// Declares an optional attribute with a default value.
    pub fn with_default(
        mut self,
        name: impl Into<String>,
        ty: AttrType,
        default: impl Into<Value>,
    ) -> Self {
        self.attrs.insert(
            name.into(),
            AttrSchema {
                ty,
                required: false,
                default: Some(default.into()),
            },
        );
        self
    }

    /// Declares an allowed child entity type.
    pub fn child(mut self, entity: impl Into<String>) -> Self {
        self.child_entities.push(entity.into());
        self
    }

    /// The entity type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Declared attributes.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &AttrSchema)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Returns `true` if `entity` is an allowed child entity type.
    pub fn allows_child(&self, entity: &str) -> bool {
        self.child_entities.iter().any(|e| e == entity)
    }
}

/// A collection of entity schemas validating trees.
#[derive(Clone, Debug, Default)]
pub struct SchemaRegistry {
    schemas: BTreeMap<String, EntitySchema>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a schema, replacing any previous schema of the same name.
    pub fn register(&mut self, schema: EntitySchema) {
        self.schemas.insert(schema.name().to_owned(), schema);
    }

    /// Looks up the schema for an entity type.
    pub fn get(&self, entity: &str) -> Option<&EntitySchema> {
        self.schemas.get(entity)
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Returns `true` if no schemas are registered.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Validates every node of `tree` against its entity schema.
    ///
    /// Nodes whose entity type has no registered schema are accepted: the
    /// model is semi-structured, and schemas constrain only what they
    /// declare. Declared attributes must type-check, required attributes
    /// must be present, and children must be of allowed entity types.
    pub fn validate(&self, tree: &Tree) -> ModelResult<()> {
        for (path, node) in tree.walk() {
            let Some(schema) = self.get(node.entity()) else {
                continue;
            };
            for (attr_name, attr_schema) in schema.attrs() {
                match node.attr(attr_name) {
                    Some(v) if !attr_schema.ty.admits(v) => {
                        return Err(ModelError::SchemaViolation(format!(
                            "{path}: attribute `{attr_name}` has type {}, schema expects {:?}",
                            v.type_name(),
                            attr_schema.ty
                        )));
                    }
                    Some(_) => {}
                    None if attr_schema.required => {
                        return Err(ModelError::SchemaViolation(format!(
                            "{path}: required attribute `{attr_name}` missing on entity `{}`",
                            node.entity()
                        )));
                    }
                    None => {}
                }
            }
            for (child_name, child) in node.children() {
                if !schema.allows_child(child.entity()) {
                    return Err(ModelError::SchemaViolation(format!(
                        "{path}: child `{child_name}` has entity `{}`, not allowed under `{}`",
                        child.entity(),
                        node.entity()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Fills in schema defaults for attributes absent from nodes. Returns
    /// the number of attributes that were defaulted.
    pub fn apply_defaults(&self, tree: &mut Tree) -> usize {
        let mut targets: Vec<(Path, String, Value)> = Vec::new();
        for (path, node) in tree.walk() {
            let Some(schema) = self.get(node.entity()) else {
                continue;
            };
            for (attr_name, attr_schema) in schema.attrs() {
                if node.attr(attr_name).is_none() {
                    if let Some(default) = &attr_schema.default {
                        targets.push((path.clone(), attr_name.to_owned(), default.clone()));
                    }
                }
            }
        }
        let count = targets.len();
        for (path, attr, value) in targets {
            // Paths were collected from a walk of this same tree; they exist.
            let _ = tree.set_attr(&path, attr, value);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(EntitySchema::new("root").child("vmRoot"));
        reg.register(EntitySchema::new("vmRoot").child("vmHost"));
        reg.register(
            EntitySchema::new("vmHost")
                .describe("A compute server")
                .required("memCapacity", AttrType::Int)
                .with_default("hypervisor", AttrType::Str, "xen")
                .child("vm"),
        );
        reg.register(
            EntitySchema::new("vm")
                .required("state", AttrType::Str)
                .required("mem", AttrType::Int),
        );
        reg
    }

    fn valid_tree() -> Tree {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h1").unwrap(),
            Node::new("vmHost").with_attr("memCapacity", 32768i64),
        )
        .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h1/vm1").unwrap(),
            Node::new("vm")
                .with_attr("state", "stopped")
                .with_attr("mem", 1024i64),
        )
        .unwrap();
        t
    }

    #[test]
    fn valid_tree_passes() {
        registry().validate(&valid_tree()).unwrap();
    }

    #[test]
    fn missing_required_attr_fails() {
        let mut t = valid_tree();
        t.remove_attr(&Path::parse("/vmRoot/h1/vm1").unwrap(), "state")
            .unwrap();
        let err = registry().validate(&t).unwrap_err();
        assert!(err.to_string().contains("state"));
    }

    #[test]
    fn wrong_attr_type_fails() {
        let mut t = valid_tree();
        t.set_attr(&Path::parse("/vmRoot/h1").unwrap(), "memCapacity", "lots")
            .unwrap();
        assert!(registry().validate(&t).is_err());
    }

    #[test]
    fn disallowed_child_fails() {
        let mut t = valid_tree();
        t.insert(
            &Path::parse("/vmRoot/h1/disk1").unwrap(),
            Node::new("volume"),
        )
        .unwrap();
        let err = registry().validate(&t).unwrap_err();
        assert!(err.to_string().contains("volume"));
    }

    #[test]
    fn unknown_entities_accepted() {
        let mut t = valid_tree();
        t.insert(
            &Path::parse("/extraRoot").unwrap(),
            Node::new("unregisteredEntity"),
        )
        .unwrap();
        // Root schema does not allow `unregisteredEntity` as a child.
        assert!(registry().validate(&t).is_err());
        // But without a root schema it passes.
        let mut reg = registry();
        reg.register(
            EntitySchema::new("root")
                .child("vmRoot")
                .child("unregisteredEntity"),
        );
        reg.validate(&t).unwrap();
    }

    #[test]
    fn defaults_applied() {
        let mut t = valid_tree();
        let reg = registry();
        let n = reg.apply_defaults(&mut t);
        assert_eq!(n, 1);
        assert_eq!(
            t.attr_str(&Path::parse("/vmRoot/h1").unwrap(), "hypervisor")
                .unwrap(),
            "xen"
        );
        // Idempotent.
        assert_eq!(reg.apply_defaults(&mut t), 0);
    }

    #[test]
    fn float_admits_int() {
        assert!(AttrType::Float.admits(&Value::Int(3)));
        assert!(AttrType::Float.admits(&Value::Float(3.5)));
        assert!(!AttrType::Int.admits(&Value::Float(3.5)));
        assert!(AttrType::Any.admits(&Value::Null));
    }
}

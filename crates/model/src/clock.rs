//! Time abstraction shared by the coordination service, the platform, and
//! the experiment harnesses.
//!
//! The paper's wall-clock quantities (1-hour traces, 10-second heartbeat
//! intervals) are impractical in a test suite, so every time-dependent
//! component reads time through a [`Clock`]. Experiments run on the
//! [`RealClock`] with scaled-down intervals; unit tests drive a
//! [`ManualClock`] deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A monotonic clock measured in milliseconds since an arbitrary epoch.
pub trait Clock: Send + Sync {
    /// Milliseconds since the clock's epoch.
    fn now_ms(&self) -> u64;

    /// Blocks the calling thread for `d` (or until the manual clock is
    /// advanced past the deadline).
    fn sleep(&self, d: Duration);

    /// Like [`Clock::sleep`] but returns early once `stop` becomes true.
    /// Background threads use this so shutdown is never blocked on a clock
    /// that has stopped advancing.
    fn sleep_interruptible(&self, d: Duration, stop: &std::sync::atomic::AtomicBool);
}

/// A [`Clock`] backed by [`Instant`] and [`std::thread::sleep`].
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Creates a real clock whose epoch is now.
    pub fn new() -> Self {
        RealClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }

    fn sleep_interruptible(&self, d: Duration, stop: &std::sync::atomic::AtomicBool) {
        let deadline = Instant::now() + d;
        while !stop.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
        }
    }
}

/// A manually-advanced clock for deterministic tests.
///
/// `sleep` blocks until another thread advances the clock past the sleeper's
/// deadline, so multi-threaded components can be driven step by step.
pub struct ManualClock {
    now_ms: AtomicU64,
    lock: Mutex<()>,
    cond: Condvar,
}

impl ManualClock {
    /// Creates a manual clock at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock {
            now_ms: AtomicU64::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        })
    }

    /// Advances the clock by `ms` milliseconds, waking sleepers whose
    /// deadlines have passed.
    pub fn advance(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
        let _guard = self.lock.lock();
        self.cond.notify_all();
    }

    /// Sets the clock to an absolute time, which must not move backwards.
    pub fn set(&self, ms: u64) {
        let prev = self.now_ms.swap(ms, Ordering::SeqCst);
        debug_assert!(ms >= prev, "manual clock moved backwards");
        let _guard = self.lock.lock();
        self.cond.notify_all();
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    fn sleep(&self, d: Duration) {
        let deadline = self.now_ms().saturating_add(d.as_millis() as u64);
        let mut guard = self.lock.lock();
        while self.now_ms() < deadline {
            // A short real-time timeout guards against lost wakeups if the
            // advancing thread races the sleeper registering.
            self.cond.wait_for(&mut guard, Duration::from_millis(50));
        }
    }

    fn sleep_interruptible(&self, d: Duration, stop: &std::sync::atomic::AtomicBool) {
        let deadline = self.now_ms().saturating_add(d.as_millis() as u64);
        let mut guard = self.lock.lock();
        while self.now_ms() < deadline && !stop.load(Ordering::SeqCst) {
            self.cond.wait_for(&mut guard, Duration::from_millis(10));
        }
    }
}

/// A shareable clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for a shared [`RealClock`].
pub fn real_clock() -> SharedClock {
    Arc::new(RealClock::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn real_clock_advances() {
        let c = RealClock::new();
        let a = c.now_ms();
        c.sleep(Duration::from_millis(5));
        assert!(c.now_ms() >= a);
    }

    #[test]
    fn manual_clock_advance_and_set() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(100);
        assert_eq!(c.now_ms(), 100);
        c.set(250);
        assert_eq!(c.now_ms(), 250);
    }

    #[test]
    fn manual_clock_wakes_sleeper() {
        let c = ManualClock::new();
        let c2 = Arc::clone(&c);
        let handle = thread::spawn(move || {
            c2.sleep(Duration::from_millis(500));
            c2.now_ms()
        });
        // Give the sleeper a moment to block, then advance past its deadline.
        thread::sleep(Duration::from_millis(20));
        c.advance(600);
        let woke_at = handle.join().unwrap();
        assert!(woke_at >= 500);
    }

    #[test]
    fn manual_clock_zero_sleep_returns() {
        let c = ManualClock::new();
        c.sleep(Duration::from_millis(0));
    }
}

//! Attribute values stored at nodes of the TROPIC data model.
//!
//! The data model is semi-structured (paper §2.2): every node carries a map
//! of named attributes whose values are drawn from the [`Value`] enum below.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically-typed attribute value.
///
/// `Value` deliberately mirrors the JSON data model so that logical-layer
/// state can be checkpointed into the coordination store verbatim.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absence of a value.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed map of values.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the contained boolean, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the contained integer, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained float; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the contained string slice, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained list, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained map, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for the value's runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    /// Approximate in-memory footprint in bytes, used by the memory-footprint
    /// experiment (§6.1) to track how the data model grows with resources.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) | Value::Int(_) | Value::Float(_) => 16,
            Value::Str(s) => 24 + s.len(),
            Value::List(v) => 24 + v.iter().map(Value::approx_size).sum::<usize>(),
            Value::Map(m) => {
                24 + m
                    .iter()
                    .map(|(k, v)| 24 + k.len() + v.approx_size())
                    .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(42i64).as_int(), Some(42));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from(7i64).as_float(), Some(7.0));
        assert_eq!(Value::from("xen").as_str(), Some("xen"));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn accessors_reject_wrong_type() {
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::from(1i64).as_str(), None);
        assert_eq!(Value::Null.as_bool(), None);
        assert_eq!(Value::from(1i64).as_list(), None);
        assert_eq!(Value::from(1i64).as_map(), None);
    }

    #[test]
    fn list_conversion() {
        let v: Value = vec![1i64, 2, 3].into();
        assert_eq!(v.as_list().unwrap().len(), 3);
        assert_eq!(v.as_list().unwrap()[1], Value::Int(2));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::from(1i64).type_name(), "int");
        assert_eq!(Value::from("s").type_name(), "str");
        assert_eq!(Value::List(vec![]).type_name(), "list");
        assert_eq!(Value::Map(BTreeMap::new()).type_name(), "map");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::from("a").to_string(), "\"a\"");
        let v: Value = vec![1i64, 2].into();
        assert_eq!(v.to_string(), "[1, 2]");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Int(1));
        assert_eq!(Value::Map(m).to_string(), "{k: 1}");
    }

    #[test]
    fn serde_roundtrip() {
        let v: Value = vec![Value::from(1i64), Value::from("two"), Value::Bool(false)].into();
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn approx_size_grows_with_content() {
        let small = Value::from("a").approx_size();
        let big = Value::from("a".repeat(100)).approx_size();
        assert!(big > small + 90);
    }
}

//! # tropic-model
//!
//! The hierarchical, semi-structured data model underlying TROPIC
//! (Liu et al., *TROPIC: Transactional Resource Orchestration Platform In
//! the Cloud*, USENIX ATC 2012), plus shared primitives (clock, errors).
//!
//! The model is a tree of [`Node`]s addressed by [`Path`]s. Each node is an
//! instance of an *entity* (a compute server, a VM, a storage volume). The
//! controller's logical layer and the workers' physical layer each hold a
//! [`Tree`] of the same shape; [`Tree::diff`] powers reconciliation between
//! them. Safety rules are [`Constraint`]s anchored at entity types and
//! enforced by the logical layer before any device is touched.
//!
//! ```
//! use tropic_model::{Node, Path, Tree};
//!
//! let mut tree = Tree::new();
//! tree.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot")).unwrap();
//! tree.insert(
//!     &Path::parse("/vmRoot/host1").unwrap(),
//!     Node::new("vmHost").with_attr("memCapacity", 32768i64),
//! ).unwrap();
//! assert_eq!(tree.node_count(), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod clock;
pub mod constraint;
pub mod error;
pub mod node;
pub mod path;
pub mod query;
pub mod schema;
pub mod tree;
pub mod value;

pub use clock::{real_clock, Clock, ManualClock, RealClock, SharedClock};
pub use constraint::{Constraint, ConstraintSet, ConstraintViolation, FnConstraint};
pub use error::{ModelError, ModelResult};
pub use node::Node;
pub use path::Path;
pub use schema::{AttrSchema, AttrType, EntitySchema, SchemaRegistry};
pub use tree::{DiffEntry, Tree};
pub use value::Value;

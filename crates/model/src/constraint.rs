//! Integrity constraints: the safety mechanism of TROPIC (paper §2.2, §3.1).
//!
//! Constraints encode service and engineering rules ("aggregate VM memory
//! must not exceed host capacity"). They anchor at an *entity type*: every
//! node of that type is a checkpoint where the rule is evaluated against the
//! node's subtree. The logical layer checks the constraints whose anchor is
//! an ancestor-or-self of every path touched by an action, aborting the
//! transaction on violation before anything reaches a physical device.

use std::fmt;
use std::sync::Arc;

use crate::path::Path;
use crate::tree::Tree;

/// A violated constraint, carrying enough context for the abort message the
/// client receives.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstraintViolation {
    /// Name of the violated constraint.
    pub constraint: String,
    /// Anchor node at which the violation was detected.
    pub path: Path,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint `{}` violated at {}: {}",
            self.constraint, self.path, self.message
        )
    }
}

impl std::error::Error for ConstraintViolation {}

/// A global safety rule evaluated at anchor nodes of one entity type.
pub trait Constraint: Send + Sync {
    /// Unique constraint name, used in violation reports.
    fn name(&self) -> &str;

    /// Entity type at whose nodes this constraint anchors (e.g. `"vmHost"`).
    fn anchor_entity(&self) -> &str;

    /// Checks the rule at `anchor` (a node of type [`Self::anchor_entity`]).
    ///
    /// Implementations may inspect the whole subtree below `anchor` and any
    /// other part of `tree` they need.
    fn check(&self, tree: &Tree, anchor: &Path) -> Result<(), ConstraintViolation>;

    /// Human-readable description of the rule.
    fn description(&self) -> &str {
        ""
    }
}

/// A [`Constraint`] built from a closure, convenient for services and tests.
pub struct FnConstraint<F> {
    name: String,
    anchor_entity: String,
    description: String,
    check: F,
}

impl<F> FnConstraint<F>
where
    F: Fn(&Tree, &Path) -> Result<(), String> + Send + Sync,
{
    /// Creates a closure-backed constraint. The closure returns a violation
    /// message on failure.
    pub fn new(name: impl Into<String>, anchor_entity: impl Into<String>, check: F) -> Self {
        FnConstraint {
            name: name.into(),
            anchor_entity: anchor_entity.into(),
            description: String::new(),
            check,
        }
    }

    /// Adds a description.
    pub fn describe(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }
}

impl<F> Constraint for FnConstraint<F>
where
    F: Fn(&Tree, &Path) -> Result<(), String> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn anchor_entity(&self) -> &str {
        &self.anchor_entity
    }

    fn check(&self, tree: &Tree, anchor: &Path) -> Result<(), ConstraintViolation> {
        (self.check)(tree, anchor).map_err(|message| ConstraintViolation {
            constraint: self.name.clone(),
            path: anchor.clone(),
            message,
        })
    }

    fn description(&self) -> &str {
        &self.description
    }
}

/// The set of constraints registered with a platform instance.
#[derive(Clone, Default)]
pub struct ConstraintSet {
    constraints: Vec<Arc<dyn Constraint>>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a constraint.
    pub fn register(&mut self, c: Arc<dyn Constraint>) {
        self.constraints.push(c);
    }

    /// Number of registered constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` if no constraints are registered.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterates over all constraints.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Constraint>> {
        self.constraints.iter()
    }

    /// Returns `true` if any constraint anchors at `entity`.
    pub fn anchors_at(&self, entity: &str) -> bool {
        self.constraints.iter().any(|c| c.anchor_entity() == entity)
    }

    /// Checks all constraints whose anchor node is an ancestor-or-self of
    /// `touched`. This is the per-action safety check the logical layer runs
    /// during simulation (paper §3.1.2).
    pub fn check_touched(&self, tree: &Tree, touched: &Path) -> Result<(), ConstraintViolation> {
        if self.constraints.is_empty() {
            return Ok(());
        }
        for anchor in touched.ancestors_and_self() {
            let Some(node) = tree.get(&anchor) else {
                // The touched path may have been removed by the action (e.g.
                // `removeVM`); ancestors above the removal point still exist
                // and are still checked.
                continue;
            };
            for c in &self.constraints {
                if c.anchor_entity() == node.entity() {
                    c.check(tree, &anchor)?;
                }
            }
        }
        Ok(())
    }

    /// Checks every constraint at every matching anchor in the whole tree.
    /// Used by `reload`, which installs externally-retrieved state and must
    /// re-establish global safety (paper §4).
    pub fn check_all(&self, tree: &Tree) -> Result<(), ConstraintViolation> {
        if self.constraints.is_empty() {
            return Ok(());
        }
        for (path, node) in tree.walk() {
            for c in &self.constraints {
                if c.anchor_entity() == node.entity() {
                    c.check(tree, &path)?;
                }
            }
        }
        Ok(())
    }

    /// The highest (closest-to-root) ancestor-or-self of `path` whose entity
    /// type has a constraint anchored at it.
    ///
    /// The lock manager takes a read lock on this node for every write,
    /// freezing the constraint's whole scope against concurrent writers
    /// (paper §3.1.3).
    pub fn highest_constrained_ancestor(&self, tree: &Tree, path: &Path) -> Option<Path> {
        for anchor in path.ancestors_and_self() {
            if let Some(node) = tree.get(&anchor) {
                if self.anchors_at(node.entity()) {
                    return Some(anchor);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    fn tree() -> Tree {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h1").unwrap(),
            Node::new("vmHost").with_attr("memCapacity", 4096i64),
        )
        .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h1/vm1").unwrap(),
            Node::new("vm").with_attr("mem", 2048i64),
        )
        .unwrap();
        t
    }

    fn mem_constraint() -> Arc<dyn Constraint> {
        Arc::new(
            FnConstraint::new("vm-memory", "vmHost", |tree: &Tree, anchor: &Path| {
                let host = tree.get(anchor).expect("anchor exists");
                let cap = host.attr_int("memCapacity").unwrap_or(0);
                let used: i64 = host
                    .children()
                    .filter_map(|(_, vm)| vm.attr_int("mem"))
                    .sum();
                if used > cap {
                    Err(format!("aggregate VM memory {used} exceeds capacity {cap}"))
                } else {
                    Ok(())
                }
            })
            .describe("Aggregated VM memory cannot exceed the host's capacity."),
        )
    }

    #[test]
    fn satisfied_constraint_passes() {
        let mut set = ConstraintSet::new();
        set.register(mem_constraint());
        set.check_all(&tree()).unwrap();
        set.check_touched(&tree(), &Path::parse("/vmRoot/h1/vm1").unwrap())
            .unwrap();
    }

    #[test]
    fn violation_detected_at_anchor() {
        let mut t = tree();
        t.insert(
            &Path::parse("/vmRoot/h1/vm2").unwrap(),
            Node::new("vm").with_attr("mem", 3000i64),
        )
        .unwrap();
        let mut set = ConstraintSet::new();
        set.register(mem_constraint());
        let err = set
            .check_touched(&t, &Path::parse("/vmRoot/h1/vm2").unwrap())
            .unwrap_err();
        assert_eq!(err.constraint, "vm-memory");
        assert_eq!(err.path, Path::parse("/vmRoot/h1").unwrap());
        assert!(err.to_string().contains("exceeds capacity"));
        assert!(set.check_all(&t).is_err());
    }

    #[test]
    fn untouched_scope_not_checked() {
        let mut t = tree();
        // Violating state on h1...
        t.insert(
            &Path::parse("/vmRoot/h1/vm2").unwrap(),
            Node::new("vm").with_attr("mem", 9000i64),
        )
        .unwrap();
        // ...but another host's subtree is touched.
        t.insert(&Path::parse("/vmRoot/h2").unwrap(), Node::new("vmHost"))
            .unwrap();
        let mut set = ConstraintSet::new();
        set.register(mem_constraint());
        set.check_touched(&t, &Path::parse("/vmRoot/h2").unwrap())
            .unwrap();
    }

    #[test]
    fn removed_touched_path_checks_ancestors() {
        let mut t = tree();
        t.remove(&Path::parse("/vmRoot/h1/vm1").unwrap()).unwrap();
        let mut set = ConstraintSet::new();
        set.register(mem_constraint());
        // The vm1 path no longer exists but its former host anchor is fine.
        set.check_touched(&t, &Path::parse("/vmRoot/h1/vm1").unwrap())
            .unwrap();
    }

    #[test]
    fn highest_constrained_ancestor_found() {
        let t = tree();
        let mut set = ConstraintSet::new();
        set.register(mem_constraint());
        let vm = Path::parse("/vmRoot/h1/vm1").unwrap();
        assert_eq!(
            set.highest_constrained_ancestor(&t, &vm),
            Some(Path::parse("/vmRoot/h1").unwrap())
        );
        // A root-anchored constraint takes precedence as "highest".
        set.register(Arc::new(FnConstraint::new("noop", "root", |_, _| Ok(()))));
        assert_eq!(
            set.highest_constrained_ancestor(&t, &vm),
            Some(Path::root())
        );
        // No constraint covers an unrelated entity chain.
        let empty = ConstraintSet::new();
        assert_eq!(empty.highest_constrained_ancestor(&t, &vm), None);
    }

    #[test]
    fn anchors_at_lookup() {
        let mut set = ConstraintSet::new();
        assert!(set.is_empty());
        set.register(mem_constraint());
        assert!(set.anchors_at("vmHost"));
        assert!(!set.anchors_at("vm"));
        assert_eq!(set.len(), 1);
    }
}

//! Tree nodes: objects representing instances of entities (paper §2.2).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A node in the hierarchical data model.
///
/// Each node is an object representing an instance of an entity type (e.g. a
/// `vmHost` or a `vm`). Nodes carry named attributes and named children.
/// The `inconsistent` flag implements the paper's volatility marking (§4):
/// once a node is marked, it and its descendants reject new transactions
/// until reconciliation clears the flag.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Entity type name, e.g. `"vmHost"`. Constraints and schemas attach to
    /// entity types rather than to individual nodes.
    entity: String,
    /// Attribute map.
    attrs: BTreeMap<String, Value>,
    /// Children keyed by name (the name is the child's path segment).
    children: BTreeMap<String, Node>,
    /// Cross-layer inconsistency marker (paper §4).
    #[serde(default)]
    inconsistent: bool,
}

impl Node {
    /// Creates a node of the given entity type with no attributes.
    pub fn new(entity: impl Into<String>) -> Self {
        Node {
            entity: entity.into(),
            attrs: BTreeMap::new(),
            children: BTreeMap::new(),
            inconsistent: false,
        }
    }

    /// Builder-style attribute insertion for topology construction.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// The entity type name of this node.
    pub fn entity(&self) -> &str {
        &self.entity
    }

    /// Reads an attribute.
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.get(key)
    }

    /// Reads an integer attribute, if present and of the right type.
    pub fn attr_int(&self, key: &str) -> Option<i64> {
        self.attr(key).and_then(Value::as_int)
    }

    /// Reads a string attribute, if present and of the right type.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(Value::as_str)
    }

    /// Reads a boolean attribute, if present and of the right type.
    pub fn attr_bool(&self, key: &str) -> Option<bool> {
        self.attr(key).and_then(Value::as_bool)
    }

    /// Sets an attribute, returning the previous value if any.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.attrs.insert(key.into(), value.into())
    }

    /// Removes an attribute, returning its previous value if any.
    pub fn remove_attr(&mut self, key: &str) -> Option<Value> {
        self.attrs.remove(key)
    }

    /// Iterates over all attributes in key order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Looks up a direct child by name.
    pub fn child(&self, name: &str) -> Option<&Node> {
        self.children.get(name)
    }

    /// Looks up a direct child mutably.
    pub fn child_mut(&mut self, name: &str) -> Option<&mut Node> {
        self.children.get_mut(name)
    }

    /// Inserts or replaces a child, returning the previous child if any.
    pub fn insert_child(&mut self, name: impl Into<String>, node: Node) -> Option<Node> {
        self.children.insert(name.into(), node)
    }

    /// Removes a child, returning it if it existed.
    pub fn remove_child(&mut self, name: &str) -> Option<Node> {
        self.children.remove(name)
    }

    /// Returns `true` if a direct child with this name exists.
    pub fn has_child(&self, name: &str) -> bool {
        self.children.contains_key(name)
    }

    /// Iterates over direct children in name order.
    pub fn children(&self) -> impl Iterator<Item = (&str, &Node)> {
        self.children.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over direct children mutably.
    pub fn children_mut(&mut self) -> impl Iterator<Item = (&str, &mut Node)> {
        self.children.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of direct children.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// Total number of nodes in this subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .values()
            .map(Node::subtree_size)
            .sum::<usize>()
    }

    /// Whether this node is marked cross-layer inconsistent (paper §4).
    pub fn is_inconsistent(&self) -> bool {
        self.inconsistent
    }

    /// Sets or clears the inconsistency marker on this node only.
    pub fn set_inconsistent(&mut self, flag: bool) {
        self.inconsistent = flag;
    }

    /// Approximate in-memory footprint of the subtree in bytes (§6.1
    /// memory-footprint experiment).
    pub fn approx_size(&self) -> usize {
        let own = 64
            + self.entity.len()
            + self
                .attrs
                .iter()
                .map(|(k, v)| 24 + k.len() + v.approx_size())
                .sum::<usize>();
        own + self
            .children
            .iter()
            .map(|(k, v)| 24 + k.len() + v.approx_size())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_basic() {
        let mut n = Node::new("vm")
            .with_attr("mem", 2048i64)
            .with_attr("state", "stopped");
        assert_eq!(n.entity(), "vm");
        assert_eq!(n.attr_int("mem"), Some(2048));
        assert_eq!(n.attr_str("state"), Some("stopped"));
        assert_eq!(n.attr_int("state"), None);
        assert_eq!(n.set_attr("mem", 4096i64), Some(Value::Int(2048)));
        assert_eq!(n.remove_attr("mem"), Some(Value::Int(4096)));
        assert_eq!(n.attr("mem"), None);
        assert_eq!(n.attr_count(), 1);
    }

    #[test]
    fn children_basic() {
        let mut host = Node::new("vmHost");
        assert!(host.insert_child("vm1", Node::new("vm")).is_none());
        assert!(host.has_child("vm1"));
        assert_eq!(host.child("vm1").unwrap().entity(), "vm");
        assert_eq!(host.child_count(), 1);
        host.child_mut("vm1").unwrap().set_attr("state", "running");
        assert_eq!(
            host.child("vm1").unwrap().attr_str("state"),
            Some("running")
        );
        let removed = host.remove_child("vm1").unwrap();
        assert_eq!(removed.attr_str("state"), Some("running"));
        assert_eq!(host.child_count(), 0);
    }

    #[test]
    fn subtree_size_counts_all() {
        let mut root = Node::new("root");
        let mut host = Node::new("vmHost");
        host.insert_child("vm1", Node::new("vm"));
        host.insert_child("vm2", Node::new("vm"));
        root.insert_child("h", host);
        assert_eq!(root.subtree_size(), 4);
    }

    #[test]
    fn inconsistency_flag() {
        let mut n = Node::new("vm");
        assert!(!n.is_inconsistent());
        n.set_inconsistent(true);
        assert!(n.is_inconsistent());
    }

    #[test]
    fn serde_roundtrip() {
        let mut n = Node::new("vmHost").with_attr("memCapacity", 32768i64);
        n.insert_child("vm1", Node::new("vm").with_attr("state", "running"));
        let s = serde_json::to_string(&n).unwrap();
        let back: Node = serde_json::from_str(&s).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn children_sorted_by_name() {
        let mut n = Node::new("root");
        n.insert_child("b", Node::new("x"));
        n.insert_child("a", Node::new("x"));
        let names: Vec<&str> = n.children().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}

//! Read-only query helpers over the data model (paper §2.2).
//!
//! Queries inspect logical-layer state without modifying it. Stored
//! procedures and constraints are built from these helpers; the logical
//! layer records each queried path so the lock manager can take read locks.

use crate::node::Node;
use crate::path::Path;
use crate::tree::Tree;
use crate::value::Value;

/// Sums an integer attribute over the direct children of `path`. Children
/// missing the attribute contribute zero.
pub fn sum_child_attr(tree: &Tree, path: &Path, attr: &str) -> i64 {
    tree.get(path)
        .map(|n| n.children().filter_map(|(_, c)| c.attr_int(attr)).sum())
        .unwrap_or(0)
}

/// Counts direct children of `path` satisfying `pred`.
pub fn count_children<F>(tree: &Tree, path: &Path, pred: F) -> usize
where
    F: Fn(&Node) -> bool,
{
    tree.get(path)
        .map(|n| n.children().filter(|(_, c)| pred(c)).count())
        .unwrap_or(0)
}

/// Counts direct children whose string attribute `attr` equals `value`.
pub fn count_children_with(tree: &Tree, path: &Path, attr: &str, value: &str) -> usize {
    count_children(tree, path, |c| c.attr_str(attr) == Some(value))
}

/// Paths of direct children of `path` satisfying `pred`, in name order.
pub fn select_children<F>(tree: &Tree, path: &Path, pred: F) -> Vec<Path>
where
    F: Fn(&Node) -> bool,
{
    tree.get(path)
        .map(|n| {
            n.children()
                .filter(|(_, c)| pred(c))
                .map(|(name, _)| path.join(name))
                .collect()
        })
        .unwrap_or_default()
}

/// Paths of all nodes in the subtree at `scope` (inclusive) whose entity is
/// `entity` and which satisfy `pred`.
pub fn select_descendants<F>(tree: &Tree, scope: &Path, entity: &str, pred: F) -> Vec<Path>
where
    F: Fn(&Node) -> bool,
{
    let Some(root) = tree.get(scope) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    fn rec<F: Fn(&Node) -> bool>(
        path: Path,
        node: &Node,
        entity: &str,
        pred: &F,
        out: &mut Vec<Path>,
    ) {
        if node.entity() == entity && pred(node) {
            out.push(path.clone());
        }
        for (name, child) in node.children() {
            rec(path.join(name), child, entity, pred, out);
        }
    }
    rec(scope.clone(), root, entity, &pred, &mut out);
    out
}

/// Finds the first child of `path` (in name order) satisfying `pred`.
pub fn first_child_where<F>(tree: &Tree, path: &Path, pred: F) -> Option<Path>
where
    F: Fn(&Node) -> bool,
{
    tree.get(path).and_then(|n| {
        n.children()
            .find(|(_, c)| pred(c))
            .map(|(name, _)| path.join(name))
    })
}

/// Reads an attribute as a [`Value`], returning `Null` when absent. A total
/// version of [`Tree::attr`] convenient inside constraint closures.
pub fn attr_or_null(tree: &Tree, path: &Path, attr: &str) -> Value {
    tree.attr(path, attr).cloned().unwrap_or(Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Tree {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h1").unwrap(),
            Node::new("vmHost").with_attr("memCapacity", 8192i64),
        )
        .unwrap();
        for (name, mem, state) in [
            ("vm1", 1024i64, "running"),
            ("vm2", 2048, "stopped"),
            ("vm3", 512, "running"),
        ] {
            t.insert(
                &Path::parse(&format!("/vmRoot/h1/{name}")).unwrap(),
                Node::new("vm")
                    .with_attr("mem", mem)
                    .with_attr("state", state),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn sum_child_attr_works() {
        let t = tree();
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        assert_eq!(sum_child_attr(&t, &h1, "mem"), 3584);
        assert_eq!(sum_child_attr(&t, &h1, "absent"), 0);
        assert_eq!(sum_child_attr(&t, &Path::parse("/nope").unwrap(), "mem"), 0);
    }

    #[test]
    fn count_and_select() {
        let t = tree();
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        assert_eq!(count_children_with(&t, &h1, "state", "running"), 2);
        assert_eq!(
            count_children(&t, &h1, |c| c.attr_int("mem").unwrap_or(0) > 1000),
            2
        );
        let running = select_children(&t, &h1, |c| c.attr_str("state") == Some("running"));
        assert_eq!(running.len(), 2);
        assert_eq!(running[0].leaf(), Some("vm1"));
    }

    #[test]
    fn select_descendants_scoped() {
        let t = tree();
        let all = select_descendants(&t, &Path::root(), "vm", |_| true);
        assert_eq!(all.len(), 3);
        let stopped = select_descendants(&t, &Path::parse("/vmRoot").unwrap(), "vm", |n| {
            n.attr_str("state") == Some("stopped")
        });
        assert_eq!(stopped, vec![Path::parse("/vmRoot/h1/vm2").unwrap()]);
        assert!(select_descendants(&t, &Path::parse("/none").unwrap(), "vm", |_| true).is_empty());
    }

    #[test]
    fn first_child_where_finds_in_order() {
        let t = tree();
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        let found = first_child_where(&t, &h1, |c| c.attr_str("state") == Some("running"));
        assert_eq!(found, Some(Path::parse("/vmRoot/h1/vm1").unwrap()));
        assert_eq!(first_child_where(&t, &h1, |_| false), None);
    }

    #[test]
    fn attr_or_null_total() {
        let t = tree();
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        assert_eq!(attr_or_null(&t, &h1, "memCapacity"), Value::Int(8192));
        assert_eq!(attr_or_null(&t, &h1, "absent"), Value::Null);
        assert_eq!(
            attr_or_null(&t, &Path::parse("/none").unwrap(), "x"),
            Value::Null
        );
    }
}

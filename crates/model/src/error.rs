//! Error types for the TROPIC data model.

use std::fmt;

use crate::path::Path;

/// Errors produced by data-model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The referenced path does not exist in the tree.
    NoSuchPath(Path),
    /// The parent of a path being inserted does not exist.
    ParentMissing(Path),
    /// A node already exists at the path being inserted.
    DuplicateNode(Path),
    /// An attribute was absent or had an unexpected type.
    AttrType {
        /// Path of the node holding the attribute.
        path: Path,
        /// Attribute name.
        attr: String,
        /// Human-readable description of the expected type.
        expected: &'static str,
    },
    /// A textual path failed to parse.
    InvalidPath(String),
    /// A node violated its entity schema.
    SchemaViolation(String),
    /// The root node cannot be removed or replaced through node operations.
    RootImmutable,
    /// A serialization or deserialization failure.
    Serde(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoSuchPath(p) => write!(f, "no such path: {p}"),
            ModelError::ParentMissing(p) => write!(f, "parent missing for path: {p}"),
            ModelError::DuplicateNode(p) => write!(f, "node already exists at path: {p}"),
            ModelError::AttrType {
                path,
                attr,
                expected,
            } => {
                write!(f, "attribute `{attr}` at {path} is not of type {expected}")
            }
            ModelError::InvalidPath(s) => write!(f, "invalid path: {s:?}"),
            ModelError::SchemaViolation(s) => write!(f, "schema violation: {s}"),
            ModelError::RootImmutable => write!(f, "the root node cannot be removed or replaced"),
            ModelError::Serde(s) => write!(f, "serialization error: {s}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias for results returned by model operations.
pub type ModelResult<T> = Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path() {
        let err = ModelError::NoSuchPath(Path::parse("/vmRoot/host1").unwrap());
        assert!(err.to_string().contains("/vmRoot/host1"));
    }

    #[test]
    fn display_attr_type() {
        let err = ModelError::AttrType {
            path: Path::root(),
            attr: "mem".into(),
            expected: "int",
        };
        let s = err.to_string();
        assert!(s.contains("mem"));
        assert!(s.contains("int"));
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(ModelError::RootImmutable);
        assert!(err.to_string().contains("root"));
    }
}

//! Resource paths identifying objects in the hierarchical data model.
//!
//! A [`Path`] names a node in the tree, e.g. `/vmRoot/vmHost1/vm3`. Paths are
//! the unit at which the lock manager acquires read/write/intention locks
//! (paper §3.1.3) and at which execution-log records address resources
//! (paper Table 1).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, ModelResult};

/// A normalized, immutable resource path.
///
/// The root path has zero segments and displays as `/`. Segments never
/// contain `/` and are never empty. Cloning a `Path` is cheap: segments are
/// reference-counted strings shared between derived paths.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    segs: Arc<[Arc<str>]>,
}

impl Path {
    /// The root path `/`.
    pub fn root() -> Self {
        Path {
            segs: Arc::from(Vec::new()),
        }
    }

    /// Parses a textual path such as `/vmRoot/vmHost1`.
    ///
    /// Leading `/` is required; a trailing `/` is tolerated; empty segments
    /// are rejected.
    pub fn parse(s: &str) -> ModelResult<Self> {
        if !s.starts_with('/') {
            return Err(ModelError::InvalidPath(s.to_owned()));
        }
        let trimmed = s.trim_start_matches('/').trim_end_matches('/');
        if trimmed.is_empty() {
            return Ok(Path::root());
        }
        let mut segs: Vec<Arc<str>> = Vec::new();
        for seg in trimmed.split('/') {
            if seg.is_empty() {
                return Err(ModelError::InvalidPath(s.to_owned()));
            }
            segs.push(Arc::from(seg));
        }
        Ok(Path {
            segs: Arc::from(segs),
        })
    }

    /// Builds a path from segment strings. Segments must be non-empty and
    /// must not contain `/`.
    pub fn from_segments<I, S>(iter: I) -> ModelResult<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut segs: Vec<Arc<str>> = Vec::new();
        for seg in iter {
            let seg = seg.as_ref();
            if seg.is_empty() || seg.contains('/') {
                return Err(ModelError::InvalidPath(seg.to_owned()));
            }
            segs.push(Arc::from(seg));
        }
        Ok(Path {
            segs: Arc::from(segs),
        })
    }

    /// Returns the path's segments in order from the root.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.segs.iter().map(|s| s.as_ref())
    }

    /// Number of segments; the root has depth 0.
    pub fn depth(&self) -> usize {
        self.segs.len()
    }

    /// Returns `true` if this is the root path.
    pub fn is_root(&self) -> bool {
        self.segs.is_empty()
    }

    /// The final segment, or `None` for the root.
    pub fn leaf(&self) -> Option<&str> {
        self.segs.last().map(|s| s.as_ref())
    }

    /// The parent path, or `None` for the root.
    pub fn parent(&self) -> Option<Path> {
        if self.segs.is_empty() {
            None
        } else {
            Some(Path {
                segs: Arc::from(self.segs[..self.segs.len() - 1].to_vec()),
            })
        }
    }

    /// Extends this path with one child segment.
    pub fn child(&self, name: &str) -> ModelResult<Path> {
        if name.is_empty() || name.contains('/') {
            return Err(ModelError::InvalidPath(name.to_owned()));
        }
        let mut segs = self.segs.to_vec();
        segs.push(Arc::from(name));
        Ok(Path {
            segs: Arc::from(segs),
        })
    }

    /// Like [`Path::child`] but panics on an invalid segment. Intended for
    /// statically-known names in service code and tests.
    pub fn join(&self, name: &str) -> Path {
        self.child(name)
            .unwrap_or_else(|_| panic!("invalid path segment {name:?}"))
    }

    /// All strict ancestors, from the root down to (excluding) `self`.
    ///
    /// The root path yields nothing. `/a/b` yields `/` and `/a`.
    pub fn ancestors(&self) -> Vec<Path> {
        (0..self.segs.len())
            .map(|n| Path {
                segs: Arc::from(self.segs[..n].to_vec()),
            })
            .collect()
    }

    /// All prefixes including `self`, from the root down.
    pub fn ancestors_and_self(&self) -> Vec<Path> {
        let mut v = self.ancestors();
        v.push(self.clone());
        v
    }

    /// Returns `true` if `self` is an ancestor of `other` (strictly shorter
    /// matching prefix).
    pub fn is_ancestor_of(&self, other: &Path) -> bool {
        self.segs.len() < other.segs.len()
            && self.segs.iter().zip(other.segs.iter()).all(|(a, b)| a == b)
    }

    /// Returns `true` if `self` equals `other` or is an ancestor of it.
    pub fn contains(&self, other: &Path) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// Returns `true` if the two paths are on a common root-to-leaf chain
    /// (one contains the other), which is when hierarchical locks interact.
    pub fn related(&self, other: &Path) -> bool {
        self.contains(other) || other.contains(self)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segs.is_empty() {
            return write!(f, "/");
        }
        for seg in self.segs.iter() {
            write!(f, "/{seg}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Path {
    // The textual form is kept identical to `Display` so paths read naturally
    // inside derived debug output of larger structures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Serialize for Path {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for Path {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Path::parse(&s).map_err(serde::de::Error::custom)
    }
}

impl std::str::FromStr for Path {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Path::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let p = Path::parse("/vmRoot/vmHost1/vm3").unwrap();
        assert_eq!(p.to_string(), "/vmRoot/vmHost1/vm3");
        assert_eq!(p.depth(), 3);
        assert_eq!(p.leaf(), Some("vm3"));
    }

    #[test]
    fn root_forms() {
        assert_eq!(Path::parse("/").unwrap(), Path::root());
        assert_eq!(Path::root().to_string(), "/");
        assert!(Path::root().is_root());
        assert_eq!(Path::root().leaf(), None);
        assert_eq!(Path::root().parent(), None);
    }

    #[test]
    fn trailing_slash_tolerated() {
        assert_eq!(Path::parse("/a/b/").unwrap(), Path::parse("/a/b").unwrap());
    }

    #[test]
    fn invalid_paths_rejected() {
        assert!(Path::parse("a/b").is_err());
        assert!(Path::parse("").is_err());
        assert!(Path::parse("/a//b").is_err());
        assert!(Path::root().child("").is_err());
        assert!(Path::root().child("a/b").is_err());
    }

    #[test]
    fn parent_child() {
        let p = Path::parse("/a/b").unwrap();
        assert_eq!(p.parent().unwrap(), Path::parse("/a").unwrap());
        assert_eq!(p.parent().unwrap().parent().unwrap(), Path::root());
        assert_eq!(Path::root().join("a").join("b"), p);
    }

    #[test]
    fn ancestors_ordering() {
        let p = Path::parse("/a/b/c").unwrap();
        let anc = p.ancestors();
        assert_eq!(anc.len(), 3);
        assert_eq!(anc[0], Path::root());
        assert_eq!(anc[1], Path::parse("/a").unwrap());
        assert_eq!(anc[2], Path::parse("/a/b").unwrap());
        let all = p.ancestors_and_self();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], p);
    }

    #[test]
    fn ancestry_predicates() {
        let a = Path::parse("/a").unwrap();
        let ab = Path::parse("/a/b").unwrap();
        let ac = Path::parse("/a/c").unwrap();
        assert!(a.is_ancestor_of(&ab));
        assert!(!ab.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(a.contains(&a));
        assert!(a.contains(&ab));
        assert!(ab.related(&a));
        assert!(!ab.related(&ac));
        assert!(Path::root().is_ancestor_of(&a));
    }

    #[test]
    fn from_segments() {
        let p = Path::from_segments(["x", "y"]).unwrap();
        assert_eq!(p.to_string(), "/x/y");
        assert!(Path::from_segments(["x", ""]).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let p = Path::parse("/a/b").unwrap();
        let s = serde_json::to_string(&p).unwrap();
        assert_eq!(s, "\"/a/b\"");
        let back: Path = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn ordering_is_lexicographic_by_segment() {
        let mut v = [
            Path::parse("/b").unwrap(),
            Path::parse("/a/z").unwrap(),
            Path::parse("/a").unwrap(),
        ];
        v.sort();
        assert_eq!(v[0], Path::parse("/a").unwrap());
        assert_eq!(v[1], Path::parse("/a/z").unwrap());
        assert_eq!(v[2], Path::parse("/b").unwrap());
    }
}

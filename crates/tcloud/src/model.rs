//! TCloud's data-model schemas (paper §5).
//!
//! The data center exposes three resource families under the root:
//! `vmRoot` (compute servers and their VMs), `storageRoot` (storage servers
//! and disk images), and `netRoot` (routers with VLANs). Entity names and
//! attribute shapes deliberately match what the simulated devices export,
//! so logical-vs-physical diffs are empty when the layers agree.

use tropic_model::{AttrType, EntitySchema, SchemaRegistry};

/// Entity name of the tree root.
pub const ROOT: &str = "root";
/// Entity of the compute subtree root.
pub const VM_ROOT: &str = "vmRoot";
/// Entity of a compute server.
pub const VM_HOST: &str = "vmHost";
/// Entity of a virtual machine.
pub const VM: &str = "vm";
/// Entity of the storage subtree root.
pub const STORAGE_ROOT: &str = "storageRoot";
/// Entity of a storage server.
pub const STORAGE_HOST: &str = "storageHost";
/// Entity of a disk image.
pub const IMAGE: &str = "image";
/// Entity of the network subtree root.
pub const NET_ROOT: &str = "netRoot";
/// Entity of a router.
pub const ROUTER: &str = "router";
/// Entity of a VLAN.
pub const VLAN: &str = "vlan";

/// VM power-state attribute value: running.
pub const STATE_RUNNING: &str = "running";
/// VM power-state attribute value: stopped.
pub const STATE_STOPPED: &str = "stopped";

/// Builds the schema registry for TCloud's data model.
pub fn schemas() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register(
        EntitySchema::new(ROOT)
            .describe("Data-center root.")
            .child(VM_ROOT)
            .child(STORAGE_ROOT)
            .child(NET_ROOT),
    );
    reg.register(
        EntitySchema::new(VM_ROOT)
            .describe("Container of compute servers.")
            .child(VM_HOST),
    );
    reg.register(
        EntitySchema::new(VM_HOST)
            .describe("A compute server running a hypervisor.")
            .required("hypervisor", AttrType::Str)
            .required("memCapacity", AttrType::Int)
            .with_default("importedImages", AttrType::List, Vec::<String>::new())
            .child(VM),
    );
    reg.register(
        EntitySchema::new(VM)
            .describe("A virtual machine.")
            .required("image", AttrType::Str)
            .required("mem", AttrType::Int)
            .required("state", AttrType::Str)
            .required("hypervisor", AttrType::Str),
    );
    reg.register(
        EntitySchema::new(STORAGE_ROOT)
            .describe("Container of storage servers.")
            .child(STORAGE_HOST),
    );
    reg.register(
        EntitySchema::new(STORAGE_HOST)
            .describe("A storage server exporting block devices.")
            .required("capacityMb", AttrType::Int)
            .required("usedMb", AttrType::Int)
            .child(IMAGE),
    );
    reg.register(
        EntitySchema::new(IMAGE)
            .describe("A VM disk image or template.")
            .required("sizeMb", AttrType::Int)
            .required("template", AttrType::Bool)
            .required("exported", AttrType::Bool),
    );
    reg.register(
        EntitySchema::new(NET_ROOT)
            .describe("Container of network devices.")
            .child(ROUTER),
    );
    reg.register(
        EntitySchema::new(ROUTER)
            .describe("A programmable switch with VLAN support.")
            .required("maxVlans", AttrType::Int)
            .child(VLAN),
    );
    reg.register(
        EntitySchema::new(VLAN)
            .describe("An 802.1Q VLAN with attached ports.")
            .required("id", AttrType::Int)
            .required("ports", AttrType::List),
    );
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use tropic_model::{Node, Path, Tree};

    #[test]
    fn schema_registry_complete() {
        let reg = schemas();
        for entity in [
            ROOT,
            VM_ROOT,
            VM_HOST,
            VM,
            STORAGE_ROOT,
            STORAGE_HOST,
            IMAGE,
            NET_ROOT,
            ROUTER,
            VLAN,
        ] {
            assert!(reg.get(entity).is_some(), "schema missing for {entity}");
        }
    }

    #[test]
    fn valid_topology_passes() {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new(VM_ROOT))
            .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h0").unwrap(),
            Node::new(VM_HOST)
                .with_attr("hypervisor", "xen")
                .with_attr("memCapacity", 32768i64),
        )
        .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h0/vm0").unwrap(),
            Node::new(VM)
                .with_attr("image", "img")
                .with_attr("mem", 2048i64)
                .with_attr("state", STATE_STOPPED)
                .with_attr("hypervisor", "xen"),
        )
        .unwrap();
        schemas().validate(&t).unwrap();
    }

    #[test]
    fn vm_under_storage_rejected() {
        let mut t = Tree::new();
        t.insert(
            &Path::parse("/storageRoot").unwrap(),
            Node::new(STORAGE_ROOT),
        )
        .unwrap();
        t.insert(
            &Path::parse("/storageRoot/s0").unwrap(),
            Node::new(STORAGE_HOST)
                .with_attr("capacityMb", 100i64)
                .with_attr("usedMb", 0i64),
        )
        .unwrap();
        t.insert(
            &Path::parse("/storageRoot/s0/weird").unwrap(),
            Node::new(VM)
                .with_attr("image", "i")
                .with_attr("mem", 1i64)
                .with_attr("state", STATE_STOPPED)
                .with_attr("hypervisor", "xen"),
        )
        .unwrap();
        assert!(schemas().validate(&t).is_err());
    }

    #[test]
    fn missing_required_attr_rejected() {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new(VM_ROOT))
            .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h0").unwrap(),
            Node::new(VM_HOST).with_attr("hypervisor", "xen"),
        )
        .unwrap();
        assert!(schemas().validate(&t).is_err());
    }
}

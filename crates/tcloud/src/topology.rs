//! Topology construction: the provisioned data center.
//!
//! Builds matching *logical* trees and *simulated device* registries for a
//! TCloud deployment. The paper's performance experiments (§6.1) use
//! 12,500 compute servers × 8 VMs (100,000 VMs) with 3,125 storage servers
//! (4 compute servers share a storage server); [`TopologySpec::paper_scale`]
//! reproduces that shape.

use std::sync::Arc;

use tropic_core::ServiceDefinition;
use tropic_devices::{ComputeServer, DeviceRegistry, LatencyModel, Router, StorageServer};
use tropic_model::{Node, Path, Tree, Value};

use crate::model::{
    schemas, IMAGE, NET_ROOT, ROUTER, STORAGE_HOST, STORAGE_ROOT, VM_HOST, VM_ROOT,
};
use crate::{actions, constraints, repair};

/// Parameters of a TCloud deployment.
#[derive(Clone, Debug)]
pub struct TopologySpec {
    /// Number of compute servers.
    pub compute_hosts: usize,
    /// Number of storage servers.
    pub storage_hosts: usize,
    /// Number of routers.
    pub routers: usize,
    /// Physical memory per compute server (MB).
    pub host_mem_mb: i64,
    /// Hypervisor type stamped on every compute server.
    pub hypervisor: String,
    /// Capacity per storage server (MB).
    pub storage_capacity_mb: i64,
    /// Name of the template image installed on every storage server.
    pub template_name: String,
    /// Size of the template image (MB).
    pub template_size_mb: i64,
    /// VLAN-table size per router.
    pub max_vlans: i64,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            compute_hosts: 4,
            storage_hosts: 1,
            routers: 1,
            host_mem_mb: 32_768,
            hypervisor: "xen".into(),
            storage_capacity_mb: 300_000,
            template_name: "template-linux".into(),
            template_size_mb: 8_192,
            max_vlans: 4_094,
        }
    }
}

impl TopologySpec {
    /// The paper's §6.1 scale: 12,500 compute servers (8 × 2 GB VMs each =
    /// 100,000 VMs), 3,125 storage servers (1 per 4 compute servers).
    pub fn paper_scale() -> Self {
        TopologySpec {
            compute_hosts: 12_500,
            storage_hosts: 3_125,
            routers: 8,
            host_mem_mb: 16_384,
            ..Default::default()
        }
    }

    /// Path of compute server `i`.
    pub fn host_path(i: usize) -> Path {
        Path::parse(&format!("/vmRoot/host{i}")).expect("static shape")
    }

    /// Path of storage server `i`.
    pub fn storage_path(i: usize) -> Path {
        Path::parse(&format!("/storageRoot/storage{i}")).expect("static shape")
    }

    /// Path of router `i`.
    pub fn router_path(i: usize) -> Path {
        Path::parse(&format!("/netRoot/router{i}")).expect("static shape")
    }

    /// The storage server paired with compute server `host` (4:1 as in the
    /// paper's §6.1 setup).
    pub fn storage_for_host(&self, host: usize) -> usize {
        if self.storage_hosts == 0 {
            0
        } else {
            (host / 4).min(self.storage_hosts - 1)
        }
    }

    /// The scaffolding above device mounts: root, `vmRoot`, `storageRoot`,
    /// `netRoot`.
    pub fn frame(&self) -> Tree {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new(VM_ROOT))
            .expect("fresh tree");
        t.insert(
            &Path::parse("/storageRoot").unwrap(),
            Node::new(STORAGE_ROOT),
        )
        .expect("fresh tree");
        t.insert(&Path::parse("/netRoot").unwrap(), Node::new(NET_ROOT))
            .expect("fresh tree");
        t
    }

    /// Builds the initial logical tree: every host, storage server (with its
    /// template image), and router, with no VMs yet.
    pub fn build_tree(&self) -> Tree {
        let mut t = self.frame();
        for i in 0..self.compute_hosts {
            t.insert(
                &Self::host_path(i),
                Node::new(VM_HOST)
                    .with_attr("hypervisor", self.hypervisor.as_str())
                    .with_attr("memCapacity", self.host_mem_mb)
                    .with_attr("importedImages", Vec::<String>::new()),
            )
            .expect("unique host names");
        }
        for i in 0..self.storage_hosts {
            t.insert(
                &Self::storage_path(i),
                Node::new(STORAGE_HOST)
                    .with_attr("capacityMb", self.storage_capacity_mb)
                    .with_attr("usedMb", self.template_size_mb),
            )
            .expect("unique storage names");
            t.insert(
                &Self::storage_path(i).join(&self.template_name),
                Node::new(IMAGE)
                    .with_attr("sizeMb", self.template_size_mb)
                    .with_attr("template", true)
                    .with_attr("exported", false),
            )
            .expect("template under fresh storage");
        }
        for i in 0..self.routers {
            t.insert(
                &Self::router_path(i),
                Node::new(ROUTER).with_attr("maxVlans", self.max_vlans),
            )
            .expect("unique router names");
        }
        t
    }

    /// Builds the simulated devices mirroring [`TopologySpec::build_tree`].
    pub fn build_devices(&self, latency: &LatencyModel) -> TCloudDevices {
        let registry = Arc::new(DeviceRegistry::new(self.frame()));
        let mut computes = Vec::with_capacity(self.compute_hosts);
        for i in 0..self.compute_hosts {
            let dev = Arc::new(ComputeServer::new(
                Self::host_path(i),
                self.hypervisor.clone(),
                self.host_mem_mb,
                latency.clone(),
            ));
            registry.register(Arc::<ComputeServer>::clone(&dev));
            computes.push(dev);
        }
        let mut storages = Vec::with_capacity(self.storage_hosts);
        for i in 0..self.storage_hosts {
            let dev = Arc::new(StorageServer::new(
                Self::storage_path(i),
                self.storage_capacity_mb,
                latency.clone(),
            ));
            dev.install_template(&self.template_name, self.template_size_mb);
            registry.register(Arc::<StorageServer>::clone(&dev));
            storages.push(dev);
        }
        let mut routers = Vec::with_capacity(self.routers);
        for i in 0..self.routers {
            let dev = Arc::new(Router::new(
                Self::router_path(i),
                self.max_vlans as usize,
                latency.clone(),
            ));
            registry.register(Arc::<Router>::clone(&dev));
            routers.push(dev);
        }
        TCloudDevices {
            registry,
            computes,
            storages,
            routers,
        }
    }

    /// Assembles the complete [`ServiceDefinition`] for this topology.
    pub fn service(&self) -> ServiceDefinition {
        ServiceDefinition {
            actions: actions::all(),
            procs: crate::procs::all(),
            constraints: constraints::all(),
            repair_rules: repair::rules(),
            schemas: schemas(),
            initial_tree: self.build_tree(),
        }
    }

    /// Standard `spawnVM` arguments for VM `vm_name` on host `host`, using
    /// the paired storage server.
    pub fn spawn_args(&self, vm_name: &str, host: usize, mem: i64) -> Vec<Value> {
        vec![
            Value::from(vm_name),
            Value::from(self.template_name.as_str()),
            Value::Int(mem),
            Value::from(Self::storage_path(self.storage_for_host(host)).to_string()),
            Value::from(Self::host_path(host).to_string()),
        ]
    }
}

/// The simulated devices of a TCloud deployment, with typed handles for
/// fault injection and out-of-band mutation in tests and experiments.
pub struct TCloudDevices {
    /// The registry the platform's physical workers route through.
    pub registry: Arc<DeviceRegistry>,
    /// Compute servers, indexed like `host{i}`.
    pub computes: Vec<Arc<ComputeServer>>,
    /// Storage servers, indexed like `storage{i}`.
    pub storages: Vec<Arc<StorageServer>>,
    /// Routers, indexed like `router{i}`.
    pub routers: Vec<Arc<Router>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_matches_spec() {
        let spec = TopologySpec {
            compute_hosts: 3,
            storage_hosts: 2,
            routers: 1,
            ..Default::default()
        };
        let t = spec.build_tree();
        // root + 3 family roots + 3 hosts + 2 storage + 2 templates + 1 router.
        assert_eq!(t.node_count(), 1 + 3 + 3 + 2 + 2 + 1);
        schemas().validate(&t).unwrap();
        constraints::all().check_all(&t).unwrap();
    }

    #[test]
    fn devices_mirror_tree() {
        let spec = TopologySpec {
            compute_hosts: 2,
            storage_hosts: 1,
            routers: 1,
            ..Default::default()
        };
        let devices = spec.build_devices(&LatencyModel::zero());
        let physical = devices.registry.physical_tree();
        let logical = spec.build_tree();
        let diffs = logical.diff(&physical, &Path::root());
        assert!(diffs.is_empty(), "fresh layers must agree: {diffs:?}");
    }

    #[test]
    fn storage_pairing_is_4_to_1() {
        let spec = TopologySpec {
            compute_hosts: 12,
            storage_hosts: 3,
            ..Default::default()
        };
        assert_eq!(spec.storage_for_host(0), 0);
        assert_eq!(spec.storage_for_host(3), 0);
        assert_eq!(spec.storage_for_host(4), 1);
        assert_eq!(spec.storage_for_host(11), 2);
        // Clamped when hosts outnumber 4×storage.
        assert_eq!(spec.storage_for_host(100), 2);
    }

    #[test]
    fn paper_scale_shape() {
        let spec = TopologySpec::paper_scale();
        assert_eq!(spec.compute_hosts, 12_500);
        assert_eq!(spec.storage_hosts, 3_125);
        // 8 VMs × 2048 MB fit in a host.
        assert!(8 * 2_048 <= spec.host_mem_mb);
    }

    #[test]
    fn spawn_args_shape() {
        let spec = TopologySpec::default();
        let args = spec.spawn_args("vm1", 2, 2_048);
        assert_eq!(args[0].as_str(), Some("vm1"));
        assert_eq!(args[3].as_str(), Some("/storageRoot/storage0"));
        assert_eq!(args[4].as_str(), Some("/vmRoot/host2"));
    }

    #[test]
    fn service_definition_assembles() {
        let svc = TopologySpec::default().service();
        assert!(!svc.actions.is_empty());
        assert!(!svc.procs.is_empty());
        assert!(!svc.constraints.is_empty());
        assert!(!svc.repair_rules.is_empty());
        svc.schemas.validate(&svc.initial_tree).unwrap();
    }
}

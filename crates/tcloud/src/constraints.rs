//! TCloud's safety constraints (paper §2.1, §6.2).
//!
//! The two constraints the paper evaluates are here — VM memory (aggregate
//! VM memory cannot exceed a host's capacity) and VM type (a VM cannot run
//! on a host with a different hypervisor) — plus storage-capacity and
//! VLAN-table constraints that guard the other resource families.

use std::sync::Arc;

use tropic_model::{Constraint, ConstraintSet, FnConstraint, Path, Tree, Value};

use crate::model::{ROUTER, STORAGE_HOST, VM_HOST};

/// VM memory constraint (paper §6.2): the sum of child VM memory must not
/// exceed the host's `memCapacity`.
pub fn vm_memory() -> Arc<dyn Constraint> {
    Arc::new(
        FnConstraint::new("vm-memory", VM_HOST, |tree: &Tree, anchor: &Path| {
            let host = tree.get(anchor).expect("anchor exists");
            let capacity = host.attr_int("memCapacity").unwrap_or(0);
            let used: i64 = host
                .children()
                .filter_map(|(_, vm)| vm.attr_int("mem"))
                .sum();
            if used > capacity {
                Err(format!(
                    "aggregate VM memory {used} MB exceeds host capacity {capacity} MB"
                ))
            } else {
                Ok(())
            }
        })
        .describe("Aggregated VM memory cannot exceed the host's physical memory."),
    )
}

/// VM type constraint (paper §6.2): every VM on a host must match the
/// host's hypervisor; VM migration across hypervisors violates this at the
/// destination.
pub fn vm_type() -> Arc<dyn Constraint> {
    Arc::new(
        FnConstraint::new("vm-type", VM_HOST, |tree: &Tree, anchor: &Path| {
            let host = tree.get(anchor).expect("anchor exists");
            let host_hv = host.attr_str("hypervisor").unwrap_or("");
            for (name, vm) in host.children() {
                let vm_hv = vm.attr_str("hypervisor").unwrap_or(host_hv);
                if vm_hv != host_hv {
                    return Err(format!(
                        "VM `{name}` was built for hypervisor `{vm_hv}` but host runs `{host_hv}`"
                    ));
                }
            }
            Ok(())
        })
        .describe("VMs cannot run (or be migrated to) a host with an incompatible hypervisor."),
    )
}

/// Storage-capacity constraint: image sizes must fit the server's capacity.
pub fn storage_capacity() -> Arc<dyn Constraint> {
    Arc::new(
        FnConstraint::new(
            "storage-capacity",
            STORAGE_HOST,
            |tree: &Tree, anchor: &Path| {
                let host = tree.get(anchor).expect("anchor exists");
                let capacity = host.attr_int("capacityMb").unwrap_or(0);
                let used: i64 = host
                    .children()
                    .filter_map(|(_, img)| img.attr_int("sizeMb"))
                    .sum();
                if used > capacity {
                    Err(format!(
                        "images occupy {used} MB, exceeding capacity {capacity} MB"
                    ))
                } else {
                    Ok(())
                }
            },
        )
        .describe("Aggregated image size cannot exceed the storage server's capacity."),
    )
}

/// VLAN-table constraint: a router cannot hold more VLANs than its hardware
/// table allows.
pub fn vlan_capacity() -> Arc<dyn Constraint> {
    Arc::new(
        FnConstraint::new("vlan-capacity", ROUTER, |tree: &Tree, anchor: &Path| {
            let router = tree.get(anchor).expect("anchor exists");
            let max = router.attr_int("maxVlans").unwrap_or(0) as usize;
            let used = router.child_count();
            if used > max {
                Err(format!("{used} VLANs configured, table holds {max}"))
            } else {
                Ok(())
            }
        })
        .describe("A router's VLAN table is finite."),
    )
}

/// VLAN id uniqueness within a router.
pub fn vlan_id_unique() -> Arc<dyn Constraint> {
    Arc::new(
        FnConstraint::new("vlan-id-unique", ROUTER, |tree: &Tree, anchor: &Path| {
            let router = tree.get(anchor).expect("anchor exists");
            let mut seen = std::collections::BTreeSet::new();
            for (name, vlan) in router.children() {
                let id = vlan.attr("id").and_then(Value::as_int).unwrap_or(-1);
                if !seen.insert(id) {
                    return Err(format!("VLAN `{name}` duplicates id {id}"));
                }
            }
            Ok(())
        })
        .describe("VLAN ids are unique per router."),
    )
}

/// The full TCloud constraint set.
pub fn all() -> ConstraintSet {
    let mut set = ConstraintSet::new();
    set.register(vm_memory());
    set.register(vm_type());
    set.register(storage_capacity());
    set.register(vlan_capacity());
    set.register(vlan_id_unique());
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use tropic_model::Node;

    fn host_tree(capacity: i64, vms: &[(&str, i64, &str)]) -> (Tree, Path) {
        let mut t = Tree::new();
        let h = Path::parse("/vmRoot/h0").unwrap();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        t.insert(
            &h,
            Node::new(VM_HOST)
                .with_attr("hypervisor", "xen")
                .with_attr("memCapacity", capacity),
        )
        .unwrap();
        for (name, mem, hv) in vms {
            t.insert(
                &h.join(name),
                Node::new("vm")
                    .with_attr("image", "img")
                    .with_attr("mem", *mem)
                    .with_attr("state", "stopped")
                    .with_attr("hypervisor", *hv),
            )
            .unwrap();
        }
        (t, h)
    }

    #[test]
    fn memory_within_capacity_ok() {
        let (t, h) = host_tree(8192, &[("vm1", 4096, "xen"), ("vm2", 4096, "xen")]);
        vm_memory().check(&t, &h).unwrap();
    }

    #[test]
    fn memory_over_capacity_fails() {
        let (t, h) = host_tree(8192, &[("vm1", 4096, "xen"), ("vm2", 4097, "xen")]);
        let err = vm_memory().check(&t, &h).unwrap_err();
        assert!(err.message.contains("exceeds"));
        assert_eq!(err.constraint, "vm-memory");
    }

    #[test]
    fn hypervisor_mismatch_fails() {
        let (t, h) = host_tree(8192, &[("vm1", 1024, "kvm")]);
        let err = vm_type().check(&t, &h).unwrap_err();
        assert!(err.message.contains("kvm"));
        let (t2, h2) = host_tree(8192, &[("vm1", 1024, "xen")]);
        vm_type().check(&t2, &h2).unwrap();
    }

    #[test]
    fn storage_capacity_enforced() {
        let mut t = Tree::new();
        let s = Path::parse("/storageRoot/s0").unwrap();
        t.insert(
            &Path::parse("/storageRoot").unwrap(),
            Node::new("storageRoot"),
        )
        .unwrap();
        t.insert(
            &s,
            Node::new(STORAGE_HOST)
                .with_attr("capacityMb", 10_000i64)
                .with_attr("usedMb", 0i64),
        )
        .unwrap();
        t.insert(
            &s.join("a"),
            Node::new("image")
                .with_attr("sizeMb", 9_000i64)
                .with_attr("template", false)
                .with_attr("exported", false),
        )
        .unwrap();
        storage_capacity().check(&t, &s).unwrap();
        t.insert(
            &s.join("b"),
            Node::new("image")
                .with_attr("sizeMb", 2_000i64)
                .with_attr("template", false)
                .with_attr("exported", false),
        )
        .unwrap();
        assert!(storage_capacity().check(&t, &s).is_err());
    }

    #[test]
    fn vlan_constraints() {
        let mut t = Tree::new();
        let r = Path::parse("/netRoot/r0").unwrap();
        t.insert(&Path::parse("/netRoot").unwrap(), Node::new("netRoot"))
            .unwrap();
        t.insert(&r, Node::new(ROUTER).with_attr("maxVlans", 2i64))
            .unwrap();
        let vlan = |id: i64| {
            Node::new("vlan")
                .with_attr("id", id)
                .with_attr("ports", Vec::<String>::new())
        };
        t.insert(&r.join("vlan1"), vlan(1)).unwrap();
        t.insert(&r.join("vlan2"), vlan(2)).unwrap();
        vlan_capacity().check(&t, &r).unwrap();
        vlan_id_unique().check(&t, &r).unwrap();
        t.insert(&r.join("vlan3"), vlan(3)).unwrap();
        assert!(vlan_capacity().check(&t, &r).is_err());
        t.remove(&r.join("vlan3")).unwrap();
        t.insert(&r.join("vlanDup"), vlan(2)).unwrap();
        assert!(vlan_id_unique().check(&t, &r).is_err());
    }

    #[test]
    fn full_set_registers_all() {
        let set = all();
        assert_eq!(set.len(), 5);
        assert!(set.anchors_at(VM_HOST));
        assert!(set.anchors_at(STORAGE_HOST));
        assert!(set.anchors_at(ROUTER));
    }
}

//! # tropic-tcloud
//!
//! TCloud: the EC2-like IaaS service the TROPIC paper builds on top of the
//! platform (§5). It contributes everything a TROPIC service provides:
//!
//! * entity **schemas** for compute/storage/network resources ([`model`]),
//! * **actions** defined twice — logical effect + device call — with
//!   automatic undo derivation ([`actions`]),
//! * **stored procedures**: `spawnVM` (the paper's Table 1), `spawnVMAuto`,
//!   `startVM`, `stopVM`, `destroyVM`, `migrateVM`, `spawnVMNet`
//!   ([`procs`]),
//! * **constraints**: VM memory and VM type (§6.2) plus storage and VLAN
//!   guards ([`constraints`]),
//! * **repair rules** reconciling device drift (§4) ([`repair`]),
//! * a **topology builder** matching the paper's deployment shapes
//!   ([`topology`]).
//!
//! ```
//! use tropic_tcloud::TopologySpec;
//!
//! let spec = TopologySpec { compute_hosts: 8, storage_hosts: 2, ..Default::default() };
//! let service = spec.service();
//! assert_eq!(service.procs.names().len(), 7);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod actions;
pub mod constraints;
pub mod model;
pub mod procs;
pub mod repair;
pub mod topology;

pub use procs::image_name;
pub use topology::{TCloudDevices, TopologySpec};

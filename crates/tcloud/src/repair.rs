//! TCloud's repair rules (paper §4).
//!
//! Each rule translates one logical-vs-physical difference into corrective
//! device calls that drive the physical layer back toward the logical
//! layer's view. The paper's motivating case — a compute server reboots and
//! its VMs show "stopped" physically while "running" logically — maps to
//! the VM power rule, which emits `startVM` calls.

use tropic_core::RepairRules;
use tropic_devices::ActionCall;
use tropic_model::{DiffEntry, Tree, Value};

use crate::model::{IMAGE, STATE_RUNNING, STATE_STOPPED, VLAN, VM};

fn str_of(v: &Option<Value>) -> Option<&str> {
    v.as_ref().and_then(Value::as_str)
}

fn list_of(v: &Option<Value>) -> Vec<String> {
    v.as_ref()
        .and_then(Value::as_list)
        .map(|l| {
            l.iter()
                .filter_map(Value::as_str)
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default()
}

/// VM power drift: logical `running` vs physical `stopped` → `startVM`
/// (the §4 reboot scenario), and the reverse → `stopVM`.
fn vm_power_rule(diff: &DiffEntry, logical: &Tree) -> Vec<ActionCall> {
    let DiffEntry::AttrChanged {
        path,
        attr,
        left,
        right,
    } = diff
    else {
        return Vec::new();
    };
    if attr != "state" || logical.get(path).map(|n| n.entity()) != Some(VM) {
        return Vec::new();
    }
    let Some(host) = path.parent() else {
        return Vec::new();
    };
    let vm = path.leaf().expect("vm has a name").to_owned();
    match (str_of(left), str_of(right)) {
        (Some(STATE_RUNNING), Some(STATE_STOPPED)) => {
            vec![ActionCall::new(host, "startVM", vec![Value::from(vm)])]
        }
        (Some(STATE_STOPPED), Some(STATE_RUNNING)) => {
            vec![ActionCall::new(host, "stopVM", vec![Value::from(vm)])]
        }
        _ => Vec::new(),
    }
}

/// A VM missing physically (e.g. wiped by an operator) → recreate it from
/// the logical attributes, restarting it if the logical state is running.
fn vm_missing_rule(diff: &DiffEntry, logical: &Tree) -> Vec<ActionCall> {
    let DiffEntry::NodeRemoved { path, entity } = diff else {
        return Vec::new();
    };
    if entity != VM {
        return Vec::new();
    }
    let Some(node) = logical.get(path) else {
        return Vec::new();
    };
    let Some(host) = path.parent() else {
        return Vec::new();
    };
    let vm = path.leaf().expect("named").to_owned();
    let mut calls = vec![ActionCall::new(
        host.clone(),
        "createVM",
        vec![
            Value::from(vm.clone()),
            Value::from(node.attr_str("image").unwrap_or("")),
            Value::Int(node.attr_int("mem").unwrap_or(0)),
        ],
    )];
    if node.attr_str("state") == Some(STATE_RUNNING) {
        calls.push(ActionCall::new(host, "startVM", vec![Value::from(vm)]));
    }
    calls
}

/// A VM present physically but unknown logically (rogue out-of-band
/// creation) → stop and remove it; the logical layer is authoritative.
fn vm_rogue_rule(diff: &DiffEntry, _logical: &Tree) -> Vec<ActionCall> {
    let DiffEntry::NodeAdded { path, entity } = diff else {
        return Vec::new();
    };
    if entity != VM {
        return Vec::new();
    }
    let Some(host) = path.parent() else {
        return Vec::new();
    };
    let vm = path.leaf().expect("named").to_owned();
    vec![
        // The stop may fail when the rogue VM is already stopped; repair
        // convergence is judged by the re-diff, not by individual calls.
        ActionCall::new(host.clone(), "stopVM", vec![Value::from(vm.clone())]),
        ActionCall::new(host, "removeVM", vec![Value::from(vm)]),
    ]
}

/// Image export drift → export/unexport; missing image → restore from
/// logical metadata; rogue image → remove.
fn image_rule(diff: &DiffEntry, logical: &Tree) -> Vec<ActionCall> {
    match diff {
        DiffEntry::AttrChanged {
            path, attr, left, ..
        } if attr == "exported" => {
            if logical.get(path).map(|n| n.entity()) != Some(IMAGE) {
                return Vec::new();
            }
            let Some(storage) = path.parent() else {
                return Vec::new();
            };
            let image = path.leaf().expect("named").to_owned();
            let action = if left.as_ref().and_then(Value::as_bool) == Some(true) {
                "exportImage"
            } else {
                "unexportImage"
            };
            vec![ActionCall::new(storage, action, vec![Value::from(image)])]
        }
        DiffEntry::NodeRemoved { path, entity } if entity == IMAGE => {
            let Some(node) = logical.get(path) else {
                return Vec::new();
            };
            let Some(storage) = path.parent() else {
                return Vec::new();
            };
            vec![ActionCall::new(
                storage,
                "restoreImage",
                vec![
                    Value::from(path.leaf().expect("named")),
                    Value::Int(node.attr_int("sizeMb").unwrap_or(0)),
                    Value::Bool(node.attr_bool("template").unwrap_or(false)),
                    Value::Bool(node.attr_bool("exported").unwrap_or(false)),
                ],
            )]
        }
        DiffEntry::NodeAdded { path, entity } if entity == IMAGE => {
            let Some(storage) = path.parent() else {
                return Vec::new();
            };
            let image = path.leaf().expect("named").to_owned();
            vec![
                ActionCall::new(
                    storage.clone(),
                    "unexportImage",
                    vec![Value::from(image.clone())],
                ),
                ActionCall::new(storage, "removeImage", vec![Value::from(image)]),
            ]
        }
        _ => Vec::new(),
    }
}

/// Imported-image set drift on a compute server → import/unimport the set
/// difference.
fn imported_images_rule(diff: &DiffEntry, _logical: &Tree) -> Vec<ActionCall> {
    let DiffEntry::AttrChanged {
        path,
        attr,
        left,
        right,
    } = diff
    else {
        return Vec::new();
    };
    if attr != "importedImages" {
        return Vec::new();
    }
    let want = list_of(left);
    let have = list_of(right);
    let mut calls = Vec::new();
    for image in want.iter().filter(|i| !have.contains(i)) {
        calls.push(ActionCall::new(
            path.clone(),
            "importImage",
            vec![Value::from(image.as_str())],
        ));
    }
    for image in have.iter().filter(|i| !want.contains(i)) {
        calls.push(ActionCall::new(
            path.clone(),
            "unimportImage",
            vec![Value::from(image.as_str())],
        ));
    }
    calls
}

/// VLAN drift: missing VLAN → recreate (with its ports); rogue VLAN →
/// remove; port-set drift → attach/detach the difference.
fn vlan_rule(diff: &DiffEntry, logical: &Tree) -> Vec<ActionCall> {
    match diff {
        DiffEntry::NodeRemoved { path, entity } if entity == VLAN => {
            let Some(node) = logical.get(path) else {
                return Vec::new();
            };
            let Some(router) = path.parent() else {
                return Vec::new();
            };
            let id = node.attr_int("id").unwrap_or(0);
            let mut calls = vec![ActionCall::new(
                router.clone(),
                "createVlan",
                vec![Value::Int(id)],
            )];
            for port in list_of(&node.attr("ports").cloned()) {
                calls.push(ActionCall::new(
                    router.clone(),
                    "attachPort",
                    vec![Value::Int(id), Value::from(port)],
                ));
            }
            calls
        }
        DiffEntry::NodeAdded { path, entity } if entity == VLAN => {
            let Some(router) = path.parent() else {
                return Vec::new();
            };
            let id: i64 = path
                .leaf()
                .and_then(|n| n.strip_prefix("vlan"))
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            vec![ActionCall::new(router, "removeVlan", vec![Value::Int(id)])]
        }
        DiffEntry::AttrChanged {
            path,
            attr,
            left,
            right,
        } if attr == "ports" => {
            if logical.get(path).map(|n| n.entity()) != Some(VLAN) {
                return Vec::new();
            }
            let Some(router) = path.parent() else {
                return Vec::new();
            };
            let id = logical
                .attr(path, "id")
                .and_then(Value::as_int)
                .unwrap_or(0);
            let want = list_of(left);
            let have = list_of(right);
            let mut calls = Vec::new();
            for port in want.iter().filter(|p| !have.contains(p)) {
                calls.push(ActionCall::new(
                    router.clone(),
                    "attachPort",
                    vec![Value::Int(id), Value::from(port.as_str())],
                ));
            }
            for port in have.iter().filter(|p| !want.contains(p)) {
                calls.push(ActionCall::new(
                    router.clone(),
                    "detachPort",
                    vec![Value::Int(id), Value::from(port.as_str())],
                ));
            }
            calls
        }
        _ => Vec::new(),
    }
}

/// The full TCloud repair rule set.
pub fn rules() -> RepairRules {
    let mut rules = RepairRules::new();
    rules.register(vm_power_rule);
    rules.register(vm_missing_rule);
    rules.register(vm_rogue_rule);
    rules.register(image_rule);
    rules.register(imported_images_rule);
    rules.register(vlan_rule);
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologySpec;
    use tropic_devices::LatencyModel;
    use tropic_model::Path;

    /// Builds matching layers, applies `mutate` to the devices, and returns
    /// the planned repair calls.
    fn plan_after(
        mutate: impl FnOnce(&crate::topology::TCloudDevices),
    ) -> (Vec<ActionCall>, Vec<DiffEntry>) {
        let spec = TopologySpec {
            compute_hosts: 1,
            storage_hosts: 1,
            routers: 1,
            ..Default::default()
        };
        let devices = spec.build_devices(&LatencyModel::zero());
        // Bring both layers to a common state with one VM running.
        let h0 = TopologySpec::host_path(0);
        let s0 = TopologySpec::storage_path(0);
        for (object, action, args) in [
            (
                &s0,
                "cloneImage",
                vec![Value::from("template-linux"), Value::from("vm1-img")],
            ),
            (&s0, "exportImage", vec![Value::from("vm1-img")]),
            (&h0, "importImage", vec![Value::from("vm1-img")]),
            (
                &h0,
                "createVM",
                vec![Value::from("vm1"), Value::from("vm1-img"), Value::Int(2048)],
            ),
            (&h0, "startVM", vec![Value::from("vm1")]),
        ] {
            devices
                .registry
                .invoke(&ActionCall::new(object.clone(), action, args))
                .unwrap();
        }
        let logical = devices.registry.physical_tree();
        mutate(&devices);
        let physical = devices.registry.physical_tree();
        let diffs = logical.diff(&physical, &Path::root());
        let plan = rules().plan(&diffs, &logical);
        (plan.actions, plan.unmatched)
    }

    #[test]
    fn reboot_scenario_starts_vms() {
        // The paper's §4 example: host reboot powers VMs off.
        let (actions, unmatched) = plan_after(|d| {
            d.computes[0].oob_power_cycle();
        });
        assert!(unmatched.is_empty());
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].action, "startVM");
        assert_eq!(actions[0].args[0].as_str(), Some("vm1"));
    }

    #[test]
    fn deleted_vm_is_recreated_and_started() {
        let (actions, _) = plan_after(|d| {
            d.computes[0].oob_remove_vm("vm1");
        });
        let names: Vec<&str> = actions.iter().map(|c| c.action.as_str()).collect();
        assert_eq!(names, vec!["createVM", "startVM"]);
    }

    #[test]
    fn rogue_vm_is_removed() {
        let (actions, _) = plan_after(|d| {
            d.computes[0].oob_create_vm("rogue", "vm1-img", 512, true);
        });
        let names: Vec<&str> = actions.iter().map(|c| c.action.as_str()).collect();
        assert_eq!(names, vec!["stopVM", "removeVM"]);
        assert_eq!(actions[0].args[0].as_str(), Some("rogue"));
    }

    #[test]
    fn lost_image_is_restored() {
        let (actions, _) = plan_after(|d| {
            // Losing an image also loses its export flag.
            d.storages[0].oob_lose_image("vm1-img");
        });
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].action, "restoreImage");
        // Restored as exported=true, matching the logical layer.
        assert_eq!(actions[0].args[3], Value::Bool(true));
    }

    #[test]
    fn cleared_vlans_are_rebuilt() {
        let spec = TopologySpec {
            compute_hosts: 1,
            storage_hosts: 1,
            routers: 1,
            ..Default::default()
        };
        let devices = spec.build_devices(&LatencyModel::zero());
        let r0 = TopologySpec::router_path(0);
        devices
            .registry
            .invoke(&ActionCall::new(
                r0.clone(),
                "createVlan",
                vec![Value::Int(7)],
            ))
            .unwrap();
        devices
            .registry
            .invoke(&ActionCall::new(
                r0.clone(),
                "attachPort",
                vec![Value::Int(7), Value::from("p1")],
            ))
            .unwrap();
        let logical = devices.registry.physical_tree();
        devices.routers[0].oob_clear_vlans();
        let physical = devices.registry.physical_tree();
        let plan = rules().plan(&logical.diff(&physical, &Path::root()), &logical);
        let names: Vec<&str> = plan.actions.iter().map(|c| c.action.as_str()).collect();
        assert_eq!(names, vec!["createVlan", "attachPort"]);
    }

    #[test]
    fn executing_plan_converges_layers() {
        let spec = TopologySpec {
            compute_hosts: 1,
            storage_hosts: 1,
            routers: 1,
            ..Default::default()
        };
        let devices = spec.build_devices(&LatencyModel::zero());
        let h0 = TopologySpec::host_path(0);
        let s0 = TopologySpec::storage_path(0);
        for (object, action, args) in [
            (
                &s0,
                "cloneImage",
                vec![Value::from("template-linux"), Value::from("vm1-img")],
            ),
            (&s0, "exportImage", vec![Value::from("vm1-img")]),
            (&h0, "importImage", vec![Value::from("vm1-img")]),
            (
                &h0,
                "createVM",
                vec![Value::from("vm1"), Value::from("vm1-img"), Value::Int(2048)],
            ),
            (&h0, "startVM", vec![Value::from("vm1")]),
        ] {
            devices
                .registry
                .invoke(&ActionCall::new(object.clone(), action, args))
                .unwrap();
        }
        let logical = devices.registry.physical_tree();
        devices.computes[0].oob_power_cycle();
        devices.computes[0].oob_create_vm("rogue", "vm1-img", 256, false);
        let physical = devices.registry.physical_tree();
        let plan = rules().plan(&logical.diff(&physical, &Path::root()), &logical);
        for call in &plan.actions {
            // Some calls may legitimately fail (stopVM on a stopped rogue);
            // convergence is judged by the re-diff below.
            let _ = devices.registry.invoke(call);
        }
        let after = devices.registry.physical_tree();
        assert!(
            logical.diff(&after, &Path::root()).is_empty(),
            "repair must converge the layers"
        );
    }
}

//! TCloud's stored procedures (paper §5): spawn, start, stop, destroy,
//! and migrate VMs.
//!
//! `spawnVM` reproduces the paper's Table 1 exactly: five actions
//! (cloneImage, exportImage, importImage, createVM, startVM) whose undo
//! column (removeImage, unexportImage, unimportImage, removeVM, stopVM) is
//! derived automatically by the action definitions.

use std::sync::Arc;

use tropic_core::{FnProcedure, ProcError, ProcRegistry, StoredProcedure, TxnContext};
use tropic_model::{Path, Value};

use crate::model::{STATE_RUNNING, VM, VM_HOST};

/// Derives the per-VM image name used by spawn/destroy/migrate.
pub fn image_name(vm_name: &str) -> String {
    format!("{vm_name}-img")
}

fn parse_path(ctx: &TxnContext<'_>, i: usize) -> Result<Path, ProcError> {
    let s = ctx.arg_str(i)?;
    Path::parse(&s).map_err(|e| ProcError::Logic(format!("argument {i}: {e}")))
}

/// `spawnVM [vmName, template, mem, storageHostPath, vmHostPath]`
///
/// The paper's flagship example (§2.1, Table 1): clone a template image on
/// a storage server, export it, import it on the chosen compute server,
/// create the VM, and start it.
pub fn spawn_vm() -> Arc<dyn StoredProcedure> {
    Arc::new(
        FnProcedure::new("spawnVM", |ctx: &mut TxnContext<'_>| {
            let vm_name = ctx.arg_str(0)?;
            let template = ctx.arg_str(1)?;
            let mem = ctx.arg_int(2)?;
            let storage = parse_path(ctx, 3)?;
            let host = parse_path(ctx, 4)?;
            let image = image_name(&vm_name);
            ctx.act(
                &storage,
                "cloneImage",
                vec![Value::from(template), Value::from(image.clone())],
            )?;
            ctx.act(&storage, "exportImage", vec![Value::from(image.clone())])?;
            ctx.act(&host, "importImage", vec![Value::from(image.clone())])?;
            ctx.act(
                &host,
                "createVM",
                vec![
                    Value::from(vm_name.clone()),
                    Value::from(image),
                    Value::Int(mem),
                ],
            )?;
            ctx.act(&host, "startVM", vec![Value::from(vm_name)])?;
            Ok(())
        })
        .describe("Spawns a VM from a template (paper Table 1)."),
    )
}

/// `spawnVMAuto [vmName, template, mem]`
///
/// Placement variant: picks the first compute server with enough free
/// memory and a storage server holding the template with enough capacity,
/// then runs the same five actions. The reads are heuristic (`peek`); the
/// memory and capacity constraints re-validate the choice under locks.
pub fn spawn_vm_auto() -> Arc<dyn StoredProcedure> {
    Arc::new(
        FnProcedure::new("spawnVMAuto", |ctx: &mut TxnContext<'_>| {
            let vm_name = ctx.arg_str(0)?;
            let template = ctx.arg_str(1)?;
            let mem = ctx.arg_int(2)?;
            let image = image_name(&vm_name);

            let host = ctx
                .peek(|tree| {
                    let vm_root = Path::parse("/vmRoot").ok()?;
                    let root = tree.get(&vm_root)?;
                    for (name, host) in root.children() {
                        if host.entity() != VM_HOST {
                            continue;
                        }
                        let cap = host.attr_int("memCapacity").unwrap_or(0);
                        let used: i64 = host
                            .children()
                            .filter_map(|(_, vm)| vm.attr_int("mem"))
                            .sum();
                        if used + mem <= cap {
                            return Some(vm_root.join(name));
                        }
                    }
                    None
                })
                .ok_or_else(|| {
                    ProcError::Logic("no compute server has enough free memory".into())
                })?;

            let template_for_search = template.clone();
            let storage = ctx
                .peek(|tree| {
                    let storage_root = Path::parse("/storageRoot").ok()?;
                    let root = tree.get(&storage_root)?;
                    for (name, server) in root.children() {
                        let has_template = server
                            .child(&template_for_search)
                            .map(|img| img.attr_bool("template") == Some(true))
                            .unwrap_or(false);
                        if !has_template {
                            continue;
                        }
                        let cap = server.attr_int("capacityMb").unwrap_or(0);
                        let used = server.attr_int("usedMb").unwrap_or(0);
                        let tpl_size = server
                            .child(&template_for_search)
                            .and_then(|img| img.attr_int("sizeMb"))
                            .unwrap_or(0);
                        if used + tpl_size <= cap {
                            return Some(storage_root.join(name));
                        }
                    }
                    None
                })
                .ok_or_else(|| {
                    ProcError::Logic(
                        "no storage server holds the template with spare capacity".into(),
                    )
                })?;

            ctx.act(
                &storage,
                "cloneImage",
                vec![Value::from(template), Value::from(image.clone())],
            )?;
            ctx.act(&storage, "exportImage", vec![Value::from(image.clone())])?;
            ctx.act(&host, "importImage", vec![Value::from(image.clone())])?;
            ctx.act(
                &host,
                "createVM",
                vec![
                    Value::from(vm_name.clone()),
                    Value::from(image),
                    Value::Int(mem),
                ],
            )?;
            ctx.act(&host, "startVM", vec![Value::from(vm_name)])?;
            Ok(())
        })
        .describe("Spawns a VM with automatic placement."),
    )
}

/// `startVM [vmHostPath, vmName]`.
pub fn start_vm() -> Arc<dyn StoredProcedure> {
    Arc::new(
        FnProcedure::new("startVM", |ctx: &mut TxnContext<'_>| {
            let host = parse_path(ctx, 0)?;
            let vm_name = ctx.arg_str(1)?;
            ctx.act(&host, "startVM", vec![Value::from(vm_name)])?;
            Ok(())
        })
        .describe("Starts a stopped VM."),
    )
}

/// `stopVM [vmHostPath, vmName]`.
pub fn stop_vm() -> Arc<dyn StoredProcedure> {
    Arc::new(
        FnProcedure::new("stopVM", |ctx: &mut TxnContext<'_>| {
            let host = parse_path(ctx, 0)?;
            let vm_name = ctx.arg_str(1)?;
            ctx.act(&host, "stopVM", vec![Value::from(vm_name)])?;
            Ok(())
        })
        .describe("Stops a running VM."),
    )
}

/// `destroyVM [vmHostPath, vmName, storageHostPath]`
///
/// Tears down everything `spawnVM` built, in reverse: stop (if running),
/// remove the VM, detach the image, withdraw the export, delete the image.
pub fn destroy_vm() -> Arc<dyn StoredProcedure> {
    Arc::new(
        FnProcedure::new("destroyVM", |ctx: &mut TxnContext<'_>| {
            let host = parse_path(ctx, 0)?;
            let vm_name = ctx.arg_str(1)?;
            let storage = parse_path(ctx, 2)?;
            let vm_path = host.join(&vm_name);
            let (state, image) = ctx
                .query(&vm_path, |tree| {
                    let vm = tree.get(&vm_path)?;
                    Some((
                        vm.attr_str("state").unwrap_or("").to_owned(),
                        vm.attr_str("image").unwrap_or("").to_owned(),
                    ))
                })?
                .ok_or_else(|| ProcError::Logic(format!("no VM at {vm_path}")))?;
            if state == STATE_RUNNING {
                ctx.act(&host, "stopVM", vec![Value::from(vm_name.clone())])?;
            }
            ctx.act(&host, "removeVM", vec![Value::from(vm_name)])?;
            ctx.act(&host, "unimportImage", vec![Value::from(image.clone())])?;
            ctx.act(&storage, "unexportImage", vec![Value::from(image.clone())])?;
            ctx.act(&storage, "removeImage", vec![Value::from(image)])?;
            Ok(())
        })
        .describe("Destroys a VM and reclaims its image."),
    )
}

/// `migrateVM [srcHostPath, dstHostPath, vmName]`
///
/// Cold migration decomposed into primitive actions: stop at the source
/// (if running), remove the source configuration, detach the image, attach
/// it at the destination, recreate the VM — preserving the hypervisor the
/// VM was built for, so the VM-type constraint (paper §6.2) rejects
/// cross-hypervisor migrations at the destination — and restart it.
pub fn migrate_vm() -> Arc<dyn StoredProcedure> {
    Arc::new(
        FnProcedure::new("migrateVM", |ctx: &mut TxnContext<'_>| {
            let src = parse_path(ctx, 0)?;
            let dst = parse_path(ctx, 1)?;
            let vm_name = ctx.arg_str(2)?;
            if src == dst {
                return Err(ProcError::Logic(
                    "source and destination are the same host".into(),
                ));
            }
            let vm_path = src.join(&vm_name);
            let (state, image, mem, hv) = ctx
                .query(&vm_path, |tree| {
                    let vm = tree.get(&vm_path)?;
                    if vm.entity() != VM {
                        return None;
                    }
                    Some((
                        vm.attr_str("state").unwrap_or("").to_owned(),
                        vm.attr_str("image").unwrap_or("").to_owned(),
                        vm.attr_int("mem").unwrap_or(0),
                        vm.attr_str("hypervisor").unwrap_or("").to_owned(),
                    ))
                })?
                .ok_or_else(|| ProcError::Logic(format!("no VM at {vm_path}")))?;

            let was_running = state == STATE_RUNNING;
            if was_running {
                ctx.act(&src, "stopVM", vec![Value::from(vm_name.clone())])?;
            }
            ctx.act(&src, "removeVM", vec![Value::from(vm_name.clone())])?;
            ctx.act(&src, "unimportImage", vec![Value::from(image.clone())])?;
            ctx.act(&dst, "importImage", vec![Value::from(image.clone())])?;
            ctx.act(
                &dst,
                "createVM",
                vec![
                    Value::from(vm_name.clone()),
                    Value::from(image),
                    Value::Int(mem),
                    Value::from(hv),
                ],
            )?;
            if was_running {
                ctx.act(&dst, "startVM", vec![Value::from(vm_name)])?;
            }
            Ok(())
        })
        .describe("Migrates a VM between compute servers."),
    )
}

/// `spawnVMNet [vmName, template, mem, storageHostPath, vmHostPath, routerPath, vlanId]`
///
/// The extended spawn of the paper's §2.1 narrative: the five Table-1
/// actions plus VLAN setup on the programmable switch layer for inter-VM
/// communication.
pub fn spawn_vm_net() -> Arc<dyn StoredProcedure> {
    Arc::new(
        FnProcedure::new("spawnVMNet", |ctx: &mut TxnContext<'_>| {
            let vm_name = ctx.arg_str(0)?;
            let template = ctx.arg_str(1)?;
            let mem = ctx.arg_int(2)?;
            let storage = parse_path(ctx, 3)?;
            let host = parse_path(ctx, 4)?;
            let router = parse_path(ctx, 5)?;
            let vlan_id = ctx.arg_int(6)?;
            let image = image_name(&vm_name);
            let port = format!("{vm_name}-eth0");

            ctx.act(
                &storage,
                "cloneImage",
                vec![Value::from(template), Value::from(image.clone())],
            )?;
            ctx.act(&storage, "exportImage", vec![Value::from(image.clone())])?;
            ctx.act(&host, "importImage", vec![Value::from(image.clone())])?;
            ctx.act(
                &host,
                "createVM",
                vec![
                    Value::from(vm_name.clone()),
                    Value::from(image),
                    Value::Int(mem),
                ],
            )?;
            // Create the VLAN if this VM is its first member.
            let vlan_exists = ctx.peek(|tree| tree.exists(&router.join(&format!("vlan{vlan_id}"))));
            if !vlan_exists {
                ctx.act(&router, "createVlan", vec![Value::Int(vlan_id)])?;
            }
            ctx.act(
                &router,
                "attachPort",
                vec![Value::Int(vlan_id), Value::from(port)],
            )?;
            ctx.act(&host, "startVM", vec![Value::from(vm_name)])?;
            Ok(())
        })
        .describe("Spawns a VM and plumbs its VLAN port."),
    )
}

/// Registers every TCloud stored procedure.
pub fn all() -> ProcRegistry {
    let mut reg = ProcRegistry::new();
    reg.register(spawn_vm());
    reg.register(spawn_vm_auto());
    reg.register(start_vm());
    reg.register(stop_vm());
    reg.register(destroy_vm());
    reg.register(migrate_vm());
    reg.register(spawn_vm_net());
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{actions, constraints};
    use tropic_core::{simulate, LockManager, LogicalOutcome, TxnRecord};
    use tropic_model::Tree;

    fn topology() -> Tree {
        crate::topology::TopologySpec {
            compute_hosts: 2,
            storage_hosts: 1,
            routers: 1,
            ..Default::default()
        }
        .build_tree()
    }

    fn run(
        tree: &mut Tree,
        locks: &mut LockManager,
        id: u64,
        proc_: &Arc<dyn StoredProcedure>,
        args: Vec<Value>,
    ) -> (LogicalOutcome, TxnRecord) {
        let mut rec = TxnRecord::new(id, proc_.name(), args, 0);
        let action_reg = actions::all();
        let cons = constraints::all();
        let outcome = simulate(&mut rec, proc_.as_ref(), tree, &action_reg, &cons, locks);
        (outcome, rec)
    }

    fn spawn_args(vm: &str) -> Vec<Value> {
        vec![
            Value::from(vm),
            Value::from("template-linux"),
            Value::Int(2048),
            Value::from("/storageRoot/storage0"),
            Value::from("/vmRoot/host0"),
        ]
    }

    #[test]
    fn spawn_vm_produces_table1_log() {
        let mut tree = topology();
        let mut locks = LockManager::new();
        let (outcome, rec) = run(&mut tree, &mut locks, 1, &spawn_vm(), spawn_args("vm1"));
        assert_eq!(outcome, LogicalOutcome::Runnable);
        let actions: Vec<&str> = rec.log.iter().map(|r| r.action.as_str()).collect();
        assert_eq!(
            actions,
            vec![
                "cloneImage",
                "exportImage",
                "importImage",
                "createVM",
                "startVM"
            ]
        );
        let undos: Vec<&str> = rec
            .log
            .iter()
            .map(|r| r.undo_action.as_deref().unwrap())
            .collect();
        assert_eq!(
            undos,
            vec![
                "removeImage",
                "unexportImage",
                "unimportImage",
                "removeVM",
                "stopVM"
            ]
        );
        // Logical effects applied: the VM runs.
        assert_eq!(
            tree.attr_str(&Path::parse("/vmRoot/host0/vm1").unwrap(), "state")
                .unwrap(),
            STATE_RUNNING
        );
    }

    #[test]
    fn spawn_beyond_memory_capacity_aborts() {
        let mut tree = topology();
        let mut locks = LockManager::new();
        // Host capacity is 32768 MB; 16 × 2048 fills it; the 17th violates.
        for i in 0..16 {
            let (outcome, rec) = run(
                &mut tree,
                &mut locks,
                i + 1,
                &spawn_vm(),
                spawn_args(&format!("vm{i}")),
            );
            assert_eq!(outcome, LogicalOutcome::Runnable, "spawn {i}");
            // Release locks as if committed.
            let _ = rec;
            locks.release_all(i + 1);
        }
        let (outcome, _) = run(
            &mut tree,
            &mut locks,
            99,
            &spawn_vm(),
            spawn_args("vm-over"),
        );
        match outcome {
            LogicalOutcome::Aborted { reason } => {
                assert!(reason.contains("vm-memory"), "{reason}")
            }
            other => panic!("unexpected {other:?}"),
        }
        // Rolled back: no image leftovers.
        assert!(!tree.exists(&Path::parse("/storageRoot/storage0/vm-over-img").unwrap()));
    }

    #[test]
    fn concurrent_spawns_on_same_host_defer() {
        let mut tree = topology();
        let mut locks = LockManager::new();
        let (o1, _) = run(&mut tree, &mut locks, 1, &spawn_vm(), spawn_args("vm1"));
        assert_eq!(o1, LogicalOutcome::Runnable);
        // Second spawn on the same host conflicts (constraint R lock on the
        // host held by txn 1 vs IW needed by txn 2).
        let (o2, _) = run(&mut tree, &mut locks, 2, &spawn_vm(), spawn_args("vm2"));
        assert!(matches!(o2, LogicalOutcome::Deferred { .. }), "{o2:?}");
        // A spawn on the other host proceeds (storage conflicts aside, use a
        // different image name and host1).
        let args = vec![
            Value::from("vm3"),
            Value::from("template-linux"),
            Value::Int(2048),
            Value::from("/storageRoot/storage0"),
            Value::from("/vmRoot/host1"),
        ];
        let (o3, _) = run(&mut tree, &mut locks, 3, &spawn_vm(), args);
        // Storage host is shared, and txn 1 holds a constraint R lock on it,
        // so this also defers — the paper's race-condition protection.
        assert!(matches!(o3, LogicalOutcome::Deferred { .. }), "{o3:?}");
        // After txn 1 finishes, both succeed.
        locks.release_all(1);
        let (o4, _) = run(&mut tree, &mut locks, 4, &spawn_vm(), spawn_args("vm2"));
        assert_eq!(o4, LogicalOutcome::Runnable);
    }

    #[test]
    fn destroy_reverses_spawn() {
        let mut tree = topology();
        let mut locks = LockManager::new();
        let (o, _) = run(&mut tree, &mut locks, 1, &spawn_vm(), spawn_args("vm1"));
        assert_eq!(o, LogicalOutcome::Runnable);
        locks.release_all(1);
        let before = tree.clone();
        let args = vec![
            Value::from("/vmRoot/host0"),
            Value::from("vm1"),
            Value::from("/storageRoot/storage0"),
        ];
        let (o, rec) = run(&mut tree, &mut locks, 2, &destroy_vm(), args);
        assert_eq!(o, LogicalOutcome::Runnable);
        assert_eq!(rec.log.len(), 5);
        assert!(!tree.exists(&Path::parse("/vmRoot/host0/vm1").unwrap()));
        assert!(!tree.exists(&Path::parse("/storageRoot/storage0/vm1-img").unwrap()));
        assert_ne!(before, tree);
    }

    #[test]
    fn migrate_moves_vm_and_respects_hypervisor() {
        let mut tree = topology();
        let mut locks = LockManager::new();
        run(&mut tree, &mut locks, 1, &spawn_vm(), spawn_args("vm1"));
        locks.release_all(1);
        let args = vec![
            Value::from("/vmRoot/host0"),
            Value::from("/vmRoot/host1"),
            Value::from("vm1"),
        ];
        let (o, rec) = run(&mut tree, &mut locks, 2, &migrate_vm(), args);
        assert_eq!(o, LogicalOutcome::Runnable);
        locks.release_all(2);
        assert!(!tree.exists(&Path::parse("/vmRoot/host0/vm1").unwrap()));
        let dst_vm = Path::parse("/vmRoot/host1/vm1").unwrap();
        assert_eq!(tree.attr_str(&dst_vm, "state").unwrap(), STATE_RUNNING);
        // The log decomposes into primitive actions.
        assert!(rec.log.iter().any(|r| r.action == "importImage"));
        assert!(rec.log.iter().any(|r| r.action == "createVM"));
    }

    #[test]
    fn migrate_to_incompatible_hypervisor_aborts() {
        let mut tree = crate::topology::TopologySpec {
            compute_hosts: 2,
            storage_hosts: 1,
            routers: 0,
            ..Default::default()
        }
        .build_tree();
        // Make host1 a KVM box.
        tree.set_attr(&Path::parse("/vmRoot/host1").unwrap(), "hypervisor", "kvm")
            .unwrap();
        let mut locks = LockManager::new();
        run(&mut tree, &mut locks, 1, &spawn_vm(), spawn_args("vm1"));
        locks.release_all(1);
        let before_vm = tree
            .get(&Path::parse("/vmRoot/host0/vm1").unwrap())
            .cloned()
            .unwrap();
        let args = vec![
            Value::from("/vmRoot/host0"),
            Value::from("/vmRoot/host1"),
            Value::from("vm1"),
        ];
        let (o, _) = run(&mut tree, &mut locks, 2, &migrate_vm(), args);
        match o {
            LogicalOutcome::Aborted { reason } => assert!(reason.contains("vm-type"), "{reason}"),
            other => panic!("unexpected {other:?}"),
        }
        // Fully rolled back: the VM is still on host0, untouched.
        assert_eq!(
            tree.get(&Path::parse("/vmRoot/host0/vm1").unwrap())
                .unwrap(),
            &before_vm
        );
        assert!(!tree.exists(&Path::parse("/vmRoot/host1/vm1").unwrap()));
    }

    #[test]
    fn auto_placement_finds_room() {
        let mut tree = crate::topology::TopologySpec {
            compute_hosts: 2,
            storage_hosts: 1,
            routers: 0,
            host_mem_mb: 4096,
            ..Default::default()
        }
        .build_tree();
        let mut locks = LockManager::new();
        // First two land on host0 (2048 each fills it), third goes to host1.
        for (i, vm) in ["a", "b", "c"].iter().enumerate() {
            let args = vec![
                Value::from(*vm),
                Value::from("template-linux"),
                Value::Int(2048),
            ];
            let (o, _) = run(&mut tree, &mut locks, i as u64 + 1, &spawn_vm_auto(), args);
            assert_eq!(o, LogicalOutcome::Runnable, "vm {vm}");
            locks.release_all(i as u64 + 1);
        }
        assert!(tree.exists(&Path::parse("/vmRoot/host0/a").unwrap()));
        assert!(tree.exists(&Path::parse("/vmRoot/host0/b").unwrap()));
        assert!(tree.exists(&Path::parse("/vmRoot/host1/c").unwrap()));
        // A fourth VM fills host1...
        let args = vec![
            Value::from("d"),
            Value::from("template-linux"),
            Value::Int(2048),
        ];
        let (o, _) = run(&mut tree, &mut locks, 4, &spawn_vm_auto(), args);
        assert_eq!(o, LogicalOutcome::Runnable);
        locks.release_all(4);
        assert!(tree.exists(&Path::parse("/vmRoot/host1/d").unwrap()));
        // ...after which the cluster is full and placement aborts.
        let args = vec![
            Value::from("e"),
            Value::from("template-linux"),
            Value::Int(2048),
        ];
        let (o, _) = run(&mut tree, &mut locks, 9, &spawn_vm_auto(), args);
        assert!(matches!(o, LogicalOutcome::Aborted { .. }));
    }

    #[test]
    fn spawn_with_network_attaches_port() {
        let mut tree = topology();
        let mut locks = LockManager::new();
        let args = vec![
            Value::from("vm1"),
            Value::from("template-linux"),
            Value::Int(2048),
            Value::from("/storageRoot/storage0"),
            Value::from("/vmRoot/host0"),
            Value::from("/netRoot/router0"),
            Value::Int(100),
        ];
        let (o, rec) = run(&mut tree, &mut locks, 1, &spawn_vm_net(), args);
        assert_eq!(o, LogicalOutcome::Runnable);
        assert_eq!(rec.log.len(), 7);
        let vlan = Path::parse("/netRoot/router0/vlan100").unwrap();
        assert!(tree.exists(&vlan));
        locks.release_all(1);
        // A second VM joining the same VLAN skips createVlan.
        let args = vec![
            Value::from("vm2"),
            Value::from("template-linux"),
            Value::Int(2048),
            Value::from("/storageRoot/storage0"),
            Value::from("/vmRoot/host0"),
            Value::from("/netRoot/router0"),
            Value::Int(100),
        ];
        let (o, rec) = run(&mut tree, &mut locks, 2, &spawn_vm_net(), args);
        assert_eq!(o, LogicalOutcome::Runnable);
        assert_eq!(rec.log.len(), 6);
    }

    #[test]
    fn registry_complete() {
        let reg = all();
        assert_eq!(reg.len(), 7);
        for name in [
            "spawnVM",
            "spawnVMAuto",
            "startVM",
            "stopVM",
            "destroyVM",
            "migrateVM",
            "spawnVMNet",
        ] {
            assert!(reg.get(name).is_some(), "missing {name}");
        }
    }
}

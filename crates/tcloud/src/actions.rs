//! TCloud's action definitions: the logical twins of the device actions
//! (paper §2.2 — "each action is defined twice").
//!
//! Every logical effect mirrors the corresponding simulated-device semantics
//! *exactly* (same guards, same attribute updates), so that after a
//! committed transaction the logical and physical trees diff empty. Undo
//! derivations produce the undo column of the paper's Table 1.

use tropic_core::{ActionDef, ActionRegistry, UndoSpec};
use tropic_model::{Node, Path, Tree, Value};

use crate::model::{IMAGE, STATE_RUNNING, STATE_STOPPED, VLAN, VM};

fn get_args_str(args: &[Value], i: usize) -> Result<String, String> {
    args.get(i)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("argument {i} missing or not a string"))
}

fn get_args_int(args: &[Value], i: usize) -> Result<i64, String> {
    args.get(i)
        .and_then(Value::as_int)
        .ok_or_else(|| format!("argument {i} missing or not an int"))
}

fn imported_images(tree: &Tree, host: &Path) -> Vec<String> {
    tree.attr(host, "importedImages")
        .and_then(Value::as_list)
        .map(|l| {
            l.iter()
                .filter_map(Value::as_str)
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default()
}

fn set_imported_images(tree: &mut Tree, host: &Path, images: Vec<String>) -> Result<(), String> {
    tree.set_attr(
        host,
        "importedImages",
        Value::List(images.into_iter().map(Value::from).collect()),
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

fn adjust_used_mb(tree: &mut Tree, host: &Path, delta: i64) -> Result<(), String> {
    let used = tree.attr_int(host, "usedMb").map_err(|e| e.to_string())?;
    tree.set_attr(host, "usedMb", used + delta)
        .map_err(|e| e.to_string())?;
    Ok(())
}

// ----------------------------------------------------------------------
// Storage-host actions.
// ----------------------------------------------------------------------

/// `cloneImage [template, image]` — clone a template into a new VM image.
/// Undo: `removeImage [image]`.
pub fn clone_image() -> ActionDef {
    ActionDef::new(
        "cloneImage",
        |tree, host, args| {
            let template = get_args_str(args, 0)?;
            let image = get_args_str(args, 1)?;
            let tpl_path = host.child(&template).map_err(|e| e.to_string())?;
            let tpl = tree
                .get(&tpl_path)
                .ok_or_else(|| format!("template `{template}` not found on {host}"))?;
            if tpl.attr_bool("template") != Some(true) {
                return Err(format!("`{template}` is not a template"));
            }
            let size = tpl.attr_int("sizeMb").ok_or("template has no size")?;
            let img_path = host.child(&image).map_err(|e| e.to_string())?;
            if tree.exists(&img_path) {
                return Err(format!("image `{image}` already exists on {host}"));
            }
            tree.insert(
                &img_path,
                Node::new(IMAGE)
                    .with_attr("sizeMb", size)
                    .with_attr("template", false)
                    .with_attr("exported", false),
            )
            .map_err(|e| e.to_string())?;
            adjust_used_mb(tree, host, size)
        },
        |_, host, args| {
            let image = args.get(1)?.as_str()?;
            Some(UndoSpec {
                object: host.clone(),
                action: "removeImage".into(),
                args: vec![Value::from(image)],
            })
        },
    )
    .describe("Clones a template image into a per-VM disk image on a storage server.")
}

/// `removeImage [image]` — delete a non-exported, non-template image.
/// Undo: `restoreImage [image, sizeMb, template, exported]`.
pub fn remove_image() -> ActionDef {
    ActionDef::new(
        "removeImage",
        |tree, host, args| {
            let image = get_args_str(args, 0)?;
            let img_path = host.child(&image).map_err(|e| e.to_string())?;
            let node = tree
                .get(&img_path)
                .ok_or_else(|| format!("image `{image}` not found on {host}"))?;
            if node.attr_bool("exported") == Some(true) {
                return Err(format!("image `{image}` is exported"));
            }
            if node.attr_bool("template") == Some(true) {
                return Err(format!("image `{image}` is a template"));
            }
            let size = node.attr_int("sizeMb").unwrap_or(0);
            tree.remove(&img_path).map_err(|e| e.to_string())?;
            adjust_used_mb(tree, host, -size)
        },
        |tree, host, args| {
            let image = args.first()?.as_str()?;
            let node = tree.get(&host.child(image).ok()?)?;
            Some(UndoSpec {
                object: host.clone(),
                action: "restoreImage".into(),
                args: vec![
                    Value::from(image),
                    Value::Int(node.attr_int("sizeMb").unwrap_or(0)),
                    Value::Bool(node.attr_bool("template").unwrap_or(false)),
                    Value::Bool(node.attr_bool("exported").unwrap_or(false)),
                ],
            })
        },
    )
    .describe("Deletes a VM disk image from a storage server.")
}

/// `restoreImage [image, sizeMb, template, exported]` — recreate an image
/// from saved metadata (the undo of `removeImage`). Undo: `removeImage`.
pub fn restore_image() -> ActionDef {
    ActionDef::new(
        "restoreImage",
        |tree, host, args| {
            let image = get_args_str(args, 0)?;
            let size = get_args_int(args, 1)?;
            let template = args.get(2).and_then(Value::as_bool).unwrap_or(false);
            let exported = args.get(3).and_then(Value::as_bool).unwrap_or(false);
            let img_path = host.child(&image).map_err(|e| e.to_string())?;
            if tree.exists(&img_path) {
                return Err(format!("image `{image}` already exists on {host}"));
            }
            tree.insert(
                &img_path,
                Node::new(IMAGE)
                    .with_attr("sizeMb", size)
                    .with_attr("template", template)
                    .with_attr("exported", exported),
            )
            .map_err(|e| e.to_string())?;
            adjust_used_mb(tree, host, size)
        },
        |_, host, args| {
            let image = args.first()?.as_str()?;
            Some(UndoSpec {
                object: host.clone(),
                action: "removeImage".into(),
                args: vec![Value::from(image)],
            })
        },
    )
    .describe("Recreates an image from metadata; the inverse of removeImage.")
}

fn set_exported(tree: &mut Tree, host: &Path, image: &str, exported: bool) -> Result<(), String> {
    let img_path = host.child(image).map_err(|e| e.to_string())?;
    let node = tree
        .get(&img_path)
        .ok_or_else(|| format!("image `{image}` not found on {host}"))?;
    if node.attr_bool("exported") == Some(exported) {
        return Err(format!(
            "image `{image}` already {}",
            if exported { "exported" } else { "unexported" }
        ));
    }
    tree.set_attr(&img_path, "exported", exported)
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// `exportImage [image]` — export an image over the storage network.
/// Undo: `unexportImage [image]`.
pub fn export_image() -> ActionDef {
    ActionDef::new(
        "exportImage",
        |tree, host, args| {
            let image = get_args_str(args, 0)?;
            set_exported(tree, host, &image, true)
        },
        |_, host, args| {
            let image = args.first()?.as_str()?;
            Some(UndoSpec {
                object: host.clone(),
                action: "unexportImage".into(),
                args: vec![Value::from(image)],
            })
        },
    )
    .describe("Exports an image as a network block device.")
}

/// `unexportImage [image]` — stop exporting. Undo: `exportImage [image]`.
pub fn unexport_image() -> ActionDef {
    ActionDef::new(
        "unexportImage",
        |tree, host, args| {
            let image = get_args_str(args, 0)?;
            set_exported(tree, host, &image, false)
        },
        |_, host, args| {
            let image = args.first()?.as_str()?;
            Some(UndoSpec {
                object: host.clone(),
                action: "exportImage".into(),
                args: vec![Value::from(image)],
            })
        },
    )
    .describe("Withdraws a network block-device export.")
}

// ----------------------------------------------------------------------
// Compute-host actions.
// ----------------------------------------------------------------------

/// `importImage [image]` — attach an exported image on a compute server.
/// Undo: `unimportImage [image]`.
pub fn import_image() -> ActionDef {
    ActionDef::new(
        "importImage",
        |tree, host, args| {
            let image = get_args_str(args, 0)?;
            let mut images = imported_images(tree, host);
            if images.contains(&image) {
                return Err(format!("image `{image}` already imported on {host}"));
            }
            // Keep sorted order to mirror the device's BTreeSet export.
            let pos = images.binary_search(&image).unwrap_err();
            images.insert(pos, image);
            set_imported_images(tree, host, images)
        },
        |_, host, args| {
            let image = args.first()?.as_str()?;
            Some(UndoSpec {
                object: host.clone(),
                action: "unimportImage".into(),
                args: vec![Value::from(image)],
            })
        },
    )
    .describe("Attaches an exported image to a compute server.")
}

/// `unimportImage [image]` — detach an image (must not back any VM).
/// Undo: `importImage [image]`.
pub fn unimport_image() -> ActionDef {
    ActionDef::new(
        "unimportImage",
        |tree, host, args| {
            let image = get_args_str(args, 0)?;
            let host_node = tree.get(host).ok_or_else(|| format!("no host at {host}"))?;
            if host_node
                .children()
                .any(|(_, vm)| vm.attr_str("image") == Some(image.as_str()))
            {
                return Err(format!("image `{image}` still used by a VM on {host}"));
            }
            let mut images = imported_images(tree, host);
            let Ok(pos) = images.binary_search(&image) else {
                return Err(format!("image `{image}` not imported on {host}"));
            };
            images.remove(pos);
            set_imported_images(tree, host, images)
        },
        |_, host, args| {
            let image = args.first()?.as_str()?;
            Some(UndoSpec {
                object: host.clone(),
                action: "importImage".into(),
                args: vec![Value::from(image)],
            })
        },
    )
    .describe("Detaches an image from a compute server.")
}

/// `createVM [name, image, mem, hypervisor?]` — define a stopped VM.
///
/// The optional fourth argument preserves the hypervisor a VM was built for
/// across migrations; without it the host's hypervisor is stamped. The
/// VM-type constraint compares this attribute against the host (paper §6.2).
/// Undo: `removeVM [name]`.
pub fn create_vm() -> ActionDef {
    ActionDef::new(
        "createVM",
        |tree, host, args| {
            let name = get_args_str(args, 0)?;
            let image = get_args_str(args, 1)?;
            let mem = get_args_int(args, 2)?;
            let vm_path = host.child(&name).map_err(|e| e.to_string())?;
            if tree.exists(&vm_path) {
                return Err(format!("VM `{name}` already exists on {host}"));
            }
            if !imported_images(tree, host).contains(&image) {
                return Err(format!("image `{image}` not imported on {host}"));
            }
            let host_hv = tree
                .attr_str(host, "hypervisor")
                .map_err(|e| e.to_string())?;
            let hv = args
                .get(3)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .unwrap_or(host_hv);
            tree.insert(
                &vm_path,
                Node::new(VM)
                    .with_attr("image", image)
                    .with_attr("mem", mem)
                    .with_attr("state", STATE_STOPPED)
                    .with_attr("hypervisor", hv),
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        },
        |_, host, args| {
            let name = args.first()?.as_str()?;
            Some(UndoSpec {
                object: host.clone(),
                action: "removeVM".into(),
                args: vec![Value::from(name)],
            })
        },
    )
    .describe("Creates a VM configuration on a compute server.")
}

/// `removeVM [name]` — delete a stopped VM's configuration.
/// Undo: `createVM [name, image, mem, hypervisor]` from pre-state.
pub fn remove_vm() -> ActionDef {
    ActionDef::new(
        "removeVM",
        |tree, host, args| {
            let name = get_args_str(args, 0)?;
            let vm_path = host.child(&name).map_err(|e| e.to_string())?;
            let vm = tree
                .get(&vm_path)
                .ok_or_else(|| format!("VM `{name}` not found on {host}"))?;
            if vm.attr_str("state") == Some(STATE_RUNNING) {
                return Err(format!("VM `{name}` is running"));
            }
            tree.remove(&vm_path).map_err(|e| e.to_string())?;
            Ok(())
        },
        |tree, host, args| {
            let name = args.first()?.as_str()?;
            let vm = tree.get(&host.child(name).ok()?)?;
            Some(UndoSpec {
                object: host.clone(),
                action: "createVM".into(),
                args: vec![
                    Value::from(name),
                    Value::from(vm.attr_str("image").unwrap_or("")),
                    Value::Int(vm.attr_int("mem").unwrap_or(0)),
                    Value::from(vm.attr_str("hypervisor").unwrap_or("")),
                ],
            })
        },
    )
    .describe("Removes a stopped VM's configuration.")
}

fn set_vm_state(
    tree: &mut Tree,
    host: &Path,
    name: &str,
    from: &str,
    to: &str,
) -> Result<(), String> {
    let vm_path = host.child(name).map_err(|e| e.to_string())?;
    let vm = tree
        .get(&vm_path)
        .ok_or_else(|| format!("VM `{name}` not found on {host}"))?;
    let state = vm.attr_str("state").unwrap_or("");
    if state != from {
        return Err(format!("VM `{name}` is {state}, expected {from}"));
    }
    tree.set_attr(&vm_path, "state", to)
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// `startVM [name]` — power a stopped VM on. Undo: `stopVM [name]`.
pub fn start_vm() -> ActionDef {
    ActionDef::new(
        "startVM",
        |tree, host, args| {
            let name = get_args_str(args, 0)?;
            set_vm_state(tree, host, &name, STATE_STOPPED, STATE_RUNNING)
        },
        |_, host, args| {
            let name = args.first()?.as_str()?;
            Some(UndoSpec {
                object: host.clone(),
                action: "stopVM".into(),
                args: vec![Value::from(name)],
            })
        },
    )
    .describe("Starts a VM.")
}

/// `stopVM [name]` — power a running VM off. Undo: `startVM [name]`.
pub fn stop_vm() -> ActionDef {
    ActionDef::new(
        "stopVM",
        |tree, host, args| {
            let name = get_args_str(args, 0)?;
            set_vm_state(tree, host, &name, STATE_RUNNING, STATE_STOPPED)
        },
        |_, host, args| {
            let name = args.first()?.as_str()?;
            Some(UndoSpec {
                object: host.clone(),
                action: "startVM".into(),
                args: vec![Value::from(name)],
            })
        },
    )
    .describe("Stops a VM.")
}

// ----------------------------------------------------------------------
// Router actions.
// ----------------------------------------------------------------------

fn vlan_node_name(id: i64) -> String {
    format!("vlan{id}")
}

/// `createVlan [id]` — configure a VLAN. Undo: `removeVlan [id]`.
pub fn create_vlan() -> ActionDef {
    ActionDef::new(
        "createVlan",
        |tree, router, args| {
            let id = get_args_int(args, 0)?;
            if !(1..=4094).contains(&id) {
                return Err(format!("VLAN id {id} out of 802.1Q range"));
            }
            let vlan_path = router
                .child(&vlan_node_name(id))
                .map_err(|e| e.to_string())?;
            if tree.exists(&vlan_path) {
                return Err(format!("VLAN {id} already exists on {router}"));
            }
            tree.insert(
                &vlan_path,
                Node::new(VLAN)
                    .with_attr("id", id)
                    .with_attr("ports", Vec::<String>::new()),
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        },
        |_, router, args| {
            let id = args.first()?.as_int()?;
            Some(UndoSpec {
                object: router.clone(),
                action: "removeVlan".into(),
                args: vec![Value::Int(id)],
            })
        },
    )
    .describe("Configures a VLAN on a router.")
}

/// `removeVlan [id]` — delete an empty VLAN. Undo: `createVlan [id]`.
pub fn remove_vlan() -> ActionDef {
    ActionDef::new(
        "removeVlan",
        |tree, router, args| {
            let id = get_args_int(args, 0)?;
            let vlan_path = router
                .child(&vlan_node_name(id))
                .map_err(|e| e.to_string())?;
            let vlan = tree
                .get(&vlan_path)
                .ok_or_else(|| format!("VLAN {id} not found on {router}"))?;
            let ports = vlan
                .attr("ports")
                .and_then(Value::as_list)
                .map(<[Value]>::len)
                .unwrap_or(0);
            if ports > 0 {
                return Err(format!("VLAN {id} still has {ports} port(s) attached"));
            }
            tree.remove(&vlan_path).map_err(|e| e.to_string())?;
            Ok(())
        },
        |_, router, args| {
            let id = args.first()?.as_int()?;
            Some(UndoSpec {
                object: router.clone(),
                action: "createVlan".into(),
                args: vec![Value::Int(id)],
            })
        },
    )
    .describe("Removes an empty VLAN from a router.")
}

fn vlan_ports(tree: &Tree, vlan_path: &Path) -> Vec<String> {
    tree.attr(vlan_path, "ports")
        .and_then(Value::as_list)
        .map(|l| {
            l.iter()
                .filter_map(Value::as_str)
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default()
}

/// `attachPort [id, port]` — attach a VM port to a VLAN.
/// Undo: `detachPort [id, port]`.
pub fn attach_port() -> ActionDef {
    ActionDef::new(
        "attachPort",
        |tree, router, args| {
            let id = get_args_int(args, 0)?;
            let port = get_args_str(args, 1)?;
            let vlan_path = router
                .child(&vlan_node_name(id))
                .map_err(|e| e.to_string())?;
            if !tree.exists(&vlan_path) {
                return Err(format!("VLAN {id} not found on {router}"));
            }
            let mut ports = vlan_ports(tree, &vlan_path);
            if ports.contains(&port) {
                return Err(format!("port `{port}` already attached to VLAN {id}"));
            }
            let pos = ports.binary_search(&port).unwrap_err();
            ports.insert(pos, port);
            tree.set_attr(
                &vlan_path,
                "ports",
                Value::List(ports.into_iter().map(Value::from).collect()),
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        },
        |_, router, args| {
            Some(UndoSpec {
                object: router.clone(),
                action: "detachPort".into(),
                args: args.to_vec(),
            })
        },
    )
    .describe("Attaches a port to a VLAN.")
}

/// `detachPort [id, port]` — detach a port. Undo: `attachPort [id, port]`.
pub fn detach_port() -> ActionDef {
    ActionDef::new(
        "detachPort",
        |tree, router, args| {
            let id = get_args_int(args, 0)?;
            let port = get_args_str(args, 1)?;
            let vlan_path = router
                .child(&vlan_node_name(id))
                .map_err(|e| e.to_string())?;
            if !tree.exists(&vlan_path) {
                return Err(format!("VLAN {id} not found on {router}"));
            }
            let mut ports = vlan_ports(tree, &vlan_path);
            let Ok(pos) = ports.binary_search(&port) else {
                return Err(format!("port `{port}` not attached to VLAN {id}"));
            };
            ports.remove(pos);
            tree.set_attr(
                &vlan_path,
                "ports",
                Value::List(ports.into_iter().map(Value::from).collect()),
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        },
        |_, router, args| {
            Some(UndoSpec {
                object: router.clone(),
                action: "attachPort".into(),
                args: args.to_vec(),
            })
        },
    )
    .describe("Detaches a port from a VLAN.")
}

/// Registers every TCloud action.
pub fn all() -> ActionRegistry {
    let mut reg = ActionRegistry::new();
    for def in [
        clone_image(),
        remove_image(),
        restore_image(),
        export_image(),
        unexport_image(),
        import_image(),
        unimport_image(),
        create_vm(),
        remove_vm(),
        start_vm(),
        stop_vm(),
        create_vlan(),
        remove_vlan(),
        attach_port(),
        detach_port(),
    ] {
        reg.register(def);
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{STORAGE_HOST, VM_HOST};

    fn tree() -> Tree {
        let mut t = Tree::new();
        t.insert(
            &Path::parse("/storageRoot").unwrap(),
            Node::new("storageRoot"),
        )
        .unwrap();
        t.insert(
            &Path::parse("/storageRoot/s0").unwrap(),
            Node::new(STORAGE_HOST)
                .with_attr("capacityMb", 100_000i64)
                .with_attr("usedMb", 8_192i64),
        )
        .unwrap();
        t.insert(
            &Path::parse("/storageRoot/s0/tmpl").unwrap(),
            Node::new(IMAGE)
                .with_attr("sizeMb", 8_192i64)
                .with_attr("template", true)
                .with_attr("exported", false),
        )
        .unwrap();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h0").unwrap(),
            Node::new(VM_HOST)
                .with_attr("hypervisor", "xen")
                .with_attr("memCapacity", 32_768i64)
                .with_attr("importedImages", Vec::<String>::new()),
        )
        .unwrap();
        t
    }

    fn s0() -> Path {
        Path::parse("/storageRoot/s0").unwrap()
    }

    fn h0() -> Path {
        Path::parse("/vmRoot/h0").unwrap()
    }

    #[test]
    fn clone_then_undo_roundtrips() {
        let reg = all();
        let mut t = tree();
        let args = vec![Value::from("tmpl"), Value::from("img")];
        let undo = reg
            .get("cloneImage")
            .unwrap()
            .derive_undo(&t, &s0(), &args)
            .unwrap();
        reg.get("cloneImage")
            .unwrap()
            .apply_logical(&mut t, &s0(), &args)
            .unwrap();
        assert!(t.exists(&s0().join("img")));
        assert_eq!(t.attr_int(&s0(), "usedMb").unwrap(), 16_384);
        reg.get(&undo.action)
            .unwrap()
            .apply_logical(&mut t, &undo.object, &undo.args)
            .unwrap();
        assert!(!t.exists(&s0().join("img")));
        assert_eq!(t.attr_int(&s0(), "usedMb").unwrap(), 8_192);
    }

    #[test]
    fn clone_guards() {
        let reg = all();
        let mut t = tree();
        let clone = reg.get("cloneImage").unwrap();
        assert!(clone
            .apply_logical(&mut t, &s0(), &[Value::from("ghost"), Value::from("x")])
            .unwrap_err()
            .contains("not found"));
        clone
            .apply_logical(&mut t, &s0(), &[Value::from("tmpl"), Value::from("a")])
            .unwrap();
        // Cloning from a non-template fails.
        assert!(clone
            .apply_logical(&mut t, &s0(), &[Value::from("a"), Value::from("b")])
            .unwrap_err()
            .contains("not a template"));
    }

    #[test]
    fn remove_image_undo_restores_metadata() {
        let reg = all();
        let mut t = tree();
        reg.get("cloneImage")
            .unwrap()
            .apply_logical(&mut t, &s0(), &[Value::from("tmpl"), Value::from("img")])
            .unwrap();
        reg.get("exportImage")
            .unwrap()
            .apply_logical(&mut t, &s0(), &[Value::from("img")])
            .unwrap();
        // removeImage refuses exported images.
        assert!(reg
            .get("removeImage")
            .unwrap()
            .apply_logical(&mut t, &s0(), &[Value::from("img")])
            .unwrap_err()
            .contains("exported"));
        reg.get("unexportImage")
            .unwrap()
            .apply_logical(&mut t, &s0(), &[Value::from("img")])
            .unwrap();
        let undo = reg
            .get("removeImage")
            .unwrap()
            .derive_undo(&t, &s0(), &[Value::from("img")])
            .unwrap();
        assert_eq!(undo.action, "restoreImage");
        assert_eq!(undo.args[1], Value::Int(8_192));
        reg.get("removeImage")
            .unwrap()
            .apply_logical(&mut t, &s0(), &[Value::from("img")])
            .unwrap();
        reg.get(&undo.action)
            .unwrap()
            .apply_logical(&mut t, &undo.object, &undo.args)
            .unwrap();
        assert!(t.exists(&s0().join("img")));
    }

    #[test]
    fn import_create_start_sequence() {
        let reg = all();
        let mut t = tree();
        reg.get("importImage")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("img")])
            .unwrap();
        reg.get("createVM")
            .unwrap()
            .apply_logical(
                &mut t,
                &h0(),
                &[Value::from("vm1"), Value::from("img"), Value::Int(2048)],
            )
            .unwrap();
        let vm = h0().join("vm1");
        assert_eq!(t.attr_str(&vm, "state").unwrap(), STATE_STOPPED);
        assert_eq!(t.attr_str(&vm, "hypervisor").unwrap(), "xen");
        reg.get("startVM")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("vm1")])
            .unwrap();
        assert_eq!(t.attr_str(&vm, "state").unwrap(), STATE_RUNNING);
        // Starting twice fails; removing a running VM fails.
        assert!(reg
            .get("startVM")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("vm1")])
            .is_err());
        assert!(reg
            .get("removeVM")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("vm1")])
            .unwrap_err()
            .contains("running"));
    }

    #[test]
    fn create_vm_requires_import_and_preserves_hypervisor_arg() {
        let reg = all();
        let mut t = tree();
        assert!(reg
            .get("createVM")
            .unwrap()
            .apply_logical(
                &mut t,
                &h0(),
                &[Value::from("vm1"), Value::from("img"), Value::Int(1)],
            )
            .unwrap_err()
            .contains("not imported"));
        reg.get("importImage")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("img")])
            .unwrap();
        reg.get("createVM")
            .unwrap()
            .apply_logical(
                &mut t,
                &h0(),
                &[
                    Value::from("vm1"),
                    Value::from("img"),
                    Value::Int(1),
                    Value::from("kvm"),
                ],
            )
            .unwrap();
        // The explicit hypervisor argument is preserved (migration case).
        assert_eq!(t.attr_str(&h0().join("vm1"), "hypervisor").unwrap(), "kvm");
    }

    #[test]
    fn unimport_guarded_by_vm_usage() {
        let reg = all();
        let mut t = tree();
        reg.get("importImage")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("img")])
            .unwrap();
        reg.get("createVM")
            .unwrap()
            .apply_logical(
                &mut t,
                &h0(),
                &[Value::from("vm1"), Value::from("img"), Value::Int(1)],
            )
            .unwrap();
        assert!(reg
            .get("unimportImage")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("img")])
            .unwrap_err()
            .contains("still used"));
        reg.get("removeVM")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("vm1")])
            .unwrap();
        reg.get("unimportImage")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("img")])
            .unwrap();
        assert!(imported_images(&t, &h0()).is_empty());
    }

    #[test]
    fn remove_vm_undo_recreates_with_attrs() {
        let reg = all();
        let mut t = tree();
        reg.get("importImage")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("img")])
            .unwrap();
        reg.get("createVM")
            .unwrap()
            .apply_logical(
                &mut t,
                &h0(),
                &[Value::from("vm1"), Value::from("img"), Value::Int(4096)],
            )
            .unwrap();
        let undo = reg
            .get("removeVM")
            .unwrap()
            .derive_undo(&t, &h0(), &[Value::from("vm1")])
            .unwrap();
        assert_eq!(undo.action, "createVM");
        assert_eq!(undo.args[2], Value::Int(4096));
        reg.get("removeVM")
            .unwrap()
            .apply_logical(&mut t, &h0(), &[Value::from("vm1")])
            .unwrap();
        reg.get(&undo.action)
            .unwrap()
            .apply_logical(&mut t, &undo.object, &undo.args)
            .unwrap();
        assert_eq!(t.attr_int(&h0().join("vm1"), "mem").unwrap(), 4096);
    }

    #[test]
    fn vlan_lifecycle_logical() {
        let reg = all();
        let mut t = Tree::new();
        let r = Path::parse("/netRoot/r0").unwrap();
        t.insert(&Path::parse("/netRoot").unwrap(), Node::new("netRoot"))
            .unwrap();
        t.insert(&r, Node::new("router").with_attr("maxVlans", 8i64))
            .unwrap();
        reg.get("createVlan")
            .unwrap()
            .apply_logical(&mut t, &r, &[Value::Int(100)])
            .unwrap();
        reg.get("attachPort")
            .unwrap()
            .apply_logical(&mut t, &r, &[Value::Int(100), Value::from("vm1-eth0")])
            .unwrap();
        // Cannot remove a VLAN with ports.
        assert!(reg
            .get("removeVlan")
            .unwrap()
            .apply_logical(&mut t, &r, &[Value::Int(100)])
            .is_err());
        reg.get("detachPort")
            .unwrap()
            .apply_logical(&mut t, &r, &[Value::Int(100), Value::from("vm1-eth0")])
            .unwrap();
        reg.get("removeVlan")
            .unwrap()
            .apply_logical(&mut t, &r, &[Value::Int(100)])
            .unwrap();
        assert!(!t.exists(&r.join("vlan100")));
        // Out-of-range id rejected.
        assert!(reg
            .get("createVlan")
            .unwrap()
            .apply_logical(&mut t, &r, &[Value::Int(5000)])
            .is_err());
    }

    #[test]
    fn registry_has_all_actions() {
        let reg = all();
        assert_eq!(reg.len(), 15);
        for name in [
            "cloneImage",
            "removeImage",
            "restoreImage",
            "exportImage",
            "unexportImage",
            "importImage",
            "unimportImage",
            "createVM",
            "removeVM",
            "startVM",
            "stopVM",
            "createVlan",
            "removeVlan",
            "attachPort",
            "detachPort",
        ] {
            assert!(reg.get(name).is_some(), "missing {name}");
        }
    }
}

//! # tropic-workload
//!
//! Workload generation and replay for the TROPIC evaluation (§6):
//!
//! * [`ec2`] — a synthetic EC2 VM-launch trace calibrated to the paper's
//!   published statistics (8,417 spawns/hour, mean 2.34/s, peak 14/s at
//!   0.8 h — Figure 3), with the 1×–5× scaling used by Figures 4 and 5.
//! * [`hosting`] — a mixed Spawn/Start/Stop/Migrate stream standing in for
//!   the paper's US hosting-provider trace (§6.2–§6.4).
//! * [`replay`] — paces traces into a running platform and summarizes the
//!   outcomes.
//! * [`stats`] — latency CDFs, utilization series, throughput buckets.
//! * [`chaos`] — an open-loop stress harness that runs sustained load
//!   *concurrently* with a scripted fault schedule (leader kills,
//!   device-failure storms, torn-WAL-tail restarts) and reports per-lane
//!   latency CDFs plus the acknowledged-transaction-loss count.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod chaos;
pub mod ec2;
pub mod hosting;
pub mod replay;
pub mod stats;

pub use chaos::{
    run_chaos, tear_wal_tails, ChaosReport, ChaosSpec, FaultKind, FaultScope, LaneReport,
    ScheduledFault, StormSpec,
};
pub use ec2::{Ec2Trace, Ec2TraceSpec};
pub use hosting::{HostingOp, HostingSpec};
pub use replay::{replay_calls, replay_ec2, replay_hosting, ReplayReport};
pub use stats::{bucket_counts, sparkline, utilization_series, LatencyStats};

//! Open-loop chaos/stress harness: sustained load *concurrently* with a
//! scripted fault schedule, reporting per-lane latency CDFs.
//!
//! The paper's robustness evaluation (§6.3) injects random exceptions in
//! the last step of VM spawn and migrate, and §6.4 kills the leader
//! controller under load. The short benches and one-shot examples exercise
//! those paths individually; this module runs them **together, under
//! sustained open-loop load**, the way a production deployment would meet
//! them:
//!
//! * [`ChaosSpec`] describes the load: a Poisson-ish arrival process from a
//!   seeded RNG (inter-arrival times are exponential), fanned across many
//!   simulated clients over the typed API — and optionally over the network
//!   RPC socket ([`ChaosSpec::rpc_addr`]) — with a configurable
//!   spawn/toggle/migrate mix and priority-lane weights. Open-loop means
//!   submission times never wait for completions: when the platform slows
//!   down, the backlog (and the latency tail) grows, which is exactly what
//!   the harness measures.
//! * [`ScheduledFault`]s script the chaos: leader kills mid-round
//!   ([`FaultKind::KillLeader`]), device-failure storms over the
//!   [`FaultPlan`](tropic_devices::FaultPlan) hooks (`every_nth`, one-shot,
//!   probabilistic, down/up), scoped per device or fleet-wide
//!   ([`FaultScope`]). [`StormSpec`] generates a randomized-but-seeded
//!   storm so a run is reproducible from two integers.
//! * [`run_chaos`] drives load, faults, and drain, and returns a
//!   [`ChaosReport`]: per-lane, per-outcome latency percentiles and CDF
//!   points, abort rates, injected-fault counters (attributed via
//!   [`Tropic::counters`]), the applied fault timeline, and the
//!   **acknowledged-transaction-loss count** — the invariant a chaos run
//!   exists to check is that it stays zero.
//! * [`DriftStormSpec`] scripts the twin-reconciler stress variant: rapid
//!   Down/Up flapping of compute hosts leaves cross-layer drift behind
//!   (mid-flight transactions cannot roll back on a dead device), and
//!   [`run_drift_storm`] watches the platform's twin feed until every
//!   drifted resource converges back — the digital-twin subsystem's
//!   self-healing invariant, checked under load.
//! * [`tear_wal_tails`] corrupts the newest write-ahead-log segment of
//!   every durable replica, so a driver can script a torn-tail restart
//!   through [`Tropic::recover`] between two load phases (see the `chaos`
//!   binary in `tropic-bench` and `docs/STRESS_TESTING.md`).
//!
//! Determinism: [`ChaosSpec::plan`] and [`StormSpec::generate`] are pure
//! functions of their seeds — the same seed yields byte-identical arrival
//! and fault schedules. End-to-end fault *counts* are additionally
//! deterministic when submission order is serialized (one client thread,
//! one worker, one lane); see `tests/chaos.rs`.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use tropic_core::{
    ApiError, Priority, RemoteClient, Tropic, TropicClient, TwinPhase, TxnId, TxnOutcome,
    TxnRequest, TxnState,
};
use tropic_devices::Device;
use tropic_tcloud::{TCloudDevices, TopologySpec};

use crate::stats::LatencyStats;

/// Which devices a scripted fault applies to.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// Every compute server.
    AllComputes,
    /// Compute server `host{i}`.
    Compute(usize),
    /// Every storage server.
    AllStorages,
    /// Storage server `storage{i}`.
    Storage(usize),
    /// Every registered device.
    AllDevices,
}

impl FaultScope {
    fn describe(&self) -> String {
        match self {
            FaultScope::AllComputes => "computes(*)".into(),
            FaultScope::Compute(i) => format!("compute({i})"),
            FaultScope::AllStorages => "storages(*)".into(),
            FaultScope::Storage(i) => format!("storage({i})"),
            FaultScope::AllDevices => "devices(*)".into(),
        }
    }

    fn for_each_plan(&self, devices: &TCloudDevices, mut f: impl FnMut(&dyn Device)) {
        match self {
            FaultScope::AllComputes => {
                devices.computes.iter().for_each(|d| f(d.as_ref()));
            }
            FaultScope::Compute(i) => {
                if let Some(d) = devices.computes.get(*i) {
                    f(d.as_ref());
                }
            }
            FaultScope::AllStorages => {
                devices.storages.iter().for_each(|d| f(d.as_ref()));
            }
            FaultScope::Storage(i) => {
                if let Some(d) = devices.storages.get(*i) {
                    f(d.as_ref());
                }
            }
            FaultScope::AllDevices => {
                devices.computes.iter().for_each(|d| f(d.as_ref()));
                devices.storages.iter().for_each(|d| f(d.as_ref()));
                devices.routers.iter().for_each(|d| f(d.as_ref()));
            }
        }
    }
}

/// One scripted fault action.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Crash the current leader controller (its session expires, a follower
    /// takes over — the §6.4 failure model). With `restart_after_ms` set,
    /// the crashed controller rejoins as a follower that much later.
    KillLeader {
        /// Delay before the crashed controller restarts, if ever.
        restart_after_ms: Option<u64>,
    },
    /// Mark the scoped devices unreachable (every action fails).
    DeviceDown {
        /// Devices to take down.
        scope: FaultScope,
    },
    /// Bring the scoped devices back up.
    DeviceUp {
        /// Devices to bring back.
        scope: FaultScope,
    },
    /// Fail every `n`-th invocation of `action` on the scoped devices
    /// (1-based, see `FaultPlan::fail_every_nth`).
    EveryNth {
        /// Devices to script.
        scope: FaultScope,
        /// Action name, e.g. `createVM`.
        action: String,
        /// Period (`n = 1` fails every call).
        n: u64,
    },
    /// Fail the next invocation of `action` once, on the scoped devices.
    OneShot {
        /// Devices to script.
        scope: FaultScope,
        /// Action name.
        action: String,
    },
    /// Fail invocations of `action` with independent probability `p`.
    Probability {
        /// Devices to script.
        scope: FaultScope,
        /// Action name.
        action: String,
        /// Failure probability in `[0, 1]`.
        p: f64,
    },
    /// Clear all scripted failures on the scoped devices (up/down state is
    /// kept — pair with [`FaultKind::DeviceUp`]).
    ClearFaults {
        /// Devices to clear.
        scope: FaultScope,
    },
}

/// A fault scheduled at an offset from the start of the load phase.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Milliseconds after load start at which the fault fires.
    pub at_ms: u64,
    /// What to do.
    pub kind: FaultKind,
}

/// A fault as actually applied during a run (for the report timeline).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppliedFault {
    /// Scheduled offset (ms after load start).
    pub at_ms: u64,
    /// Wall-clock offset at which it really fired (ms after load start).
    pub applied_at_ms: u64,
    /// Human-readable description, e.g. `kill-leader controller-2`.
    pub description: String,
}

/// Generates a randomized-but-seeded fault storm: leader kills and
/// device-failure bursts spread over the run, plus standing `every_nth` /
/// one-shot scripts. Two runs with the same spec produce the identical
/// schedule ([`StormSpec::generate`] is a pure function of the spec).
#[derive(Clone, Debug)]
pub struct StormSpec {
    /// RNG seed for event times and scopes.
    pub seed: u64,
    /// Window (ms) the storm spreads over — normally the load duration.
    pub duration_ms: u64,
    /// Number of compute hosts available for scoped faults.
    pub compute_hosts: usize,
    /// Leader kills to schedule.
    pub leader_kills: usize,
    /// Restart delay for killed controllers (None = stay down).
    pub leader_restart_after_ms: Option<u64>,
    /// Device-down bursts (each takes one compute host down then up).
    pub down_bursts: usize,
    /// Length of each down burst (ms).
    pub down_burst_ms: u64,
    /// Standing every-nth scripts applied to all computes at t = 0.
    pub every_nth: Vec<(String, u64)>,
    /// One-shot failures scheduled at random times on random computes.
    pub one_shots: Vec<String>,
}

impl Default for StormSpec {
    fn default() -> Self {
        StormSpec {
            seed: 42,
            duration_ms: 3_000,
            compute_hosts: 4,
            leader_kills: 1,
            leader_restart_after_ms: Some(1_000),
            down_bursts: 1,
            down_burst_ms: 400,
            every_nth: vec![("createVM".into(), 7)],
            one_shots: vec!["migrateVM".into()],
        }
    }
}

impl StormSpec {
    /// Builds the deterministic fault schedule, sorted by `at_ms`.
    pub fn generate(&self) -> Vec<ScheduledFault> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut faults = Vec::new();
        for (action, n) in &self.every_nth {
            faults.push(ScheduledFault {
                at_ms: 0,
                kind: FaultKind::EveryNth {
                    scope: FaultScope::AllComputes,
                    action: action.clone(),
                    n: *n,
                },
            });
        }
        // Kills and bursts land in the middle 80% of the window so load is
        // flowing when they hit.
        let window = |rng: &mut StdRng, duration: u64| -> u64 {
            let lo = duration / 10;
            let hi = (duration * 9 / 10).max(lo + 1);
            rng.gen_range(lo..hi)
        };
        for _ in 0..self.leader_kills {
            faults.push(ScheduledFault {
                at_ms: window(&mut rng, self.duration_ms),
                kind: FaultKind::KillLeader {
                    restart_after_ms: self.leader_restart_after_ms,
                },
            });
        }
        for _ in 0..self.down_bursts {
            let host = if self.compute_hosts == 0 {
                0
            } else {
                rng.gen_range(0..self.compute_hosts)
            };
            let at = window(&mut rng, self.duration_ms);
            faults.push(ScheduledFault {
                at_ms: at,
                kind: FaultKind::DeviceDown {
                    scope: FaultScope::Compute(host),
                },
            });
            faults.push(ScheduledFault {
                at_ms: at + self.down_burst_ms,
                kind: FaultKind::DeviceUp {
                    scope: FaultScope::Compute(host),
                },
            });
        }
        for action in &self.one_shots {
            let host = if self.compute_hosts == 0 {
                0
            } else {
                rng.gen_range(0..self.compute_hosts)
            };
            faults.push(ScheduledFault {
                at_ms: window(&mut rng, self.duration_ms),
                kind: FaultKind::OneShot {
                    scope: FaultScope::Compute(host),
                    action: action.clone(),
                },
            });
        }
        faults.sort_by_key(|f| f.at_ms);
        faults
    }
}

/// Generates a seeded *drift storm*: rapid Down/Up flapping of compute
/// hosts (plus optional standing `every_nth` scripts) designed to leave
/// cross-layer drift behind — transactions caught mid-flight on a flapping
/// device cannot roll back physically, so the physical layer diverges from
/// the logical layer. Run it with the twin reconciler enabled
/// ([`TwinConfig::enabled`](tropic_core::TwinConfig)) and the platform must
/// converge back to zero diffs **without operator action**; that is what
/// [`run_drift_storm`] asserts the data for.
///
/// Like [`StormSpec`], [`DriftStormSpec::generate`] is a pure function of
/// the spec: the same seed yields the identical flap schedule.
#[derive(Clone, Debug)]
pub struct DriftStormSpec {
    /// RNG seed for flap times and targets.
    pub seed: u64,
    /// Window (ms) the flaps spread over — normally the load duration.
    pub duration_ms: u64,
    /// Number of compute hosts available to flap.
    pub compute_hosts: usize,
    /// Down/Up flap bursts to schedule (each picks a random host).
    pub flaps: usize,
    /// How long each flap holds its host down (ms).
    pub flap_down_ms: u64,
    /// Standing every-nth failure scripts applied to all computes at t = 0
    /// (they keep injecting during repair attempts too, exercising the
    /// backoff waker).
    pub every_nth: Vec<(String, u64)>,
}

impl Default for DriftStormSpec {
    fn default() -> Self {
        DriftStormSpec {
            seed: 42,
            duration_ms: 3_000,
            compute_hosts: 4,
            flaps: 4,
            flap_down_ms: 250,
            every_nth: vec![("startVM".into(), 6)],
        }
    }
}

impl DriftStormSpec {
    /// Builds the deterministic flap schedule, sorted by `at_ms`.
    pub fn generate(&self) -> Vec<ScheduledFault> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut faults = Vec::new();
        for (action, n) in &self.every_nth {
            faults.push(ScheduledFault {
                at_ms: 0,
                kind: FaultKind::EveryNth {
                    scope: FaultScope::AllComputes,
                    action: action.clone(),
                    n: *n,
                },
            });
        }
        // Flaps land in the middle 80% of the window so load is flowing
        // when the host disappears.
        for _ in 0..self.flaps {
            let host = if self.compute_hosts == 0 {
                0
            } else {
                rng.gen_range(0..self.compute_hosts)
            };
            let lo = self.duration_ms / 10;
            let hi = (self.duration_ms * 9 / 10).max(lo + 1);
            let at = rng.gen_range(lo..hi);
            faults.push(ScheduledFault {
                at_ms: at,
                kind: FaultKind::DeviceDown {
                    scope: FaultScope::Compute(host),
                },
            });
            faults.push(ScheduledFault {
                at_ms: at + self.flap_down_ms,
                kind: FaultKind::DeviceUp {
                    scope: FaultScope::Compute(host),
                },
            });
        }
        faults.sort_by_key(|f| f.at_ms);
        faults
    }
}

/// Result of a [`run_drift_storm`] run: the underlying chaos report plus
/// the twin's view of which resources drifted and whether every one of
/// them converged within the convergence timeout.
#[derive(Clone, Debug)]
pub struct DriftStormReport {
    /// The open-loop load/fault report (the `acked_lost == 0` invariant
    /// lives here).
    pub chaos: ChaosReport,
    /// Resources (device mounts) that entered `Drifted` at least once.
    pub drifted: Vec<String>,
    /// Drifted resources whose final observed phase is back in sync.
    pub converged: Vec<String>,
    /// Drifted resources still out of sync when the timeout expired —
    /// a drift-storm run passes only when this is empty.
    pub unconverged: Vec<String>,
    /// Total twin events observed over the run.
    pub twin_events: u64,
}

/// Runs a chaos workload (normally with a [`DriftStormSpec`] schedule in
/// `spec.faults`) while watching the platform's twin feed, then waits up to
/// `convergence_timeout` after the load drains for every drifted resource
/// to report `Converged`. The platform must have been started with the
/// twin reconciler enabled, or drift will simply never converge.
///
/// The caller asserts on the report: `chaos.acked_lost == 0` and
/// `unconverged.is_empty()` are the drift-storm invariants.
pub fn run_drift_storm(
    platform: &Tropic,
    topo: &TopologySpec,
    devices: Option<&TCloudDevices>,
    spec: &ChaosSpec,
    convergence_timeout: Duration,
) -> DriftStormReport {
    let sub = platform.subscribe_twin();
    let chaos = run_chaos(platform, topo, devices, spec);

    // Fold the feed into "latest phase per resource", continuing until
    // every resource that ever drifted is back in sync (or the timeout
    // expires). `Converged` is transient — it marks the episode close —
    // so both it and `InSync` count as in-sync terminal phases. Because
    // drift left by the storm may only be *detected* after the load drains
    // (the report pump and the reconciliation tick both lag the devices),
    // convergence must additionally hold through a quiet settle window
    // before the run is declared done.
    fn fold(
        event: &tropic_core::TwinEvent,
        last_phase: &mut BTreeMap<String, TwinPhase>,
        ever_drifted: &mut BTreeMap<String, ()>,
    ) {
        let path = event.path.to_string();
        if !matches!(event.phase, TwinPhase::InSync | TwinPhase::Converged) {
            ever_drifted.insert(path.clone(), ());
        }
        last_phase.insert(path, event.phase);
    }
    let mut last_phase: BTreeMap<String, TwinPhase> = BTreeMap::new();
    let mut ever_drifted: BTreeMap<String, ()> = BTreeMap::new();
    let mut twin_events = 0u64;
    let settle = Duration::from_millis(750);
    let deadline = Instant::now() + convergence_timeout;
    let mut last_event = Instant::now();
    loop {
        for event in sub.drain() {
            twin_events += 1;
            last_event = Instant::now();
            fold(&event, &mut last_phase, &mut ever_drifted);
        }
        let all_converged = ever_drifted.keys().all(|p| {
            matches!(
                last_phase.get(p),
                Some(TwinPhase::InSync) | Some(TwinPhase::Converged)
            )
        });
        let now = Instant::now();
        if (all_converged && now.duration_since(last_event) >= settle) || now >= deadline {
            break;
        }
        if let Some(event) = sub.recv_timeout(Duration::from_millis(100)) {
            twin_events += 1;
            last_event = Instant::now();
            fold(&event, &mut last_phase, &mut ever_drifted);
        }
    }

    let mut converged = Vec::new();
    let mut unconverged = Vec::new();
    for path in ever_drifted.keys() {
        match last_phase.get(path) {
            Some(TwinPhase::InSync) | Some(TwinPhase::Converged) => converged.push(path.clone()),
            _ => unconverged.push(path.clone()),
        }
    }
    DriftStormReport {
        chaos,
        drifted: ever_drifted.keys().cloned().collect(),
        converged,
        unconverged,
        twin_events,
    }
}

/// Relative weights of the operation mix. Operations other than `spawn`
/// target the pre-provisioned VM pool; with an empty pool everything
/// degenerates to spawns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpWeights {
    /// `spawnVM` of a fresh VM.
    pub spawn: u32,
    /// `stopVM`/`startVM` toggles on a pool VM.
    pub toggle: u32,
    /// `migrateVM` of a pool VM to another host.
    pub migrate: u32,
}

/// Relative weights of the priority lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneWeights {
    /// `Priority::High`.
    pub high: u32,
    /// `Priority::Normal`.
    pub normal: u32,
    /// `Priority::Batch`.
    pub batch: u32,
}

/// Configuration of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Seed for the arrival process and all generated randomness.
    pub seed: u64,
    /// Length of the open-loop submission window (ms).
    pub duration_ms: u64,
    /// Mean arrival rate (transactions per second, Poisson process).
    pub arrival_per_sec: f64,
    /// Concurrent client threads the arrivals are fanned across.
    pub clients: usize,
    /// How many of `clients` connect over the RPC socket instead of the
    /// in-process API (requires [`ChaosSpec::rpc_addr`]).
    pub rpc_clients: usize,
    /// Address of a running RPC frontend for the `rpc_clients`.
    pub rpc_addr: Option<String>,
    /// VMs provisioned before the run as targets for toggle/migrate ops.
    pub pool_vms: usize,
    /// Operation mix.
    pub ops: OpWeights,
    /// Priority-lane mix.
    pub lanes: LaneWeights,
    /// Memory per spawned VM (MB).
    pub vm_mem_mb: i64,
    /// Scripted fault schedule, offsets relative to load start.
    pub faults: Vec<ScheduledFault>,
    /// How long after the submission window to wait for outcomes before
    /// declaring the remainder unresolved (acknowledged-txn loss).
    pub drain_timeout: Duration,
    /// After the fault schedule completes, clear device fault plans, bring
    /// devices back up, and restart crashed controllers so the drain can
    /// converge (default `true`).
    pub heal_after_load: bool,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed: 42,
            duration_ms: 3_000,
            arrival_per_sec: 30.0,
            clients: 4,
            rpc_clients: 0,
            rpc_addr: None,
            pool_vms: 8,
            ops: OpWeights {
                spawn: 6,
                toggle: 3,
                migrate: 1,
            },
            lanes: LaneWeights {
                high: 2,
                normal: 6,
                batch: 2,
            },
            vm_mem_mb: 1_024,
            faults: Vec::new(),
            drain_timeout: Duration::from_secs(60),
            heal_after_load: true,
        }
    }
}

/// One concrete operation in the generated schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosOp {
    /// Spawn a fresh VM on `host`.
    Spawn {
        /// VM name (unique per run).
        vm: String,
        /// Target host index.
        host: usize,
    },
    /// Stop (`true`) or start (`false`) pool VM `vm` on `host`.
    Toggle {
        /// Pool VM name.
        vm: String,
        /// Host the VM currently lives on (per the generation model).
        host: usize,
        /// `true` = stopVM, `false` = startVM.
        stop: bool,
    },
    /// Migrate pool VM `vm` from `src` to `dst`.
    Migrate {
        /// Pool VM name.
        vm: String,
        /// Source host index.
        src: usize,
        /// Destination host index.
        dst: usize,
    },
}

/// One scheduled submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Submission offset from load start (ms).
    pub at_ms: u64,
    /// Client thread that submits it.
    pub client: usize,
    /// Priority lane.
    pub priority: Priority,
    /// The operation.
    pub op: ChaosOp,
}

/// A pool VM provisioned before the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolVm {
    /// VM name (`pool{i}`).
    pub vm: String,
    /// Initial host.
    pub host: usize,
    /// Lane every operation on this VM rides (same-lane FIFO keeps the
    /// per-VM operation order).
    pub priority: Priority,
}

/// The fully-expanded deterministic plan of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Pool VMs to provision up front.
    pub pool: Vec<PoolVm>,
    /// Open-loop arrivals, sorted by `at_ms`.
    pub arrivals: Vec<Arrival>,
}

impl ChaosSpec {
    /// Expands the spec into its deterministic plan: same spec (and seed)
    /// ⇒ identical pool, arrival times, operations, and lane assignments.
    pub fn plan(&self, topo: &TopologySpec) -> ChaosPlan {
        assert!(self.arrival_per_sec > 0.0, "arrival rate must be positive");
        assert!(self.clients > 0, "need at least one client");
        let hosts = topo.compute_hosts.max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pick_lane = |rng: &mut StdRng, lanes: &LaneWeights| -> Priority {
            let total = (lanes.high + lanes.normal + lanes.batch).max(1);
            let roll = rng.gen_range(0..total);
            if roll < lanes.high {
                Priority::High
            } else if roll < lanes.high + lanes.normal {
                Priority::Normal
            } else {
                Priority::Batch
            }
        };

        let mut pool = Vec::with_capacity(self.pool_vms);
        for i in 0..self.pool_vms {
            pool.push(PoolVm {
                vm: format!("pool{i}"),
                host: i % hosts,
                priority: pick_lane(&mut rng, &self.lanes),
            });
        }
        // Generation-time model of each pool VM (power + placement) so the
        // schedule only issues transitions that are valid in submission
        // order. Cross-fault aborts can still invalidate later ops — that
        // is chaos, and it shows up in the abort columns.
        let mut running: Vec<bool> = vec![true; pool.len()];
        let mut on_host: Vec<usize> = pool.iter().map(|p| p.host).collect();

        let op_total = (self.ops.spawn + self.ops.toggle + self.ops.migrate).max(1);
        let mut arrivals = Vec::new();
        let mut t_ms = 0.0_f64;
        let mut spawned = 0u64;
        loop {
            // Exponential inter-arrival for a Poisson process at the
            // configured rate.
            let u: f64 = rng.gen();
            t_ms += -(1.0 - u).ln() / self.arrival_per_sec * 1_000.0;
            if t_ms >= self.duration_ms as f64 {
                break;
            }
            let client = rng.gen_range(0..self.clients);
            let mut roll = rng.gen_range(0..op_total);
            if pool.is_empty() {
                roll = 0; // everything degenerates to spawns
            }
            let (op, priority) = if roll < self.ops.spawn || pool.is_empty() {
                let host = rng.gen_range(0..hosts);
                let vm = format!("chaos{spawned}");
                spawned += 1;
                (
                    ChaosOp::Spawn { vm, host },
                    pick_lane(&mut rng, &self.lanes),
                )
            } else if roll < self.ops.spawn + self.ops.toggle {
                let i = rng.gen_range(0..pool.len());
                let stop = running[i];
                running[i] = !running[i];
                (
                    ChaosOp::Toggle {
                        vm: pool[i].vm.clone(),
                        host: on_host[i],
                        stop,
                    },
                    pool[i].priority,
                )
            } else {
                let i = rng.gen_range(0..pool.len());
                let src = on_host[i];
                let dst = (src + 1 + rng.gen_range(0..hosts.max(2) - 1)) % hosts;
                on_host[i] = dst;
                (
                    ChaosOp::Migrate {
                        vm: pool[i].vm.clone(),
                        src,
                        dst,
                    },
                    pool[i].priority,
                )
            };
            arrivals.push(Arrival {
                at_ms: t_ms as u64,
                client,
                priority,
                op,
            });
        }
        ChaosPlan { pool, arrivals }
    }

    fn request_for(&self, topo: &TopologySpec, op: &ChaosOp, priority: Priority) -> TxnRequest {
        let req = match op {
            ChaosOp::Spawn { vm, host } => {
                TxnRequest::new("spawnVM").args(topo.spawn_args(vm, *host, self.vm_mem_mb))
            }
            ChaosOp::Toggle { vm, host, stop } => {
                TxnRequest::new(if *stop { "stopVM" } else { "startVM" })
                    .arg(TopologySpec::host_path(*host).to_string())
                    .arg(vm.as_str())
            }
            ChaosOp::Migrate { vm, src, dst } => TxnRequest::new("migrateVM")
                .arg(TopologySpec::host_path(*src).to_string())
                .arg(TopologySpec::host_path(*dst).to_string())
                .arg(vm.as_str()),
        };
        req.priority(priority).label("workload", "chaos")
    }
}

/// Latency summary of one (lane, outcome) bucket, milliseconds.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OutcomeStats {
    /// Samples in the bucket.
    pub count: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: u64,
    /// 90th percentile.
    pub p90_ms: u64,
    /// 99th percentile (nearest-rank).
    pub p99_ms: u64,
    /// Maximum.
    pub max_ms: u64,
}

impl OutcomeStats {
    fn from_samples(samples: Vec<u64>) -> Self {
        let stats = LatencyStats::new(samples);
        OutcomeStats {
            count: stats.len() as u64,
            mean_ms: stats.mean(),
            p50_ms: stats.percentile(50.0),
            p90_ms: stats.percentile(90.0),
            p99_ms: stats.percentile(99.0),
            max_ms: stats.max(),
        }
    }
}

/// One point of a committed-latency CDF.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CdfPoint {
    /// Latency (ms).
    pub ms: u64,
    /// Fraction of committed samples at or below `ms`.
    pub frac: f64,
}

/// Per-priority-lane results.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LaneReport {
    /// Lane name (`hi`, `norm`, `batch`).
    pub lane: String,
    /// Submissions acknowledged on this lane.
    pub submitted: u64,
    /// Submissions the platform refused at the API boundary (not
    /// acknowledged, so not loss).
    pub submit_errors: u64,
    /// Terminal outcomes.
    pub committed: u64,
    /// Aborted (clean rollback).
    pub aborted: u64,
    /// Failed (partial physical rollback).
    pub failed: u64,
    /// Acknowledged but no terminal outcome within the drain timeout —
    /// every entry here is a potentially lost acknowledged transaction.
    pub unresolved: u64,
    /// `(aborted + failed) / (committed + aborted + failed)`.
    pub abort_rate: f64,
    /// Latency of committed transactions.
    pub committed_latency: OutcomeStats,
    /// Latency of aborted transactions (rollback cost).
    pub aborted_latency: OutcomeStats,
    /// Latency of failed transactions.
    pub failed_latency: OutcomeStats,
    /// Committed-latency CDF (one point per distinct latency).
    pub cdf: Vec<CdfPoint>,
}

/// Fault-injection summary of a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Device actions failed by injection (from [`Tropic::counters`]).
    pub injected: u64,
    /// Device actions that passed the fault plans.
    pub passed: u64,
    /// Leader kills applied.
    pub leader_kills: u64,
    /// The applied fault timeline.
    pub events: Vec<AppliedFault>,
}

/// Machine-readable result of a chaos run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Seed the run was generated from.
    pub seed: u64,
    /// Submission-window length (ms).
    pub duration_ms: u64,
    /// Configured arrival rate (txn/s).
    pub arrival_per_sec: f64,
    /// Client threads.
    pub clients: u64,
    /// Clients that went over the RPC socket.
    pub rpc_clients: u64,
    /// Pool VMs provisioned before the run.
    pub pool_vms: u64,
    /// Wall-clock length of the whole run including drain (ms).
    pub wall_ms: u64,
    /// Total acknowledged submissions.
    pub submitted: u64,
    /// Total committed.
    pub committed: u64,
    /// Total aborted.
    pub aborted: u64,
    /// Total failed.
    pub failed: u64,
    /// Acknowledged submissions with no terminal outcome — **must be zero**
    /// for the no-acknowledged-loss invariant to hold.
    pub acked_lost: u64,
    /// Per-lane breakdown, in drain order (hi, norm, batch).
    pub lanes: Vec<LaneReport>,
    /// Fault-injection summary.
    pub faults: FaultSummary,
}

impl ChaosReport {
    /// The report for lane `name` (`hi`, `norm`, `batch`).
    pub fn lane(&self, name: &str) -> Option<&LaneReport> {
        self.lanes.iter().find(|l| l.lane == name)
    }

    /// Serializes the report as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report is serializable")
    }
}

enum AnyClient {
    Local(TropicClient),
    Remote(Box<RemoteClient>),
}

impl AnyClient {
    fn submit(&self, request: TxnRequest) -> Result<TxnId, ApiError> {
        match self {
            AnyClient::Local(c) => c.submit_request(request).map(|h| h.id()),
            AnyClient::Remote(c) => c.submit_request(request).map(|h| h.id()),
        }
    }

    fn wait(&self, id: TxnId, timeout: Duration) -> Result<TxnOutcome, ApiError> {
        match self {
            AnyClient::Local(c) => c.handle(id).wait_timeout(timeout),
            AnyClient::Remote(c) => c.handle(id).wait_timeout(timeout),
        }
    }
}

struct Sample {
    priority: Priority,
    state: Option<TxnState>,
    latency_ms: u64,
}

/// Runs the chaos workload against a live platform.
///
/// `devices` enables the device-fault portion of the schedule; with `None`
/// (e.g. [`ExecMode::LogicalOnly`](tropic_core::ExecMode)) device-scoped
/// faults are skipped (still recorded in the timeline as skipped). The
/// platform should run ≥ 2 controllers when the schedule kills leaders, or
/// nothing will take over until the restart.
///
/// The run has three phases: provision the VM pool (faults not yet
/// applied), the open-loop submission window with the fault injector
/// running concurrently, and the drain (every acknowledged submission is
/// awaited until [`ChaosSpec::drain_timeout`] past the window).
pub fn run_chaos(
    platform: &Tropic,
    topo: &TopologySpec,
    devices: Option<&TCloudDevices>,
    spec: &ChaosSpec,
) -> ChaosReport {
    let plan = spec.plan(topo);
    let started = Instant::now();

    // Phase 1: provision the pool (no faults are applied yet).
    let setup = platform.client();
    let mut pool_ok = 0u64;
    for vm in &plan.pool {
        let req = TxnRequest::new("spawnVM")
            .args(topo.spawn_args(&vm.vm, vm.host, spec.vm_mem_mb))
            .priority(vm.priority)
            .label("workload", "chaos-pool");
        if let Ok(handle) = setup.submit_request(req) {
            if let Ok(outcome) = handle.wait_timeout(spec.drain_timeout) {
                if outcome.state == TxnState::Committed {
                    pool_ok += 1;
                }
            }
        }
    }

    // Phase 2+3: load + faults, then drain. The injector and the submitter
    // threads share the scope; samples merge through a mutex at the end.
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let submit_errors: Mutex<Vec<(Priority, u64)>> = Mutex::new(Vec::new());
    let applied: Mutex<Vec<AppliedFault>> = Mutex::new(Vec::new());
    let leader_kills = Mutex::new(0u64);
    let load_start = Instant::now();
    let drain_deadline = load_start + Duration::from_millis(spec.duration_ms) + spec.drain_timeout;

    std::thread::scope(|scope| {
        // Fault injector.
        scope.spawn(|| {
            let mut restarts: Vec<(u64, usize)> = Vec::new();
            let mut schedule = spec.faults.clone();
            schedule.sort_by_key(|f| f.at_ms);
            let mut next = 0usize;
            loop {
                let due_restart = restarts.iter().map(|(at, _)| *at).min();
                let due_fault = schedule.get(next).map(|f| f.at_ms);
                let Some(due) = [due_restart, due_fault].into_iter().flatten().min() else {
                    break;
                };
                let target = load_start + Duration::from_millis(due);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                let now_ms = load_start.elapsed().as_millis() as u64;
                if let Some(pos) = restarts.iter().position(|(at, _)| *at == due) {
                    let (_, idx) = restarts.remove(pos);
                    platform.restart_controller(idx);
                    applied.lock().unwrap().push(AppliedFault {
                        at_ms: due,
                        applied_at_ms: now_ms,
                        description: format!("restart controller {idx}"),
                    });
                    continue;
                }
                let fault = &schedule[next];
                next += 1;
                let description = apply_fault(
                    platform,
                    devices,
                    &fault.kind,
                    due,
                    &mut restarts,
                    &leader_kills,
                );
                applied.lock().unwrap().push(AppliedFault {
                    at_ms: fault.at_ms,
                    applied_at_ms: now_ms,
                    description,
                });
            }
            if spec.heal_after_load {
                // Standing fault plans stay live for the whole submission
                // window even if the scripted events are exhausted early;
                // healing only starts once the open-loop load ends.
                let end = load_start + Duration::from_millis(spec.duration_ms);
                let now = Instant::now();
                if end > now {
                    std::thread::sleep(end - now);
                }
                heal(platform, devices);
            }
        });

        // Submitter clients.
        for client_idx in 0..spec.clients {
            let arrivals: Vec<&Arrival> = plan
                .arrivals
                .iter()
                .filter(|a| a.client == client_idx)
                .collect();
            let samples = &samples;
            let submit_errors = &submit_errors;
            scope.spawn(move || {
                let client = if client_idx < spec.rpc_clients {
                    match spec
                        .rpc_addr
                        .as_deref()
                        .ok_or(())
                        .and_then(|addr| RemoteClient::connect(addr).map_err(|_| ()))
                    {
                        Ok(remote) => AnyClient::Remote(Box::new(remote)),
                        // No socket: fall back to the in-process API so the
                        // load still runs.
                        Err(()) => AnyClient::Local(platform.client()),
                    }
                } else {
                    AnyClient::Local(platform.client())
                };

                let mut acked: Vec<(TxnId, Priority)> = Vec::new();
                let mut errors: Vec<(Priority, u64)> = Vec::new();
                for arrival in arrivals {
                    let target = load_start + Duration::from_millis(arrival.at_ms);
                    let now = Instant::now();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let request = spec.request_for(topo, &arrival.op, arrival.priority);
                    match client.submit(request) {
                        Ok(id) => acked.push((id, arrival.priority)),
                        Err(_) => errors.push((arrival.priority, 1)),
                    }
                }

                // Drain: every acknowledged submission must reach a
                // terminal state before the deadline, leader kills and
                // device storms notwithstanding.
                let mut local_samples = Vec::with_capacity(acked.len());
                for (id, priority) in acked {
                    let mut resolved = None;
                    loop {
                        let now = Instant::now();
                        if now >= drain_deadline {
                            break;
                        }
                        let slice = (drain_deadline - now).min(Duration::from_secs(2));
                        match client.wait(id, slice) {
                            Ok(outcome) => {
                                resolved = Some(outcome);
                                break;
                            }
                            Err(e) if e.retryable() => continue,
                            Err(_) => break,
                        }
                    }
                    local_samples.push(match resolved {
                        Some(outcome) => Sample {
                            priority,
                            state: Some(outcome.state),
                            latency_ms: outcome.latency_ms,
                        },
                        None => Sample {
                            priority,
                            state: None,
                            latency_ms: 0,
                        },
                    });
                }
                samples.lock().unwrap().extend(local_samples);
                submit_errors.lock().unwrap().extend(errors);
            });
        }
    });

    let samples = samples.into_inner().unwrap();
    let submit_errors = submit_errors.into_inner().unwrap();
    let mut lanes = Vec::new();
    for priority in Priority::ALL {
        let mut committed = Vec::new();
        let mut aborted = Vec::new();
        let mut failed = Vec::new();
        let mut unresolved = 0u64;
        for s in samples.iter().filter(|s| s.priority == priority) {
            match s.state {
                Some(TxnState::Committed) => committed.push(s.latency_ms),
                Some(TxnState::Aborted) => aborted.push(s.latency_ms),
                Some(TxnState::Failed) => failed.push(s.latency_ms),
                Some(_) => unresolved += 1,
                None => unresolved += 1,
            }
        }
        let submitted = (committed.len() + aborted.len() + failed.len()) as u64 + unresolved;
        let errors: u64 = submit_errors
            .iter()
            .filter(|(p, _)| *p == priority)
            .map(|(_, n)| n)
            .sum();
        let terminal = (committed.len() + aborted.len() + failed.len()) as f64;
        let cdf_stats = LatencyStats::new(committed.clone());
        lanes.push(LaneReport {
            lane: priority.lane().to_owned(),
            submitted,
            submit_errors: errors,
            committed: committed.len() as u64,
            aborted: aborted.len() as u64,
            failed: failed.len() as u64,
            unresolved,
            abort_rate: if terminal > 0.0 {
                (aborted.len() + failed.len()) as f64 / terminal
            } else {
                0.0
            },
            committed_latency: OutcomeStats::from_samples(committed),
            aborted_latency: OutcomeStats::from_samples(aborted),
            failed_latency: OutcomeStats::from_samples(failed),
            cdf: cdf_stats
                .cdf_points()
                .into_iter()
                .map(|(ms, frac)| CdfPoint { ms, frac })
                .collect(),
        });
    }

    let counters = platform.counters();
    ChaosReport {
        seed: spec.seed,
        duration_ms: spec.duration_ms,
        arrival_per_sec: spec.arrival_per_sec,
        clients: spec.clients as u64,
        rpc_clients: spec.rpc_clients.min(spec.clients) as u64,
        pool_vms: pool_ok,
        wall_ms: started.elapsed().as_millis() as u64,
        submitted: lanes.iter().map(|l| l.submitted).sum(),
        committed: lanes.iter().map(|l| l.committed).sum(),
        aborted: lanes.iter().map(|l| l.aborted).sum(),
        failed: lanes.iter().map(|l| l.failed).sum(),
        acked_lost: lanes.iter().map(|l| l.unresolved).sum(),
        lanes,
        faults: FaultSummary {
            injected: counters.faults_injected,
            passed: counters.faults_passed,
            leader_kills: leader_kills.into_inner().unwrap(),
            events: applied.into_inner().unwrap(),
        },
    }
}

fn apply_fault(
    platform: &Tropic,
    devices: Option<&TCloudDevices>,
    kind: &FaultKind,
    at_ms: u64,
    restarts: &mut Vec<(u64, usize)>,
    leader_kills: &Mutex<u64>,
) -> String {
    match kind {
        FaultKind::KillLeader { restart_after_ms } => match platform.crash_leader() {
            Some(idx) => {
                *leader_kills.lock().unwrap() += 1;
                if let Some(after) = restart_after_ms {
                    restarts.push((at_ms + after, idx));
                }
                format!(
                    "kill-leader {}",
                    platform.controller_name(idx).unwrap_or("?")
                )
            }
            None => "kill-leader (no leader)".into(),
        },
        FaultKind::DeviceDown { scope } => with_devices(devices, scope, "down", |d| {
            d.fault_plan().set_down(true);
        }),
        FaultKind::DeviceUp { scope } => with_devices(devices, scope, "up", |d| {
            d.fault_plan().set_down(false);
        }),
        FaultKind::EveryNth { scope, action, n } => {
            with_devices(devices, scope, &format!("every-{n}th {action}"), |d| {
                d.fault_plan().fail_every_nth(action, *n);
            })
        }
        FaultKind::OneShot { scope, action } => {
            with_devices(devices, scope, &format!("one-shot {action}"), |d| {
                d.fault_plan().fail_once(action);
            })
        }
        FaultKind::Probability { scope, action, p } => {
            with_devices(devices, scope, &format!("p={p} {action}"), |d| {
                d.fault_plan().fail_action_with_prob(action, *p);
            })
        }
        FaultKind::ClearFaults { scope } => with_devices(devices, scope, "clear", |d| {
            d.fault_plan().clear();
        }),
    }
}

fn with_devices(
    devices: Option<&TCloudDevices>,
    scope: &FaultScope,
    what: &str,
    f: impl FnMut(&dyn Device),
) -> String {
    match devices {
        Some(devices) => {
            scope.for_each_plan(devices, f);
            format!("{what} {}", scope.describe())
        }
        None => format!("{what} {} (skipped: no devices)", scope.describe()),
    }
}

fn heal(platform: &Tropic, devices: Option<&TCloudDevices>) {
    if let Some(devices) = devices {
        let scope = FaultScope::AllDevices;
        scope.for_each_plan(devices, |d| {
            d.fault_plan().clear();
            d.fault_plan().set_down(false);
        });
    }
    // Restart anything still crashed so the drain can converge.
    let mut idx = 0;
    while platform.controller_name(idx).is_some() {
        platform.restart_controller(idx);
        idx += 1;
    }
}

/// Appends `junk` to the newest WAL segment of every `replica-*` directory
/// under `data_dir`, simulating a crash that tore the log tail mid-record.
/// Returns how many segments were torn. Recovery
/// ([`Tropic::recover`]) must truncate the tail at the last valid record
/// and lose nothing that was acknowledged.
pub fn tear_wal_tails(data_dir: &std::path::Path, junk: &[u8]) -> std::io::Result<usize> {
    use std::io::Write;
    let mut torn = 0;
    for entry in std::fs::read_dir(data_dir)? {
        let entry = entry?;
        let is_replica = entry.file_type()?.is_dir()
            && entry.file_name().to_string_lossy().starts_with("replica-");
        if !is_replica {
            continue;
        }
        let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(entry.path())?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .map(|n| {
                        let n = n.to_string_lossy();
                        n.starts_with("wal-") && n.ends_with(".log")
                    })
                    .unwrap_or(false)
            })
            .collect();
        segments.sort();
        if let Some(newest) = segments.last() {
            let mut file = std::fs::OpenOptions::new().append(true).open(newest)?;
            file.write_all(junk)?;
            file.sync_all()?;
            torn += 1;
        }
    }
    Ok(torn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> TopologySpec {
        TopologySpec {
            compute_hosts: 4,
            storage_hosts: 1,
            routers: 0,
            storage_capacity_mb: 1_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let spec = ChaosSpec::default();
        let a = spec.plan(&topo());
        let b = spec.plan(&topo());
        assert_eq!(a, b, "same seed must expand to the identical plan");
        let other = ChaosSpec {
            seed: 43,
            ..ChaosSpec::default()
        };
        assert_ne!(a, other.plan(&topo()), "a different seed must diverge");
    }

    #[test]
    fn plan_arrivals_sorted_and_rate_plausible() {
        let spec = ChaosSpec {
            duration_ms: 10_000,
            arrival_per_sec: 50.0,
            ..Default::default()
        };
        let plan = spec.plan(&topo());
        assert!(plan.arrivals.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        // 10 s at 50/s ⇒ ~500 arrivals; Poisson noise stays well inside
        // ±40% at this count.
        let n = plan.arrivals.len();
        assert!((300..700).contains(&n), "got {n} arrivals");
        assert!(plan.arrivals.iter().all(|a| a.at_ms < 10_000));
        assert!(plan.arrivals.iter().all(|a| a.client < spec.clients));
    }

    #[test]
    fn plan_toggles_alternate_per_pool_vm() {
        let spec = ChaosSpec {
            duration_ms: 20_000,
            arrival_per_sec: 20.0,
            ops: OpWeights {
                spawn: 0,
                toggle: 1,
                migrate: 0,
            },
            pool_vms: 2,
            ..Default::default()
        };
        let plan = spec.plan(&topo());
        for vm in ["pool0", "pool1"] {
            let toggles: Vec<bool> = plan
                .arrivals
                .iter()
                .filter_map(|a| match &a.op {
                    ChaosOp::Toggle { vm: v, stop, .. } if v == vm => Some(*stop),
                    _ => None,
                })
                .collect();
            assert!(!toggles.is_empty());
            // First op on a running pool VM is a stop, then strict
            // alternation (the generation model tracks power state).
            assert!(toggles[0]);
            assert!(toggles.windows(2).all(|w| w[0] != w[1]));
        }
    }

    #[test]
    fn plan_ops_ride_their_pool_vms_lane() {
        let spec = ChaosSpec {
            duration_ms: 10_000,
            ops: OpWeights {
                spawn: 1,
                toggle: 2,
                migrate: 1,
            },
            ..Default::default()
        };
        let plan = spec.plan(&topo());
        for arrival in &plan.arrivals {
            let vm = match &arrival.op {
                ChaosOp::Toggle { vm, .. } | ChaosOp::Migrate { vm, .. } => vm,
                ChaosOp::Spawn { .. } => continue,
            };
            let pool = plan.pool.iter().find(|p| &p.vm == vm).unwrap();
            assert_eq!(
                arrival.priority, pool.priority,
                "pool ops must stay in one lane for per-VM FIFO"
            );
        }
    }

    #[test]
    fn storm_schedule_deterministic_and_sorted() {
        let spec = StormSpec::default();
        let a = spec.generate();
        assert_eq!(a, spec.generate());
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let kills = a
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::KillLeader { .. }))
            .count();
        assert_eq!(kills, spec.leader_kills);
        // Down bursts pair a Down with an Up, in order.
        let downs: Vec<&ScheduledFault> = a
            .iter()
            .filter(|f| {
                matches!(
                    f.kind,
                    FaultKind::DeviceDown { .. } | FaultKind::DeviceUp { .. }
                )
            })
            .collect();
        assert_eq!(downs.len(), 2 * spec.down_bursts);
        let other = StormSpec {
            seed: 7,
            ..StormSpec::default()
        };
        assert_ne!(a, other.generate());
    }

    #[test]
    fn drift_storm_schedule_deterministic_and_flaps_paired() {
        let spec = DriftStormSpec::default();
        let a = spec.generate();
        assert_eq!(a, spec.generate(), "same seed must yield the same storm");
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let downs = a
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::DeviceDown { .. }))
            .count();
        let ups = a
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::DeviceUp { .. }))
            .count();
        assert_eq!(downs, spec.flaps);
        assert_eq!(ups, spec.flaps, "every flap must bring its host back up");
        // Each Down is followed by the matching Up exactly flap_down_ms
        // later, on the same host.
        for f in &a {
            if let FaultKind::DeviceDown { scope } = &f.kind {
                let up_at = f.at_ms + spec.flap_down_ms;
                assert!(
                    a.iter().any(|g| g.at_ms == up_at
                        && matches!(&g.kind, FaultKind::DeviceUp { scope: s } if s == scope)),
                    "flap at {} ms has no matching up",
                    f.at_ms
                );
            }
        }
        let reseeded = DriftStormSpec {
            seed: 7,
            ..DriftStormSpec::default()
        };
        assert_ne!(a, reseeded.generate());
    }

    #[test]
    fn report_lane_lookup_and_json() {
        let report = ChaosReport {
            lanes: vec![LaneReport {
                lane: "hi".into(),
                submitted: 3,
                committed: 3,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert_eq!(report.lane("hi").unwrap().submitted, 3);
        assert!(report.lane("batch").is_none());
        let json = report.to_json();
        let back: ChaosReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lane("hi").unwrap().committed, 3);
    }
}

//! Synthetic hosting-provider workload (paper §6.2–§6.4).
//!
//! The paper's second trace comes from a large US hosting provider and
//! mixes Spawn, Start, Stop, and Migrate operations. We generate a
//! statistically similar stream: the generator tracks every VM's state so
//! each emitted operation is valid at emission time (start targets a
//! stopped VM, migrate picks a host with room, …), which is what a trace
//! recorded from a real deployment looks like.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation of the hosting workload.
#[derive(Clone, Debug, PartialEq)]
pub enum HostingOp {
    /// Spawn a new VM on a host (paired storage implied by topology).
    Spawn {
        /// VM name.
        vm: String,
        /// Host index.
        host: usize,
    },
    /// Start a stopped VM.
    Start {
        /// VM name.
        vm: String,
        /// Host index.
        host: usize,
    },
    /// Stop a running VM.
    Stop {
        /// VM name.
        vm: String,
        /// Host index.
        host: usize,
    },
    /// Migrate a VM between hosts.
    Migrate {
        /// VM name.
        vm: String,
        /// Source host index.
        src: usize,
        /// Destination host index.
        dst: usize,
    },
}

impl HostingOp {
    /// The operation's procedure name in TCloud.
    pub fn proc_name(&self) -> &'static str {
        match self {
            HostingOp::Spawn { .. } => "spawnVM",
            HostingOp::Start { .. } => "startVM",
            HostingOp::Stop { .. } => "stopVM",
            HostingOp::Migrate { .. } => "migrateVM",
        }
    }
}

/// Parameters of the hosting workload.
#[derive(Clone, Debug)]
pub struct HostingSpec {
    /// Number of operations to generate.
    pub operations: usize,
    /// Hosts available for placement.
    pub hosts: usize,
    /// VM slots per host (memory capacity / VM size).
    pub slots_per_host: usize,
    /// Relative weights of spawn / start / stop / migrate.
    pub weights: [f64; 4],
    /// RNG seed.
    pub seed: u64,
}

impl Default for HostingSpec {
    fn default() -> Self {
        HostingSpec {
            operations: 200,
            hosts: 8,
            slots_per_host: 8,
            weights: [0.4, 0.2, 0.2, 0.2],
            seed: 42,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum VmState {
    Running,
    Stopped,
}

struct VmInfo {
    name: String,
    host: usize,
    state: VmState,
}

impl HostingSpec {
    /// Generates the operation stream.
    pub fn generate(&self) -> Vec<HostingOp> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut vms: Vec<VmInfo> = Vec::new();
        let mut per_host: Vec<usize> = vec![0; self.hosts];
        let mut next_vm = 0usize;
        let mut ops = Vec::with_capacity(self.operations);
        let total_w: f64 = self.weights.iter().sum();

        while ops.len() < self.operations {
            let roll = rng.gen::<f64>() * total_w;
            let op_kind = if roll < self.weights[0] {
                0
            } else if roll < self.weights[0] + self.weights[1] {
                1
            } else if roll < self.weights[0] + self.weights[1] + self.weights[2] {
                2
            } else {
                3
            };
            match op_kind {
                // Spawn on the least-loaded host with a free slot.
                0 => {
                    let Some(host) = (0..self.hosts)
                        .filter(|&h| per_host[h] < self.slots_per_host)
                        .min_by_key(|&h| per_host[h])
                    else {
                        // Cloud full: fall through to another op kind next
                        // iteration (avoid infinite loops when all weights
                        // but spawn are zero).
                        if vms.is_empty() {
                            break;
                        }
                        continue;
                    };
                    let name = format!("hvm{next_vm}");
                    next_vm += 1;
                    per_host[host] += 1;
                    vms.push(VmInfo {
                        name: name.clone(),
                        host,
                        state: VmState::Running,
                    });
                    ops.push(HostingOp::Spawn { vm: name, host });
                }
                // Start a stopped VM.
                1 => {
                    let stopped: Vec<usize> = vms
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| v.state == VmState::Stopped)
                        .map(|(i, _)| i)
                        .collect();
                    if stopped.is_empty() {
                        continue;
                    }
                    let i = stopped[rng.gen_range(0..stopped.len())];
                    vms[i].state = VmState::Running;
                    ops.push(HostingOp::Start {
                        vm: vms[i].name.clone(),
                        host: vms[i].host,
                    });
                }
                // Stop a running VM.
                2 => {
                    let running: Vec<usize> = vms
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| v.state == VmState::Running)
                        .map(|(i, _)| i)
                        .collect();
                    if running.is_empty() {
                        continue;
                    }
                    let i = running[rng.gen_range(0..running.len())];
                    vms[i].state = VmState::Stopped;
                    ops.push(HostingOp::Stop {
                        vm: vms[i].name.clone(),
                        host: vms[i].host,
                    });
                }
                // Migrate any VM to a host with a free slot.
                _ => {
                    if vms.is_empty() {
                        continue;
                    }
                    let i = rng.gen_range(0..vms.len());
                    let src = vms[i].host;
                    let Some(dst) = (0..self.hosts)
                        .filter(|&h| h != src && per_host[h] < self.slots_per_host)
                        .min_by_key(|&h| per_host[h])
                    else {
                        continue;
                    };
                    per_host[src] -= 1;
                    per_host[dst] += 1;
                    vms[i].host = dst;
                    ops.push(HostingOp::Migrate {
                        vm: vms[i].name.clone(),
                        src,
                        dst,
                    });
                }
            }
        }
        ops
    }

    /// Counts of each operation kind in `ops`, ordered
    /// [spawn, start, stop, migrate].
    pub fn histogram(ops: &[HostingOp]) -> [usize; 4] {
        let mut h = [0usize; 4];
        for op in ops {
            match op {
                HostingOp::Spawn { .. } => h[0] += 1,
                HostingOp::Start { .. } => h[1] += 1,
                HostingOp::Stop { .. } => h[2] += 1,
                HostingOp::Migrate { .. } => h[3] += 1,
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generates_requested_count() {
        let ops = HostingSpec::default().generate();
        assert_eq!(ops.len(), 200);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = HostingSpec::default().generate();
        let b = HostingSpec::default().generate();
        assert_eq!(a, b);
        let c = HostingSpec {
            seed: 1,
            ..Default::default()
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn mix_roughly_matches_weights() {
        let ops = HostingSpec {
            operations: 2_000,
            hosts: 64,
            ..Default::default()
        }
        .generate();
        let h = HostingSpec::histogram(&ops);
        // Spawn-heavy per the 0.4/0.2/0.2/0.2 weights; starts need stopped
        // VMs so they lag slightly, but each kind must be well represented.
        assert!(h[0] > 500, "spawns {h:?}");
        for (i, count) in h.iter().enumerate() {
            assert!(*count > 100, "kind {i} underrepresented: {h:?}");
        }
    }

    /// Replaying the stream against a simple state machine never produces
    /// an invalid transition — the property that makes the trace realistic.
    #[test]
    fn stream_is_always_valid() {
        let ops = HostingSpec {
            operations: 1_000,
            hosts: 4,
            slots_per_host: 4,
            ..Default::default()
        }
        .generate();
        let mut state: HashMap<String, (usize, bool)> = HashMap::new(); // vm -> (host, running)
        let mut per_host = [0usize; 4];
        for op in &ops {
            match op {
                HostingOp::Spawn { vm, host } => {
                    assert!(!state.contains_key(vm), "duplicate spawn of {vm}");
                    assert!(per_host[*host] < 4, "overfull host {host}");
                    per_host[*host] += 1;
                    state.insert(vm.clone(), (*host, true));
                }
                HostingOp::Start { vm, host } => {
                    let s = state.get_mut(vm).expect("start of unknown VM");
                    assert_eq!(s.0, *host);
                    assert!(!s.1, "start of running VM {vm}");
                    s.1 = true;
                }
                HostingOp::Stop { vm, host } => {
                    let s = state.get_mut(vm).expect("stop of unknown VM");
                    assert_eq!(s.0, *host);
                    assert!(s.1, "stop of stopped VM {vm}");
                    s.1 = false;
                }
                HostingOp::Migrate { vm, src, dst } => {
                    let s = state.get_mut(vm).expect("migrate of unknown VM");
                    assert_eq!(s.0, *src);
                    assert_ne!(src, dst);
                    assert!(per_host[*dst] < 4, "overfull destination {dst}");
                    per_host[*src] -= 1;
                    per_host[*dst] += 1;
                    s.0 = *dst;
                }
            }
        }
    }

    #[test]
    fn proc_names_map_to_tcloud() {
        assert_eq!(
            HostingOp::Spawn {
                vm: "a".into(),
                host: 0
            }
            .proc_name(),
            "spawnVM"
        );
        assert_eq!(
            HostingOp::Migrate {
                vm: "a".into(),
                src: 0,
                dst: 1
            }
            .proc_name(),
            "migrateVM"
        );
    }
}

//! Trace replay against a running TROPIC platform.
//!
//! The replayer turns a trace into `spawnVM`/`startVM`/… submissions,
//! paces them on the wall clock (with a speed-up factor so the paper's
//! 1-hour runs finish in seconds), and waits for the platform to finalize
//! everything, returning a summary for the experiment harnesses.

use std::time::{Duration, Instant};

use tropic_core::{Tropic, TxnId, TxnRequest};
use tropic_model::Value;
use tropic_tcloud::TopologySpec;

use crate::ec2::Ec2Trace;
use crate::hosting::HostingOp;

/// Outcome summary of a replay run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayReport {
    /// Transactions submitted.
    pub submitted: usize,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Transactions failed (partial physical rollback).
    pub failed: u64,
    /// Wall-clock duration of the replay, milliseconds.
    pub wall_ms: u64,
}

/// Replays an EC2 spawn trace (paper §6.1).
///
/// Each per-second bucket of the trace is submitted at
/// `t / speedup` on the wall clock; `speedup = 60` compresses the paper's
/// hour into a minute. VMs are placed round-robin on hosts with free
/// memory slots. Blocks until every submission is finalized (or
/// `drain_timeout` passes), so the returned report covers the whole run.
pub fn replay_ec2(
    platform: &Tropic,
    spec: &TopologySpec,
    trace: &Ec2Trace,
    speedup: f64,
    vm_mem_mb: i64,
    drain_timeout: Duration,
) -> ReplayReport {
    assert!(speedup > 0.0, "speedup must be positive");
    let client = platform.client();
    let slots_per_host = (spec.host_mem_mb / vm_mem_mb).max(1) as u32;
    let mut per_host = vec![0u32; spec.compute_hosts];
    let mut host_cursor = 0usize;
    let mut vm_counter = 0u64;
    let before = platform.metrics().sample_count();
    let start = Instant::now();
    let mut submitted = 0usize;

    for (t, &count) in trace.per_second().iter().enumerate() {
        // Pace: wait until this second's compressed wall-clock offset.
        let target = Duration::from_secs_f64(t as f64 / speedup);
        let now = start.elapsed();
        if target > now {
            std::thread::sleep(target - now);
        }
        for _ in 0..count {
            // Round-robin placement over hosts with a free slot.
            let mut placed = None;
            for probe in 0..spec.compute_hosts {
                let h = (host_cursor + probe) % spec.compute_hosts;
                if per_host[h] < slots_per_host {
                    placed = Some(h);
                    host_cursor = h + 1;
                    break;
                }
            }
            let Some(host) = placed else {
                // Cloud full; stop submitting (the paper's trace never
                // fills its 100,000-slot deployment).
                break;
            };
            per_host[host] += 1;
            let name = format!("vm{vm_counter}");
            vm_counter += 1;
            if client
                .submit_request(
                    TxnRequest::new("spawnVM").args(spec.spawn_args(&name, host, vm_mem_mb)),
                )
                .is_ok()
            {
                submitted += 1;
            }
        }
    }

    wait_for_drain(platform, before + submitted, drain_timeout);
    report(platform, submitted, before, start)
}

/// Replays a hosting-workload stream (paper §6.2–§6.4), submitting one
/// operation every `pace` (possibly zero). Order across operations on the
/// same VM is preserved by the platform's FIFO todoQ.
pub fn replay_hosting(
    platform: &Tropic,
    spec: &TopologySpec,
    ops: &[HostingOp],
    pace: Duration,
    vm_mem_mb: i64,
    drain_timeout: Duration,
) -> ReplayReport {
    let client = platform.client();
    let before = platform.metrics().sample_count();
    let start = Instant::now();
    let mut submitted = 0usize;
    for op in ops {
        let request = match op {
            HostingOp::Spawn { vm, host } => {
                TxnRequest::new("spawnVM").args(spec.spawn_args(vm, *host, vm_mem_mb))
            }
            HostingOp::Start { vm, host } => TxnRequest::new("startVM")
                .arg(TopologySpec::host_path(*host).to_string())
                .arg(vm.as_str()),
            HostingOp::Stop { vm, host } => TxnRequest::new("stopVM")
                .arg(TopologySpec::host_path(*host).to_string())
                .arg(vm.as_str()),
            HostingOp::Migrate { vm, src, dst } => TxnRequest::new("migrateVM")
                .arg(TopologySpec::host_path(*src).to_string())
                .arg(TopologySpec::host_path(*dst).to_string())
                .arg(vm.as_str()),
        };
        if client.submit_request(request).is_ok() {
            submitted += 1;
        }
        if !pace.is_zero() {
            std::thread::sleep(pace);
        }
    }
    wait_for_drain(platform, before + submitted, drain_timeout);
    report(platform, submitted, before, start)
}

/// Submits a list of raw `(proc, args)` calls as one atomic batch enqueue
/// (a single coordination-store multi) and drains.
pub fn replay_calls(
    platform: &Tropic,
    calls: &[(String, Vec<Value>)],
    drain_timeout: Duration,
) -> (ReplayReport, Vec<TxnId>) {
    let client = platform.client();
    let before = platform.metrics().sample_count();
    let start = Instant::now();
    let requests: Vec<TxnRequest> = calls
        .iter()
        .map(|(proc_name, args)| TxnRequest::new(proc_name).args(args.clone()))
        .collect();
    let ids: Vec<TxnId> = match client.submit_batch(requests) {
        Ok(handles) => handles.iter().map(|h| h.id()).collect(),
        Err(_) => Vec::new(),
    };
    wait_for_drain(platform, before + ids.len(), drain_timeout);
    (report(platform, ids.len(), before, start), ids)
}

fn wait_for_drain(platform: &Tropic, target: usize, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while platform.metrics().sample_count() < target {
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn report(platform: &Tropic, submitted: usize, before: usize, start: Instant) -> ReplayReport {
    // Counters are platform-lifetime; subtract what predates this replay by
    // recomputing from the sample window instead.
    let samples = platform.metrics().samples();
    let window = &samples[before.min(samples.len())..];
    let mut committed = 0;
    let mut aborted = 0;
    let mut failed = 0;
    for s in window {
        match s.state {
            tropic_core::TxnState::Committed => committed += 1,
            tropic_core::TxnState::Aborted => aborted += 1,
            tropic_core::TxnState::Failed => failed += 1,
            _ => {}
        }
    }
    ReplayReport {
        submitted,
        committed,
        aborted,
        failed,
        wall_ms: start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tropic_coord::CoordConfig;
    use tropic_core::{ExecMode, PlatformConfig, Tropic};

    fn small_platform() -> (Tropic, TopologySpec) {
        let spec = TopologySpec {
            compute_hosts: 4,
            storage_hosts: 1,
            routers: 0,
            // Room for 64 VM images plus the template.
            storage_capacity_mb: 1_000_000,
            ..Default::default()
        };
        let config = PlatformConfig {
            controllers: 1,
            workers: 1,
            coord: CoordConfig::default(),
            ..Default::default()
        };
        let platform = Tropic::start(config, spec.service(), ExecMode::LogicalOnly);
        (platform, spec)
    }

    #[test]
    fn ec2_replay_commits_spawns() {
        let (platform, spec) = small_platform();
        let trace = Ec2Trace::from_counts(vec![2, 3, 1]);
        let report = replay_ec2(
            &platform,
            &spec,
            &trace,
            1_000.0,
            2_048,
            Duration::from_secs(30),
        );
        assert_eq!(report.submitted, 6);
        assert_eq!(report.committed, 6);
        assert_eq!(report.aborted, 0);
        platform.shutdown();
    }

    #[test]
    fn hosting_replay_preserves_order() {
        let (platform, spec) = small_platform();
        let ops = vec![
            HostingOp::Spawn {
                vm: "a".into(),
                host: 0,
            },
            HostingOp::Stop {
                vm: "a".into(),
                host: 0,
            },
            HostingOp::Start {
                vm: "a".into(),
                host: 0,
            },
            HostingOp::Migrate {
                vm: "a".into(),
                src: 0,
                dst: 1,
            },
        ];
        let report = replay_hosting(
            &platform,
            &spec,
            &ops,
            Duration::ZERO,
            2_048,
            Duration::from_secs(30),
        );
        assert_eq!(report.submitted, 4);
        assert_eq!(report.committed, 4, "all ops commit in submission order");
        platform.shutdown();
    }

    #[test]
    fn placement_overflow_aborts_at_capacity() {
        let (platform, spec) = small_platform();
        // 4 hosts × 16 slots = 64 capacity; submit 70 spawns in one second.
        let trace = Ec2Trace::from_counts(vec![70]);
        let report = replay_ec2(
            &platform,
            &spec,
            &trace,
            1_000.0,
            2_048,
            Duration::from_secs(60),
        );
        // The replayer stops at 64 placements.
        assert_eq!(report.submitted, 64);
        assert_eq!(report.committed, 64);
        platform.shutdown();
    }
}

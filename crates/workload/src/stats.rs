//! Statistics helpers for the evaluation figures: latency CDFs (Figure 5),
//! utilization time-series (Figure 4), and throughput summaries.

/// A latency distribution built from individual samples.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    sorted_ms: Vec<u64>,
}

impl LatencyStats {
    /// Builds the distribution (sorts a copy of the samples).
    pub fn new(mut samples_ms: Vec<u64>) -> Self {
        samples_ms.sort_unstable();
        LatencyStats {
            sorted_ms: samples_ms,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted_ms.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted_ms.is_empty()
    }

    /// The `p`-th percentile (0.0–100.0), by nearest-rank.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.sorted_ms.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.sorted_ms.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, self.sorted_ms.len()) - 1;
        self.sorted_ms[idx]
    }

    /// Median latency.
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Maximum latency.
    pub fn max(&self) -> u64 {
        self.sorted_ms.last().copied().unwrap_or(0)
    }

    /// Mean latency.
    pub fn mean(&self) -> f64 {
        if self.sorted_ms.is_empty() {
            0.0
        } else {
            self.sorted_ms.iter().sum::<u64>() as f64 / self.sorted_ms.len() as f64
        }
    }

    /// The CDF evaluated at `latency_ms`: fraction of samples ≤ it.
    pub fn cdf_at(&self, latency_ms: u64) -> f64 {
        if self.sorted_ms.is_empty() {
            return 0.0;
        }
        let count = self.sorted_ms.partition_point(|&s| s <= latency_ms);
        count as f64 / self.sorted_ms.len() as f64
    }

    /// `(latency_ms, cumulative_fraction)` points for plotting the CDF of
    /// Figure 5, one point per distinct latency value.
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let n = self.sorted_ms.len();
        let mut points = Vec::new();
        let mut i = 0;
        while i < n {
            let v = self.sorted_ms[i];
            let j = self.sorted_ms.partition_point(|&s| s <= v);
            points.push((v, j as f64 / n as f64));
            i = j;
        }
        points
    }
}

/// Converts cumulative busy-time samples into per-bucket utilization
/// percentages — the Figure 4 series. `samples` are
/// `(wall_clock_ms, cumulative_busy_ms)` pairs in time order.
pub fn utilization_series(samples: &[(u64, f64)]) -> Vec<f64> {
    samples
        .windows(2)
        .map(|w| {
            let wall = (w[1].0 - w[0].0) as f64;
            if wall <= 0.0 {
                0.0
            } else {
                ((w[1].1 - w[0].1) / wall * 100.0).clamp(0.0, 100.0)
            }
        })
        .collect()
}

/// Counts events per fixed-width time bucket: used for throughput series.
/// `times_ms` need not be sorted.
pub fn bucket_counts(times_ms: &[u64], bucket_ms: u64, duration_ms: u64) -> Vec<u64> {
    assert!(bucket_ms > 0, "bucket must be positive");
    let buckets = duration_ms.div_ceil(bucket_ms) as usize;
    let mut counts = vec![0u64; buckets.max(1)];
    for &t in times_ms {
        let idx = ((t / bucket_ms) as usize).min(counts.len() - 1);
        counts[idx] += 1;
    }
    counts
}

/// Renders a simple ASCII sparkline for terminal reports.
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    if values.is_empty() || max <= 0.0 {
        return String::new();
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            TICKS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let s = LatencyStats::new(vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.median(), 50);
        assert_eq!(s.percentile(90.0), 90);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.percentile(1.0), 10);
        assert_eq!(s.max(), 100);
        assert!((s.mean() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = LatencyStats::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.median(), 0);
        assert_eq!(s.cdf_at(100), 0.0);
        assert!(s.cdf_points().is_empty());
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let s = LatencyStats::new(vec![5, 5, 7, 12, 12, 12, 40]);
        assert_eq!(s.cdf_at(4), 0.0);
        assert!((s.cdf_at(5) - 2.0 / 7.0).abs() < 1e-9);
        assert!((s.cdf_at(12) - 6.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.cdf_at(40), 1.0);
        let points = s.cdf_points();
        assert_eq!(points.len(), 4);
        assert_eq!(points.last().unwrap().1, 1.0);
        assert!(points
            .windows(2)
            .all(|w| w[0].1 < w[1].1 && w[0].0 < w[1].0));
    }

    #[test]
    fn utilization_from_cumulative_busy() {
        // 1000 ms buckets; busy grows 200 ms then 800 ms.
        let samples = vec![(0u64, 0.0), (1_000, 200.0), (2_000, 1_000.0)];
        let u = utilization_series(&samples);
        assert_eq!(u.len(), 2);
        assert!((u[0] - 20.0).abs() < 1e-9);
        assert!((u[1] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamped() {
        let samples = vec![(0u64, 0.0), (100, 500.0)];
        assert_eq!(utilization_series(&samples), vec![100.0]);
    }

    #[test]
    fn bucket_counting() {
        let counts = bucket_counts(&[0, 10, 999, 1_000, 2_500], 1_000, 3_000);
        assert_eq!(counts, vec![3, 1, 1]);
        // Out-of-range events clamp to the last bucket.
        let counts = bucket_counts(&[5_000], 1_000, 3_000);
        assert_eq!(counts, vec![0, 0, 1]);
    }

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0.0, 50.0, 100.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}

//! Synthetic EC2 VM-launch trace (paper §6.1, Figure 3).
//!
//! The paper measured VM launches in EC2's US-east region over one hour in
//! July 2011: **8,417 spawns**, an average of **2.34/s**, and a peak of
//! **14/s at t = 0.8 h**. We reproduce that shape deterministically from a
//! seed: a Poisson arrival process whose rate is a constant base plus a
//! Gaussian burst centered at 0.8 h, with parameters solved so the expected
//! total, mean, and peak match the published numbers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic EC2 trace.
#[derive(Clone, Debug)]
pub struct Ec2TraceSpec {
    /// Trace duration in seconds (the paper uses one hour).
    pub duration_s: usize,
    /// Base arrival rate (launches per second).
    pub base_rate: f64,
    /// Amplitude of the burst above the base rate.
    pub burst_amplitude: f64,
    /// Center of the burst, in seconds (0.8 h = 2,880 s).
    pub burst_center_s: f64,
    /// Standard deviation of the burst, in seconds.
    pub burst_sigma_s: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for Ec2TraceSpec {
    fn default() -> Self {
        // total ≈ 3600·1.837 + 12·60·√(2π) ≈ 6613 + 1804 ≈ 8417 (paper),
        // peak λ ≈ 1.84 + 12 ≈ 14/s at t = 2880 s = 0.8 h (paper).
        Ec2TraceSpec {
            duration_s: 3_600,
            base_rate: 1.837,
            burst_amplitude: 12.0,
            burst_center_s: 2_880.0,
            burst_sigma_s: 60.0,
            seed: 2011,
        }
    }
}

impl Ec2TraceSpec {
    /// The arrival rate λ(t) at second `t`.
    pub fn rate_at(&self, t: usize) -> f64 {
        let dt = t as f64 - self.burst_center_s;
        self.base_rate
            + self.burst_amplitude
                * (-dt * dt / (2.0 * self.burst_sigma_s * self.burst_sigma_s)).exp()
    }

    /// Generates the trace: each second's count is the rate curve plus
    /// bounded uniform jitter, rounded to a non-negative integer.
    ///
    /// Bounded jitter (rather than Poisson sampling) keeps the sampled peak
    /// close to the paper's *measured* peak of 14/s; a Poisson draw at
    /// λ ≈ 14 over a 3,600-sample trace regularly spikes past 20, which the
    /// measured trace did not.
    pub fn generate(&self) -> Ec2Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let per_second = (0..self.duration_s)
            .map(|t| {
                let jitter = rng.gen_range(-2.0..2.0);
                (self.rate_at(t) + jitter).round().max(0.0) as u32
            })
            .collect();
        Ec2Trace { per_second }
    }
}

/// A per-second VM-launch trace (the series plotted in Figure 3).
#[derive(Clone, Debug)]
pub struct Ec2Trace {
    per_second: Vec<u32>,
}

impl Ec2Trace {
    /// Builds a trace from explicit per-second counts.
    pub fn from_counts(per_second: Vec<u32>) -> Self {
        Ec2Trace { per_second }
    }

    /// Launches in each second.
    pub fn per_second(&self) -> &[u32] {
        &self.per_second
    }

    /// Trace duration in seconds.
    pub fn duration_s(&self) -> usize {
        self.per_second.len()
    }

    /// Total launches over the trace.
    pub fn total(&self) -> u64 {
        self.per_second.iter().map(|&c| u64::from(c)).sum()
    }

    /// Mean launches per second.
    pub fn mean_rate(&self) -> f64 {
        if self.per_second.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.per_second.len() as f64
        }
    }

    /// Peak launches in one second, with the second it occurred.
    pub fn peak(&self) -> (u32, usize) {
        self.per_second
            .iter()
            .enumerate()
            .map(|(t, &c)| (c, t))
            .max()
            .unwrap_or((0, 0))
    }

    /// Scales the workload by an integer factor — the paper's 2×…5× runs
    /// (§6.1) multiply the same trace.
    pub fn scaled(&self, factor: u32) -> Ec2Trace {
        Ec2Trace {
            per_second: self.per_second.iter().map(|&c| c * factor).collect(),
        }
    }

    /// Sums counts into coarser buckets (for compact plotting).
    pub fn bucketed(&self, bucket_s: usize) -> Vec<u64> {
        assert!(bucket_s > 0, "bucket size must be positive");
        self.per_second
            .chunks(bucket_s)
            .map(|chunk| chunk.iter().map(|&c| u64::from(c)).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_trace_matches_paper_statistics() {
        let trace = Ec2TraceSpec::default().generate();
        let total = trace.total();
        // Paper: 8,417 total. Poisson sampling gives a few percent spread.
        assert!(
            (7_900..=8_950).contains(&total),
            "total {total} outside tolerance of paper's 8,417"
        );
        // Paper: mean 2.34/s.
        let mean = trace.mean_rate();
        assert!((2.1..=2.6).contains(&mean), "mean {mean}");
        // Paper: peak 14/s at 0.8 h.
        let (peak, at) = trace.peak();
        assert!((13..=16).contains(&peak), "peak {peak}");
        let at_h = at as f64 / 3_600.0;
        assert!((0.72..=0.88).contains(&at_h), "peak at {at_h} h");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Ec2TraceSpec::default().generate();
        let b = Ec2TraceSpec::default().generate();
        assert_eq!(a.per_second(), b.per_second());
        let c = Ec2TraceSpec {
            seed: 99,
            ..Default::default()
        }
        .generate();
        assert_ne!(a.per_second(), c.per_second());
    }

    #[test]
    fn scaling_multiplies_counts() {
        let trace = Ec2Trace::from_counts(vec![1, 2, 3]);
        let x3 = trace.scaled(3);
        assert_eq!(x3.per_second(), &[3, 6, 9]);
        assert_eq!(x3.total(), 18);
        // The paper's 5× workload peaks at 5 × 14 = 70/s.
        let five = Ec2TraceSpec::default().generate().scaled(5);
        assert!(five.peak().0 >= 60);
    }

    #[test]
    fn rate_shape() {
        let spec = Ec2TraceSpec::default();
        // Burst center has the highest rate.
        assert!(spec.rate_at(2_880) > spec.rate_at(1_000));
        assert!(spec.rate_at(2_880) > spec.rate_at(3_500));
        assert!((spec.rate_at(2_880) - 13.837).abs() < 0.01);
        // Far from the burst the rate is the base.
        assert!((spec.rate_at(0) - spec.base_rate) < 0.01);
    }

    #[test]
    fn bucketing_sums() {
        let trace = Ec2Trace::from_counts(vec![1, 1, 1, 2, 2, 2]);
        assert_eq!(trace.bucketed(3), vec![3, 6]);
        assert_eq!(trace.bucketed(4), vec![5, 4]);
    }

    #[test]
    fn counts_are_non_negative_near_rate() {
        let trace = Ec2TraceSpec::default().generate();
        let spec = Ec2TraceSpec::default();
        for (t, &c) in trace.per_second().iter().enumerate() {
            let rate = spec.rate_at(t);
            assert!(
                (f64::from(c) - rate).abs() <= 2.6,
                "t={t}: count {c} vs rate {rate}"
            );
        }
    }
}

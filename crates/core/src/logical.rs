//! Logical-layer execution: simulation, rollback, and the three scheduling
//! outcomes of paper Figure 2 (runnable / deferred / aborted).

use tropic_model::{ConstraintSet, Path, Tree};

use crate::actions::ActionRegistry;
use crate::error::ProcError;
use crate::locks::LockManager;
use crate::proc::{StoredProcedure, TxnContext};
use crate::txn::{LogRecord, TxnRecord};

/// Outcome of simulating a transaction in the logical layer (paper §3.1).
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalOutcome {
    /// No violation, no conflict: logical effects stay applied, locks are
    /// held, and the transaction proceeds to the physical layer (3C).
    Runnable,
    /// A lock conflict with an outstanding transaction: effects were rolled
    /// back and the transaction returns to the front of `todoQ` (3B).
    Deferred {
        /// The contended path.
        conflict: Path,
    },
    /// A constraint violation or procedure error: effects were rolled back
    /// and the transaction aborts (3A).
    Aborted {
        /// Why the transaction aborted.
        reason: String,
    },
}

/// Simulates `txn` by running its stored procedure against the logical tree
/// (paper §3.1.2).
///
/// On success the execution log is stored into `txn.log`, the logical
/// effects remain applied (the logical layer runs ahead of the physical
/// layer), and the locks stay held. On conflict or violation all logical
/// effects are undone via the undo log and every lock is released.
pub fn simulate(
    txn: &mut TxnRecord,
    proc_: &dyn StoredProcedure,
    tree: &mut Tree,
    actions: &ActionRegistry,
    constraints: &ConstraintSet,
    locks: &mut LockManager,
) -> LogicalOutcome {
    let mut ctx = TxnContext::new(txn.id, txn.args.clone(), tree, actions, constraints, locks);
    let result = proc_.execute(&mut ctx);
    let log = ctx.into_log();
    match result {
        Ok(()) => {
            txn.log = log;
            LogicalOutcome::Runnable
        }
        Err(e) => {
            if let Err(undo_err) = rollback_logical(&log, tree, actions) {
                // An undo that cannot be simulated is an action-definition
                // bug; quarantine the whole tree rather than run on corrupt
                // state.
                let _ = tree.mark_inconsistent(&Path::root(), true);
                locks.release_all(txn.id);
                return LogicalOutcome::Aborted {
                    reason: format!("{e}; logical rollback also failed: {undo_err}"),
                };
            }
            locks.release_all(txn.id);
            match e {
                ProcError::Conflict(conflict) => LogicalOutcome::Deferred { conflict },
                other => LogicalOutcome::Aborted {
                    reason: other.to_string(),
                },
            }
        }
    }
}

/// Rolls back the logical effects of an execution log by applying each undo
/// action's logical effect in reverse chronological order (paper §3.1.2).
pub fn rollback_logical(
    log: &[LogRecord],
    tree: &mut Tree,
    actions: &ActionRegistry,
) -> Result<(), String> {
    for rec in log.iter().rev() {
        let Some(undo_action) = &rec.undo_action else {
            return Err(format!(
                "log record #{} ({}) is irreversible",
                rec.seq, rec.action
            ));
        };
        let def = actions
            .get(undo_action)
            .ok_or_else(|| format!("undo action `{undo_action}` not registered"))?;
        let object = rec.undo_object.as_ref().unwrap_or(&rec.object);
        def.apply_logical(tree, object, &rec.undo_args)
            .map_err(|e| format!("undo of record #{} failed: {e}", rec.seq))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::{ActionDef, UndoSpec};
    use crate::proc::FnProcedure;
    use std::sync::Arc;
    use tropic_model::{FnConstraint, Node, Value};

    fn actions() -> ActionRegistry {
        let mut reg = ActionRegistry::new();
        reg.register(ActionDef::new(
            "add",
            |tree, object, args| {
                let by = args[0].as_int().ok_or("int")?;
                let cur = tree.attr_int(object, "n").map_err(|e| e.to_string())?;
                tree.set_attr(object, "n", cur + by)
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
            |_, object, args| {
                Some(UndoSpec {
                    object: object.clone(),
                    action: "sub".into(),
                    args: args.to_vec(),
                })
            },
        ));
        reg.register(ActionDef::new(
            "sub",
            |tree, object, args| {
                let by = args[0].as_int().ok_or("int")?;
                let cur = tree.attr_int(object, "n").map_err(|e| e.to_string())?;
                tree.set_attr(object, "n", cur - by)
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
            |_, object, args| {
                Some(UndoSpec {
                    object: object.clone(),
                    action: "add".into(),
                    args: args.to_vec(),
                })
            },
        ));
        reg
    }

    fn tree() -> Tree {
        let mut t = Tree::new();
        t.insert(
            &Path::parse("/c").unwrap(),
            Node::new("counter").with_attr("n", 0i64),
        )
        .unwrap();
        t
    }

    fn add_proc(
        amounts: Vec<i64>,
    ) -> FnProcedure<impl Fn(&mut TxnContext<'_>) -> Result<(), ProcError> + Send + Sync> {
        FnProcedure::new("addMany", move |ctx| {
            let c = Path::parse("/c").unwrap();
            for a in &amounts {
                ctx.act(&c, "add", vec![Value::Int(*a)])?;
            }
            Ok(())
        })
    }

    #[test]
    fn runnable_keeps_effects_and_locks() {
        let reg = actions();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let mut t = tree();
        let mut txn = TxnRecord::new(1, "addMany", vec![], 0);
        let outcome = simulate(
            &mut txn,
            &add_proc(vec![3, 4]),
            &mut t,
            &reg,
            &cons,
            &mut locks,
        );
        assert_eq!(outcome, LogicalOutcome::Runnable);
        assert_eq!(t.attr_int(&Path::parse("/c").unwrap(), "n").unwrap(), 7);
        assert_eq!(txn.log.len(), 2);
        assert!(!locks.is_empty());
    }

    #[test]
    fn violation_rolls_back_everything() {
        let reg = actions();
        let mut cons = ConstraintSet::new();
        cons.register(Arc::new(FnConstraint::new(
            "max-10",
            "counter",
            |tree: &Tree, anchor: &Path| {
                let n = tree.attr(anchor, "n").and_then(Value::as_int).unwrap_or(0);
                if n > 10 {
                    Err(format!("{n} > 10"))
                } else {
                    Ok(())
                }
            },
        )));
        let mut locks = LockManager::new();
        let mut t = tree();
        let mut txn = TxnRecord::new(1, "addMany", vec![], 0);
        // First two adds are fine (5, 9); the third (14) violates.
        let outcome = simulate(
            &mut txn,
            &add_proc(vec![5, 4, 5]),
            &mut t,
            &reg,
            &cons,
            &mut locks,
        );
        match outcome {
            LogicalOutcome::Aborted { reason } => assert!(reason.contains("> 10")),
            other => panic!("unexpected {other:?}"),
        }
        // All effects undone, all locks released.
        assert_eq!(t.attr_int(&Path::parse("/c").unwrap(), "n").unwrap(), 0);
        assert!(locks.is_empty());
    }

    #[test]
    fn conflict_defers_and_rolls_back() {
        let reg = actions();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let mut t = tree();
        // Txn 1 runs and holds its locks.
        let mut txn1 = TxnRecord::new(1, "addMany", vec![], 0);
        assert_eq!(
            simulate(
                &mut txn1,
                &add_proc(vec![1]),
                &mut t,
                &reg,
                &cons,
                &mut locks
            ),
            LogicalOutcome::Runnable
        );
        // Txn 2 conflicts on /c, is rolled back and deferred.
        let mut txn2 = TxnRecord::new(2, "addMany", vec![], 0);
        let outcome = simulate(
            &mut txn2,
            &add_proc(vec![2]),
            &mut t,
            &reg,
            &cons,
            &mut locks,
        );
        assert_eq!(
            outcome,
            LogicalOutcome::Deferred {
                conflict: Path::parse("/c").unwrap()
            }
        );
        assert_eq!(t.attr_int(&Path::parse("/c").unwrap(), "n").unwrap(), 1);
        assert!(locks.locks_of(2).is_empty());
        assert!(!locks.locks_of(1).is_empty());
    }

    #[test]
    fn partial_failure_mid_procedure_rolls_back_prefix() {
        let reg = actions();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let mut t = tree();
        let proc_ = FnProcedure::new("failsLate", |ctx: &mut TxnContext<'_>| {
            let c = Path::parse("/c").unwrap();
            ctx.act(&c, "add", vec![Value::Int(5)])?;
            Err(ProcError::Logic("no capacity found".into()))
        });
        let mut txn = TxnRecord::new(1, "failsLate", vec![], 0);
        let outcome = simulate(&mut txn, &proc_, &mut t, &reg, &cons, &mut locks);
        assert!(matches!(outcome, LogicalOutcome::Aborted { .. }));
        assert_eq!(t.attr_int(&Path::parse("/c").unwrap(), "n").unwrap(), 0);
        assert!(locks.is_empty());
    }

    #[test]
    fn rollback_logical_reverses_in_order() {
        let reg = actions();
        let mut t = tree();
        let c = Path::parse("/c").unwrap();
        // Apply add(3) then add(4) manually, building the log.
        let mut log = Vec::new();
        for (seq, v) in [(1usize, 3i64), (2, 4)] {
            reg.get("add")
                .unwrap()
                .apply_logical(&mut t, &c, &[Value::Int(v)])
                .unwrap();
            log.push(LogRecord {
                seq,
                object: c.clone(),
                action: "add".into(),
                args: vec![Value::Int(v)],
                undo_action: Some("sub".into()),
                undo_object: None,
                undo_args: vec![Value::Int(v)],
                best_effort: false,
            });
        }
        assert_eq!(t.attr_int(&c, "n").unwrap(), 7);
        rollback_logical(&log, &mut t, &reg).unwrap();
        assert_eq!(t.attr_int(&c, "n").unwrap(), 0);
    }

    #[test]
    fn rollback_fails_on_irreversible_record() {
        let reg = actions();
        let mut t = tree();
        let log = vec![LogRecord {
            seq: 1,
            object: Path::parse("/c").unwrap(),
            action: "wipe".into(),
            args: vec![],
            undo_action: None,
            undo_object: None,
            undo_args: vec![],
            best_effort: false,
        }];
        let err = rollback_logical(&log, &mut t, &reg).unwrap_err();
        assert!(err.contains("irreversible"));
    }
}

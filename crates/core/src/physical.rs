//! Physical-layer execution: replaying execution logs on devices with
//! reverse-order undo on failure (paper §3.2).

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use tropic_model::Path;

use crate::msg::Signal;
use crate::txn::LogRecord;
use tropic_devices::{ActionCall, DeviceRegistry};

/// How workers execute transactions.
#[derive(Clone)]
pub enum ExecMode {
    /// Bypass device calls entirely (paper §5's logical-only mode, used by
    /// the large-scale performance experiments).
    LogicalOnly,
    /// Execute against the simulated devices.
    Physical(Arc<DeviceRegistry>),
}

impl ExecMode {
    /// The device registry, when in physical mode.
    pub fn registry(&self) -> Option<&Arc<DeviceRegistry>> {
        match self {
            ExecMode::LogicalOnly => None,
            ExecMode::Physical(reg) => Some(reg),
        }
    }
}

/// How a transaction's physical execution ended (paper §3.2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PhysicalOutcome {
    /// Every action succeeded.
    Committed,
    /// An action failed and every executed action was undone in reverse
    /// order; both layers can be made consistent.
    Aborted {
        /// 1-based sequence number of the failed action, or 0 when aborted
        /// by a TERM signal before any failure.
        failed_seq: usize,
        /// The failure (or signal) description.
        error: String,
    },
    /// An action failed *and* some undo action also failed: the physical
    /// layer is only partially rolled back. The controller marks
    /// `inconsistent_object` and its subtree inconsistent until repair
    /// (paper §3.2, §4).
    Failed {
        /// Sequence number of the originally failed action.
        failed_seq: usize,
        /// The original failure.
        error: String,
        /// Sequence number of the undo that failed.
        undo_failed_seq: usize,
        /// The undo failure.
        undo_error: String,
        /// Object whose physical state is now unknown.
        inconsistent_object: Path,
    },
    /// The worker observed a KILL signal and abandoned execution without
    /// undo; the controller has already aborted the transaction logically.
    Killed {
        /// Sequence number the worker had reached.
        reached_seq: usize,
    },
}

/// Replays an execution log against the physical layer.
///
/// `signal` is polled before each forward action so TERM/KILL interrupt
/// stalled transactions (paper §4). In [`ExecMode::LogicalOnly`] device
/// calls are skipped and every action trivially succeeds, but signal
/// handling still applies.
pub fn execute_physical(
    log: &[LogRecord],
    mode: &ExecMode,
    mut signal: impl FnMut() -> Option<Signal>,
) -> PhysicalOutcome {
    let mut executed: Vec<&LogRecord> = Vec::new();
    for rec in log {
        match signal() {
            Some(Signal::Term) => {
                return undo_executed(&executed, mode, 0, "terminated by TERM signal".to_owned());
            }
            Some(Signal::Kill) => {
                return PhysicalOutcome::Killed {
                    reached_seq: rec.seq,
                };
            }
            None => {}
        }
        let result = match mode {
            ExecMode::LogicalOnly => Ok(()),
            ExecMode::Physical(registry) => registry.invoke(&ActionCall::new(
                rec.object.clone(),
                rec.action.clone(),
                rec.args.clone(),
            )),
        };
        match result {
            Ok(()) => executed.push(rec),
            // A best-effort action that fails is skipped rather than
            // aborting the transaction: twin-planned repairs race with
            // ongoing physical change, and convergence is judged by the
            // reconciler's re-diff, not by individual calls. Nothing
            // executed, so nothing joins the undo prefix.
            Err(_) if rec.best_effort => {}
            Err(e) => {
                return undo_executed(&executed, mode, rec.seq, e.to_string());
            }
        }
    }
    PhysicalOutcome::Committed
}

/// Undoes the executed prefix in reverse chronological order. Stops at the
/// first undo error (undo actions may have temporal dependencies — paper
/// footnote 2) and reports a partial rollback.
fn undo_executed(
    executed: &[&LogRecord],
    mode: &ExecMode,
    failed_seq: usize,
    error: String,
) -> PhysicalOutcome {
    for rec in executed.iter().rev() {
        let Some(undo_action) = &rec.undo_action else {
            return PhysicalOutcome::Failed {
                failed_seq,
                error,
                undo_failed_seq: rec.seq,
                undo_error: format!("action `{}` is irreversible", rec.action),
                inconsistent_object: rec.object.clone(),
            };
        };
        let object = rec.undo_object.as_ref().unwrap_or(&rec.object);
        let result = match mode {
            ExecMode::LogicalOnly => Ok(()),
            ExecMode::Physical(registry) => registry.invoke(&ActionCall::new(
                object.clone(),
                undo_action.clone(),
                rec.undo_args.clone(),
            )),
        };
        if let Err(e) = result {
            return PhysicalOutcome::Failed {
                failed_seq,
                error,
                undo_failed_seq: rec.seq,
                undo_error: e.to_string(),
                inconsistent_object: object.clone(),
            };
        }
    }
    PhysicalOutcome::Aborted { failed_seq, error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tropic_devices::{ComputeServer, Device, LatencyModel, StorageServer, VmPower};
    use tropic_model::{Node, Tree, Value};

    fn registry() -> Arc<DeviceRegistry> {
        let mut frame = Tree::new();
        frame
            .insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        frame
            .insert(
                &Path::parse("/storageRoot").unwrap(),
                Node::new("storageRoot"),
            )
            .unwrap();
        let reg = DeviceRegistry::new(frame);
        let storage = StorageServer::new(
            Path::parse("/storageRoot/s1").unwrap(),
            1_000_000,
            LatencyModel::zero(),
        );
        storage.install_template("tmpl", 8192);
        reg.register(Arc::new(storage));
        reg.register(Arc::new(ComputeServer::new(
            Path::parse("/vmRoot/h1").unwrap(),
            "xen",
            32768,
            LatencyModel::zero(),
        )));
        Arc::new(reg)
    }

    /// The paper's Table-1 spawnVM log against /storageRoot/s1 + /vmRoot/h1.
    fn spawn_log() -> Vec<LogRecord> {
        let s1 = Path::parse("/storageRoot/s1").unwrap();
        let h1 = Path::parse("/vmRoot/h1").unwrap();
        let rec = |seq: usize,
                   object: &Path,
                   action: &str,
                   args: Vec<Value>,
                   undo: &str,
                   undo_args: Vec<Value>| LogRecord {
            seq,
            object: object.clone(),
            action: action.into(),
            args,
            undo_action: Some(undo.into()),
            undo_object: None,
            undo_args,
            best_effort: false,
        };
        vec![
            rec(
                1,
                &s1,
                "cloneImage",
                vec!["tmpl".into(), "img".into()],
                "removeImage",
                vec!["img".into()],
            ),
            rec(
                2,
                &s1,
                "exportImage",
                vec!["img".into()],
                "unexportImage",
                vec!["img".into()],
            ),
            rec(
                3,
                &h1,
                "importImage",
                vec!["img".into()],
                "unimportImage",
                vec!["img".into()],
            ),
            rec(
                4,
                &h1,
                "createVM",
                vec!["vm1".into(), "img".into(), Value::Int(2048)],
                "removeVM",
                vec!["vm1".into()],
            ),
            rec(
                5,
                &h1,
                "startVM",
                vec!["vm1".into()],
                "stopVM",
                vec!["vm1".into()],
            ),
        ]
    }

    fn compute_of(reg: &DeviceRegistry) -> Arc<dyn Device> {
        reg.resolve(&Path::parse("/vmRoot/h1").unwrap()).unwrap()
    }

    #[test]
    fn commit_path_executes_all_actions() {
        let reg = registry();
        let mode = ExecMode::Physical(Arc::clone(&reg));
        let outcome = execute_physical(&spawn_log(), &mode, || None);
        assert_eq!(outcome, PhysicalOutcome::Committed);
        let tree = reg.physical_tree();
        let vm = Path::parse("/vmRoot/h1/vm1").unwrap();
        assert_eq!(tree.attr_str(&vm, "state").unwrap(), "running");
    }

    #[test]
    fn failure_rolls_back_in_reverse() {
        // This reproduces the paper's §3.2 example: the first four actions
        // succeed, the fifth fails, and undo records #4..#1 run in reverse,
        // removing the VM configuration and the cloned image.
        let reg = registry();
        let compute = compute_of(&reg);
        compute.fault_plan().fail_once("startVM");
        let mode = ExecMode::Physical(Arc::clone(&reg));
        let outcome = execute_physical(&spawn_log(), &mode, || None);
        match outcome {
            PhysicalOutcome::Aborted { failed_seq, error } => {
                assert_eq!(failed_seq, 5);
                assert!(error.contains("injected"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let tree = reg.physical_tree();
        assert!(!tree.exists(&Path::parse("/vmRoot/h1/vm1").unwrap()));
        assert!(!tree.exists(&Path::parse("/storageRoot/s1/img").unwrap()));
    }

    #[test]
    fn undo_failure_reports_partial_rollback() {
        let reg = registry();
        let compute = compute_of(&reg);
        compute.fault_plan().fail_once("startVM");
        // The undo of record #3 (unimportImage) also fails.
        compute.fault_plan().fail_once("unimportImage");
        let mode = ExecMode::Physical(Arc::clone(&reg));
        let outcome = execute_physical(&spawn_log(), &mode, || None);
        match outcome {
            PhysicalOutcome::Failed {
                failed_seq,
                undo_failed_seq,
                inconsistent_object,
                ..
            } => {
                assert_eq!(failed_seq, 5);
                assert_eq!(undo_failed_seq, 3);
                assert_eq!(inconsistent_object, Path::parse("/vmRoot/h1").unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Undo stopped at record #3: the VM is gone (undo #4 ran) but the
        // image survives on storage (undo #2/#1 never ran).
        let tree = reg.physical_tree();
        assert!(!tree.exists(&Path::parse("/vmRoot/h1/vm1").unwrap()));
        assert!(tree.exists(&Path::parse("/storageRoot/s1/img").unwrap()));
    }

    #[test]
    fn logical_only_mode_always_commits() {
        let outcome = execute_physical(&spawn_log(), &ExecMode::LogicalOnly, || None);
        assert_eq!(outcome, PhysicalOutcome::Committed);
    }

    #[test]
    fn term_signal_undoes_prefix() {
        let reg = registry();
        let mode = ExecMode::Physical(Arc::clone(&reg));
        // TERM arrives before the third action.
        let mut calls = 0;
        let outcome = execute_physical(&spawn_log(), &mode, move || {
            calls += 1;
            (calls == 3).then_some(Signal::Term)
        });
        match outcome {
            PhysicalOutcome::Aborted { error, .. } => assert!(error.contains("TERM")),
            other => panic!("unexpected {other:?}"),
        }
        // Everything rolled back.
        let tree = reg.physical_tree();
        assert!(!tree.exists(&Path::parse("/storageRoot/s1/img").unwrap()));
    }

    #[test]
    fn kill_signal_abandons_without_undo() {
        let reg = registry();
        let mode = ExecMode::Physical(Arc::clone(&reg));
        let mut calls = 0;
        let outcome = execute_physical(&spawn_log(), &mode, move || {
            calls += 1;
            (calls == 3).then_some(Signal::Kill)
        });
        assert_eq!(outcome, PhysicalOutcome::Killed { reached_seq: 3 });
        // The first two actions' effects remain: cross-layer inconsistency
        // that repair must later reconcile.
        let tree = reg.physical_tree();
        assert!(tree.exists(&Path::parse("/storageRoot/s1/img").unwrap()));
    }

    #[test]
    fn vm_power_helper_matches() {
        // Sanity-check the device-facing assumption used above.
        let reg = registry();
        let mode = ExecMode::Physical(Arc::clone(&reg));
        execute_physical(&spawn_log(), &mode, || None);
        let tree = reg.physical_tree();
        assert_eq!(
            tree.attr_str(&Path::parse("/vmRoot/h1/vm1").unwrap(), "state")
                .unwrap(),
            VmPower::Running.as_str()
        );
    }

    #[test]
    fn best_effort_failure_is_skipped_not_aborted() {
        // A rogue VM that is already stopped: the twin-planned `stopVM`
        // fails its precondition, but the best-effort flag lets the
        // `removeVM` that follows still run, so the transaction commits
        // and the rogue VM is gone.
        let reg = registry();
        let compute = Arc::new(ComputeServer::new(
            Path::parse("/vmRoot/h2").unwrap(),
            "xen",
            32768,
            LatencyModel::zero(),
        ));
        reg.register(Arc::clone(&compute) as Arc<dyn Device>);
        compute.oob_create_vm("rogue", "imgX", 128, false);
        let h1 = Path::parse("/vmRoot/h2").unwrap();
        let rec = |seq: usize, action: &str| LogRecord {
            seq,
            object: h1.clone(),
            action: action.into(),
            args: vec![Value::from("rogue")],
            undo_action: Some(tropic_devices::NOOP_ACTION.to_owned()),
            undo_object: None,
            undo_args: vec![],
            best_effort: true,
        };
        let log = vec![rec(1, "stopVM"), rec(2, "removeVM")];
        let mode = ExecMode::Physical(Arc::clone(&reg));
        let outcome = execute_physical(&log, &mode, || None);
        assert_eq!(outcome, PhysicalOutcome::Committed);
        assert!(!reg
            .physical_tree()
            .exists(&Path::parse("/vmRoot/h2/rogue").unwrap()));

        // The same log without the flag aborts on the failed stop.
        let reg2 = registry();
        let compute2 = Arc::new(ComputeServer::new(
            Path::parse("/vmRoot/h2").unwrap(),
            "xen",
            32768,
            LatencyModel::zero(),
        ));
        reg2.register(Arc::clone(&compute2) as Arc<dyn Device>);
        compute2.oob_create_vm("rogue", "imgX", 128, false);
        let strict: Vec<LogRecord> = log
            .iter()
            .cloned()
            .map(|mut r| {
                r.best_effort = false;
                r
            })
            .collect();
        let outcome = execute_physical(&strict, &ExecMode::Physical(Arc::clone(&reg2)), || None);
        assert!(matches!(
            outcome,
            PhysicalOutcome::Aborted { failed_seq: 1, .. }
        ));
        assert!(reg2
            .physical_tree()
            .exists(&Path::parse("/vmRoot/h2/rogue").unwrap()));
    }
}
